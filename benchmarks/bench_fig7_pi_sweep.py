"""Figure 7 — Distributed Pi estimation, 50 nodes, sample sweep.

Paper setup (§IV-B): 50 Cell blades (100 mappers), total samples swept
from 3e3 to 3e12, Java vs Cell-accelerated mappers, no input data.

Paper observation reproduced here: "the Cell-accelerated mapper clearly
outperforms the Java mapper when the number of samples calculated per
node becomes high enough to overcome the overheads introduced by the
Hadoop runtime" — both curves share a flat runtime floor, Java leaves
it roughly two decades earlier, and at the top end the gap exceeds an
order of magnitude.
"""

from repro.analysis import Series
from repro.perf import Backend
from repro.core import run_pi_job

from conftest import emit

NODES = 50
SAMPLES = (3e3, 3e4, 3e5, 3e6, 3e7, 3e8, 3e9, 3e10, 3e11, 3e12)


def _sweep():
    out = []
    for label, backend in (("Java Mapper", Backend.JAVA_PPE),
                           ("Cell BE Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for samples in SAMPLES:
            result = run_pi_job(NODES, samples, backend)
            assert result.succeeded
            s.append(samples, result.makespan_s)
        out.append(s)
    return out


def test_fig7_pi_sweep_50_nodes(once):
    series = once(_sweep)
    java, cell = series
    floor = java.y_at(3e3)
    java_departs = next((x for x in SAMPLES if java.y_at(x) > 2 * floor), None)
    cell_departs = next((x for x in SAMPLES if cell.y_at(x) > 2 * floor), None)
    top_ratio = java.y_at(3e12) / cell.y_at(3e12)
    claims = [
        (
            "both mappers share a flat Hadoop floor at small N",
            "overlapping flat region",
            f"java {java.y_at(3e3):.1f}s vs cell {cell.y_at(3e3):.1f}s",
            abs(java.y_at(3e3) - cell.y_at(3e3)) / floor < 0.15,
        ),
        (
            "Java leaves the floor about two decades before Cell",
            "~100x in sample counts",
            f"java at {java_departs:.0e}, cell at {cell_departs:.0e}",
            java_departs is not None
            and cell_departs is not None
            and 10 <= cell_departs / java_departs <= 1000,
        ),
        (
            "Cell clearly outperforms Java at the top end",
            ">10x at 3e12",
            f"{top_ratio:.0f}x",
            top_ratio > 10,
        ),
        (
            "Java top-end time reaches thousands of seconds",
            "approaching 1e4 s",
            f"{java.y_at(3e12):.0f} s",
            3000 < java.y_at(3e12) < 20000,
        ),
    ]
    emit(
        "Figure 7: Distributed Pi estimation on 50 nodes (time vs samples)",
        series,
        claims,
        xlabel="Samples",
        ylabel="Time (s)",
        figure="Fig. 7",
    )
