"""E7 — The §IV-A Terasort rate analysis.

The paper closes its data-intensive section by analysing the 2009
Terasort winner: "an impressive overall sorting rate of 5017MB/s"
that nevertheless amounts to "5.5MB/s [per node] and each core does it
at 0.6MB/s, what seems to point out that the effective data bandwidth at
which data can be sent to the mappers was also the limiting factor,
since the sorting capacity of a high-end processor may be well above
that value."

This bench runs a Terasort-style job through the simulated stack and
checks the same conclusion emerges: the per-mapper *delivered* rate is
pinned near the RecordReader path rate and sits far below the CPU's
sort capacity.
"""

from repro.analysis import Series
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core import run_sort_job

from conftest import emit

CAL = PAPER_CALIBRATION
NODES = (4, 8, 16)
GB_PER_MAPPER = 1


def _sweep():
    per_node = Series("per-node sort rate (MB/s)")
    per_mapper = Series("per-mapper sort rate (MB/s)")
    for n in NODES:
        data = n * CAL.mappers_per_node * GB_PER_MAPPER * GB
        result = run_sort_job(n, data, backend=Backend.JAVA_PPE)
        assert result.succeeded
        rate_node = data / result.makespan_s / n / MB
        rate_mapper = rate_node / CAL.mappers_per_node
        per_node.append(n, rate_node)
        per_mapper.append(n, rate_mapper)
    return [per_node, per_mapper]


def test_terasort_rate_analysis(once):
    series = once(_sweep)
    per_node, per_mapper = series
    worst_mapper_rate = max(per_mapper.ys)
    cpu_capacity_mb = CAL.sort_cpu_bw_per_core / MB
    delivery_mb = CAL.recordreader_stream_bw / MB
    claims = [
        (
            "per-mapper rate pinned at/below the delivery path",
            f"<= ~{delivery_mb:.0f} MB/s",
            f"{worst_mapper_rate:.1f} MB/s",
            worst_mapper_rate <= delivery_mb * 1.05,
        ),
        (
            "CPU sort capacity is far above the delivered rate",
            "well above",
            f"{cpu_capacity_mb:.0f} MB/s capacity vs {worst_mapper_rate:.1f} MB/s delivered",
            cpu_capacity_mb > 5 * worst_mapper_rate,
        ),
        (
            "per-node rate is single-digit MB/s (paper: 5.5 MB/s/node)",
            "same order of magnitude",
            f"{per_node.ys[0]:.1f} MB/s",
            1 <= per_node.ys[0] <= 30,
        ),
    ]
    emit(
        "Terasort rate analysis: delivered sort rate vs CPU capacity",
        series,
        claims,
        xlabel="Nodes",
        ylabel="MB/s",
        figure="E7 (Terasort)",
    )
