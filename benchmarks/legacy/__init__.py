"""Frozen copy of the seed (pre-overhaul) simulation engine.

``engine.py``, ``events.py``, and ``resources.py`` are verbatim copies
of the seed commit's ``src/repro/sim/`` modules (imports rewired), kept
as the baseline for ``benchmarks/run_perf.py``'s apples-to-apples engine
microbenchmarks. Do not optimize these — their entire value is that they
do not change.
"""

from benchmarks.legacy.engine import Environment, SimulationError
from benchmarks.legacy.events import Event, Interrupt, Process, Timeout
from benchmarks.legacy.resources import (
    Container,
    PriorityResource,
    Resource,
    Store,
)

__all__ = [
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
