"""Contention primitives: resources, containers, and stores.

These model the queuing behaviour of shared hardware: CPU cores and mapper
slots are :class:`Resource`\\ s, DMA in-flight request slots are a
:class:`Resource` with capacity 16, memory/disk space is a
:class:`Container`, and message queues (JobTracker inbox, DataNode request
queues) are :class:`Store`\\ s.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from benchmarks.legacy.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from benchmarks.legacy.engine import Environment

__all__ = [
    "Container",
    "PriorityRequest",
    "PriorityResource",
    "Release",
    "Request",
    "Resource",
    "Store",
]


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted.

    Usable as a context manager so that exceptions (including simulation
    interrupts) release the slot::

        with res.request() as req:
            yield req
            yield env.timeout(work)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release if granted, withdraw from the queue otherwise."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A request with an explicit priority (lower value = served first)."""

    __slots__ = ("priority", "seq")

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.seq = resource._next_seq()
        super().__init__(resource)


class Release(Event):
    """Immediate event confirming a release (present for API symmetry)."""

    __slots__ = ()

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self.succeed()


class Resource:
    """A capacity-limited resource with FIFO granting.

    ``capacity`` slots may be held simultaneously; further requests queue.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return a slot (or withdraw a queued request)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                pass
        return Release(self.env)

    # -- internals -------------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(self)
        else:
            self.queue.append(request)

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.count}/{self.capacity} queued={len(self.queue)}>"


class PriorityResource(Resource):
    """A resource whose queue is ordered by request priority."""

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        self._pqueue: list[tuple[int, int, PriorityRequest]] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self.capacity and not self._pqueue:
            self.users.append(request)
            request.succeed(self)
        else:
            heapq.heappush(self._pqueue, (request.priority, request.seq, request))

    def release(self, request: Request) -> Release:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            self._pqueue = [(p, s, r) for (p, s, r) in self._pqueue if r is not request]
            heapq.heapify(self._pqueue)
        return Release(self.env)

    def _grant_next(self) -> None:
        while self._pqueue and len(self.users) < self.capacity:
            _p, _s, nxt = heapq.heappop(self._pqueue)
            self.users.append(nxt)
            nxt.succeed(self)


class Container:
    """A homogeneous bulk quantity (bytes of RAM, disk space, energy).

    ``put``/``get`` events trigger once the amount can be satisfied.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[float, Event]] = deque()
        self._putters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers once it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        evt = Event(self.env)
        self._putters.append((amount, evt))
        self._settle()
        return evt

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers once the level can cover it."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        evt = Event(self.env)
        self._getters.append((amount, evt))
        self._settle()
        return evt

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, evt = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    evt.succeed(amount)
                    progress = True
            if self._getters:
                amount, evt = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    evt.succeed(amount)
                    progress = True


class Store:
    """An unordered-capacity FIFO queue of Python objects.

    Optionally a ``filter`` can be given to :meth:`get` to take the first
    matching item (used for tagged message matching).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Optional[Callable[[Any], bool]], Event]] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; triggers when there is room."""
        evt = Event(self.env)
        self._putters.append((item, evt))
        self._settle()
        return evt

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the first (matching) item when available."""
        evt = Event(self.env)
        self._getters.append((filter, evt))
        self._settle()
        return evt

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit queued putters while capacity allows.
            while self._putters and len(self.items) < self.capacity:
                item, evt = self._putters.popleft()
                self.items.append(item)
                evt.succeed(item)
                progress = True
            # Serve getters in FIFO order; a filtered getter that cannot
            # be satisfied does not block later getters.
            unserved: deque[tuple[Optional[Callable[[Any], bool]], Event]] = deque()
            while self._getters:
                flt, evt = self._getters.popleft()
                idx = self._find(flt)
                if idx is None:
                    unserved.append((flt, evt))
                else:
                    item = self.items[idx]
                    del self.items[idx]
                    evt.succeed(item)
                    progress = True
            self._getters = unserved

    def _find(self, flt: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if flt is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if flt(item):
                return i
        return None
