"""The simulation event loop.

:class:`Environment` owns the virtual clock and the event heap. Events are
ordered by ``(time, priority, sequence)`` so that simultaneous events run
in a deterministic FIFO order — determinism is a hard requirement for the
reproduction benchmarks (same seed, same schedule, same numbers).
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from benchmarks.legacy.events import (
    AllOf,
    AnyOf,
    Environment_NORMAL,
    Environment_URGENT,
    Event,
    Process,
    Timeout,
)

__all__ = ["Environment", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for structural simulation errors (deadlock, bad run bound)."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds by convention
        throughout this project).

    Notes
    -----
    The engine is single-threaded and fully deterministic: ties in time
    are broken by scheduling priority, then by a monotonically increasing
    sequence number.
    """

    URGENT = Environment_URGENT
    NORMAL = Environment_NORMAL

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        self._processed_count = 0

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (monitoring aid)."""
        return self._processed_count

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from generator ``gen``."""
        return Process(self, gen, name=name)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the heap ``delay`` from now."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        SimulationError
            If the heap is empty.
        """
        if not self._heap:
            raise SimulationError("no more events to process")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self._now:  # pragma: no cover - defensive; cannot happen
            raise SimulationError(f"time went backwards: {t} < {self._now}")
        self._now = t
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        self._processed_count += 1
        for cb in callbacks:
            cb(event)
        if event._exc is not None and not event._defused:
            # Unhandled failure: nobody waited on this event.
            raise event._exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap drains.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            target = until
            sentinel: list[bool] = []
            target.callbacks.append(lambda _e: sentinel.append(True))
            while not sentinel:
                if not self._heap:
                    raise SimulationError(
                        f"simulation ran out of events before {target!r} triggered "
                        "(deadlock: a process is waiting on an event nobody will fire)"
                    )
                self.step()
            return target._value if target._exc is None else _reraise(target._exc)

        stop_at = float(until)
        if stop_at < self._now:
            raise SimulationError(f"run(until={stop_at}) is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= stop_at:
            self.step()
        self._now = stop_at
        return None


def _reraise(exc: BaseException) -> Any:
    raise exc
