"""Event primitives for the discrete-event engine.

Events move through three states: *pending* (created but not scheduled),
*triggered* (scheduled on the event heap with a value), and *processed*
(callbacks have run). Processes are themselves events that trigger when
their generator terminates, which is what makes ``yield process`` a join.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from benchmarks.legacy.engine import Environment

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
]


class Interrupt(Exception):
    """Raised inside a process generator when another process interrupts it.

    The ``cause`` is whatever object the interrupter passed, typically a
    short human-readable reason string or a structured failure record.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt({self.cause!r})"


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event may carry a *value* (delivered as the result of a ``yield``)
    or an exception (raised at the ``yield`` site of every waiter).
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError("value accessed before event was triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def defused(self) -> "Event":
        """Mark a failed event as handled so it does not crash the run.

        An event that triggers with an exception and has no waiters would
        otherwise propagate out of :meth:`Environment.run`.
        """
        self._defused = True
        return self

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = value
        self._triggered = True
        self.env.schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception raised at every waiter."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._triggered = True
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Chain-trigger: mirror another (already triggered) event."""
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._value = value
        self._triggered = True
        env.schedule(self, delay=self.delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a process at its creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._value = None
        self._triggered = True
        env.schedule(self, priority=Environment_URGENT)


# Priority constants shared with the engine (kept here to avoid a cycle).
Environment_URGENT = 0
Environment_NORMAL = 1


class Process(Event):
    """A running generator; also an event that triggers on termination.

    The generator yields :class:`Event` instances. When a yielded event
    triggers, the generator is resumed with the event's value (or the
    event's exception is thrown into it).
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, env: "Environment", gen: Generator, name: Optional[str] = None):
        if not hasattr(gen, "throw"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a terminated process is an error; interrupting a
        process that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        if self._target is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        failed = Event(self.env)
        failed._value = None
        failed._exc = Interrupt(cause)
        failed._triggered = True
        failed.callbacks.append(self._resume)
        self.env.schedule(failed, priority=Environment_URGENT)

    # -- engine interface ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        self.env._active_proc = self
        self._target = None
        evt: Optional[Event] = event
        while True:
            try:
                if evt is not None and evt._exc is not None:
                    evt._defused = True
                    nxt = self.gen.throw(evt._exc)
                else:
                    nxt = self.gen.send(evt._value if evt is not None else None)
            except StopIteration as stop:
                self.env._active_proc = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._active_proc = None
                self.fail(exc)
                return

            if not isinstance(nxt, Event):
                self.env._active_proc = None
                self.fail(TypeError(f"process {self.name!r} yielded non-event {nxt!r}"))
                return
            if nxt.env is not self.env:
                self.env._active_proc = None
                self.fail(RuntimeError("yielded event belongs to a different Environment"))
                return

            if nxt._processed:
                # Already resolved: loop immediately without a scheduler trip.
                evt = nxt
                continue
            nxt.callbacks.append(self._resume)
            self._target = nxt
            self.env._active_proc = None
            return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'dead' if self._triggered else 'alive'}>"


class ConditionValue:
    """Ordered mapping of the events a condition collected, with values."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composition events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for evt in self._events:
            if evt.env is not env:
                raise ValueError("all events must share one Environment")
        # Evaluate immediately for already-processed events; subscribe to rest.
        for evt in self._events:
            if evt._processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)
        if not self._events and not self._triggered:
            self.succeed(ConditionValue())

    def _check(self, event: Event) -> None:
        if self._triggered:
            if event._exc is not None:
                event._defused = True
            return
        self._count += 1
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        elif self._evaluate():
            value = ConditionValue()
            value.events = [e for e in self._events if e._triggered and e._exc is None]
            self.succeed(value)

    def _evaluate(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered successfully."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count >= len(self._events)


class AnyOf(_Condition):
    """Triggers when at least one component event has triggered."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return self._count >= 1 or not self._events
