"""A2 — Heterogeneity ablation (the paper's §V future-work scenario).

"We also plan to carry on research on clusters with an increasing level
of heterogeneity, involving a dynamically variable number of both nodes
enabled with hardware accelerators and general purpose nodes" (§V).

A Pi job targets the Cell kernel with a Java fallback on bare nodes,
while the fraction of accelerator-equipped workers sweeps 0→1. The bench
runs the sweep at two split granularities, because §III-A notes "the
granularity of the splits have a high influence on the balancing
capability of the scheduler":

- coarse (one task per slot): the makespan is pinned to the slowest
  node class — adding accelerators barely helps until every node has one;
- fine (8 tasks per slot): Hadoop's feed-the-idle-node scheduling lets
  accelerated nodes absorb most of the work, so the makespan falls
  smoothly with the accelerated fraction.
"""

from repro.analysis import Series
from repro.perf import Backend, PAPER_CALIBRATION
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import JobState

from conftest import emit

CAL = PAPER_CALIBRATION
NODES = 8
SAMPLES = 4e10
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _run_mixed(fraction: float, waves: int) -> float:
    sim = SimulatedCluster(NODES, accelerated_fraction=fraction)
    conf = JobConf(
        name="hetero",
        workload="pi",
        backend=Backend.CELL_SPE_DIRECT,
        fallback_backend=Backend.JAVA_PPE,
        samples=SAMPLES,
        num_map_tasks=NODES * CAL.mappers_per_node * waves,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    return result.makespan_s


def _sweep():
    coarse = Series("coarse splits (1 task/slot)")
    fine = Series("fine splits (8 tasks/slot)")
    for f in FRACTIONS:
        x = f if f > 0 else 0.01  # keep log plots happy
        coarse.append(x, _run_mixed(f, waves=1))
        fine.append(x, _run_mixed(f, waves=8))
    return [coarse, fine]


def test_ablation_heterogeneous(once):
    series = once(_sweep)
    coarse, fine = series
    speedup_full = coarse.ys[0] / coarse.ys[-1]
    coarse_half_gain = coarse.ys[0] / coarse.ys[2]
    fine_half_gain = fine.ys[0] / fine.ys[2]
    fine_monotone = all(b <= a * 1.05 for a, b in zip(fine.ys, fine.ys[1:]))
    claims = [
        (
            "full acceleration is ~an order of magnitude faster than none",
            ">5x",
            f"{speedup_full:.1f}x",
            speedup_full > 5,
        ),
        (
            "coarse splits: slowest node class pins the makespan",
            "~no gain at 50% accel",
            f"{coarse_half_gain:.2f}x at 50%",
            coarse_half_gain < 1.5,
        ),
        (
            "fine splits let the scheduler absorb heterogeneity",
            "smooth gain with fraction",
            f"{fine_half_gain:.2f}x at 50%",
            fine_monotone and fine_half_gain > coarse_half_gain * 1.2,
        ),
    ]
    emit(
        "Ablation A2: CPU-intensive job on a partially accelerated cluster",
        series,
        claims,
        xlabel="Accelerated fraction",
        ylabel="Time (s)",
        figure="A2 (heterogeneity)",
    )
