"""E8 — GPU extension: the paper's conclusions, replayed on a Tesla.

§I claims "the system may be easily extended to take advantage of other
existing accelerators in the system, such as GPUs". This bench runs the
paper's two headline experiments with a Tesla-C1060-class backend behind
the same offload interface and shows both conclusions carry over:

- data-intensive (Fig. 5 shape): a GPU that encrypts 2x faster than the
  Cell *still* ties with the plain Java mapper — the delivery path is
  accelerator-agnostic;
- CPU-intensive (Fig. 8 shape): the GPU's higher sample rate beats the
  Cell where work per node is high, and hits the same Hadoop runtime
  floor where it is not.
"""

from repro.analysis import Series
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf

from conftest import emit

CAL = PAPER_CALIBRATION
NODES = (4, 8, 16)
DATA = 24 * GB
SAMPLES = 4e11


def _encrypt(nodes: int, backend: Backend) -> float:
    gpu = backend is Backend.GPU_TESLA
    sim = SimulatedCluster(
        nodes, accelerated_fraction=0.0 if gpu else 1.0, gpu_fraction=1.0 if gpu else 0.0
    )
    sim.ingest("/in", DATA)
    workload = "empty" if backend is Backend.EMPTY else "aes"
    result = sim.run_job(JobConf(
        name="e", workload=workload, backend=backend,
        input_path="/in", num_map_tasks=nodes * CAL.mappers_per_node))
    assert result.succeeded
    return result.makespan_s


def _pi(nodes: int, backend: Backend, samples: float = SAMPLES) -> float:
    gpu = backend is Backend.GPU_TESLA
    sim = SimulatedCluster(
        nodes, accelerated_fraction=0.0 if gpu else 1.0, gpu_fraction=1.0 if gpu else 0.0
    )
    result = sim.run_job(JobConf(
        name="p", workload="pi", backend=backend,
        samples=samples, num_map_tasks=nodes * CAL.mappers_per_node))
    assert result.succeeded
    return result.makespan_s


def _sweep():
    series = []
    for label, fn, backend in (
        ("encrypt Java", _encrypt, Backend.JAVA_PPE),
        ("encrypt Cell", _encrypt, Backend.CELL_SPE_DIRECT),
        ("encrypt GPU", _encrypt, Backend.GPU_TESLA),
        ("pi Java", _pi, Backend.JAVA_PPE),
        ("pi Cell", _pi, Backend.CELL_SPE_DIRECT),
        ("pi GPU", _pi, Backend.GPU_TESLA),
    ):
        s = Series(label)
        for n in NODES:
            s.append(n, fn(n, backend))
        series.append(s)
    return series


def test_extension_gpu_backend(once):
    series = once(_sweep)
    by = {s.label: s for s in series}
    enc_gap = max(
        abs(by["encrypt GPU"].y_at(n) - by["encrypt Java"].y_at(n)) / by["encrypt Java"].y_at(n)
        for n in NODES
    )
    pi_gpu_vs_cell = by["pi Cell"].y_at(4) / by["pi GPU"].y_at(4)
    # Floor comparison at a low-work point where neither accelerator has
    # meaningful compute left (1e10 samples over 32 mappers).
    floor_cell = _pi(16, Backend.CELL_SPE_DIRECT, samples=1e10)
    floor_gpu = _pi(16, Backend.GPU_TESLA, samples=1e10)
    pi_floor_gap = abs(floor_gpu - floor_cell)
    claims = [
        (
            "GPU ties with Java on the data-intensive job",
            "delivery path is accelerator-agnostic",
            f"max gap {enc_gap * 100:.1f}%",
            enc_gap < 0.08,
        ),
        (
            "GPU beats Cell on the CPU-intensive job at high load",
            "higher sample rate shows",
            f"{pi_gpu_vs_cell:.2f}x at 4 nodes",
            pi_gpu_vs_cell > 1.5,
        ),
        (
            "both accelerators meet the same Hadoop floor at scale",
            "floors converge",
            f"|gpu-cell| = {pi_floor_gap:.1f}s at 16 nodes",
            pi_floor_gap < 10,
        ),
    ]
    emit(
        "Extension E8: Tesla-class GPU behind the same offload interface",
        series,
        claims,
        xlabel="Nodes",
        ylabel="Time (s)",
        figure="E8 (GPU)",
    )
