"""Figure 8 — Distributed Pi estimation, 1e11 samples, node scaling.

Paper setup (§IV-B): 1e11 samples, nodes {4, 8, 16, 32, 64}, three
curves: Java mapper, Cell mapper, and Cell mapper with 10x the samples.

Paper observations reproduced here:
- "the Cell-accelerated mapper is clearly quicker than the Java mapper,
  and the difference in performance varies from one to two orders of
  magnitude";
- "for the Cell-accelerated Mapper and configurations with 8 or more
  nodes, what is limiting the performance ... is the Hadoop runtime";
- the 10x run "shows the same linear reduction ... until the Hadoop
  runtime starts limiting the overall performance ... again, in the 32
  nodes configuration".
"""

from repro.analysis import Series, log_slope
from repro.perf import Backend
from repro.core import run_pi_job

from conftest import emit

NODES = (4, 8, 16, 32, 64)
SAMPLES = 1e11


def _sweep():
    out = []
    for label, backend, mult in (
        ("Java Mapper", Backend.JAVA_PPE, 1),
        ("Cell BE Mapper", Backend.CELL_SPE_DIRECT, 1),
        ("Cell BE Mapper (10x samples)", Backend.CELL_SPE_DIRECT, 10),
    ):
        s = Series(label)
        for n in NODES:
            result = run_pi_job(n, SAMPLES * mult, backend)
            assert result.succeeded
            s.append(n, result.makespan_s)
        out.append(s)
    return out


def test_fig8_pi_scaling(once):
    series = once(_sweep)
    java, cell, cell10 = series
    ratios = [java.y_at(n) / cell.y_at(n) for n in NODES]
    java_slope = log_slope(java, 4, 64)
    cell_tail_slope = log_slope(cell, 8, 64)
    c10_head = log_slope(cell10, 4, 32)
    c10_tail = log_slope(cell10, 32, 64)
    claims = [
        (
            "Cell is 1-2 orders of magnitude quicker than Java",
            "10x-100x",
            f"{min(ratios):.0f}x-{max(ratios):.0f}x",
            min(ratios) >= 8 and max(ratios) <= 300,
        ),
        (
            "Java keeps scaling linearly",
            "log-log slope ~-1",
            f"{java_slope:.2f}",
            -1.1 <= java_slope <= -0.85,
        ),
        (
            "Cell limited by the Hadoop runtime at >=8 nodes",
            "flat beyond 8 nodes",
            f"slope(8..64) = {cell_tail_slope:.2f}",
            cell_tail_slope > -0.5,
        ),
        (
            "10x-samples curve scales linearly then stops around 32 nodes",
            "slope -1 early, flattens late",
            f"head {c10_head:.2f}, tail {c10_tail:.2f}",
            c10_head < -0.85 and c10_tail > c10_head + 0.2,
        ),
    ]
    emit(
        "Figure 8: Distributed Pi estimation of 1e11 samples (time vs nodes)",
        series,
        claims,
        xlabel="Nodes",
        ylabel="Time (s)",
        figure="Fig. 8",
    )
