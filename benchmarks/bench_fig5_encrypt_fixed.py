"""Figure 5 — Distributed encryption, fixed 120 GB data set.

Paper setup (§IV-A): 120 GB input, nodes {4, 8, 16, 32, 64}, three
mappers: EmptyMapper (reads but computes nothing — the Hadoop-overhead
probe), Java, and Cell-accelerated.

Paper observations reproduced here:
- "the Hadoop runtime scales well with the number of nodes";
- "the effect of hardware acceleration can be hardly noticed";
- "the difference in the execution time between the Empty mapper ...
  and the other mappers is really small" — communication is the
  limiting factor for data-intensive applications.
"""

from repro.analysis import Series, is_monotonic, log_slope
from repro.perf import Backend
from repro.perf.calibration import GB
from repro.core import run_empty_job, run_encryption_job

from conftest import emit

NODES = (4, 8, 16, 32, 64)
DATA = 120 * GB


def _sweep():
    out = []
    for label, backend in (
        ("Empty Mapper", Backend.EMPTY),
        ("Java Mapper", Backend.JAVA_PPE),
        ("Cell Mapper", Backend.CELL_SPE_DIRECT),
    ):
        s = Series(label)
        for n in NODES:
            if backend is Backend.EMPTY:
                result = run_empty_job(n, DATA)
            else:
                result = run_encryption_job(n, DATA, backend)
            assert result.succeeded
            s.append(n, result.makespan_s)
        out.append(s)
    return out


def test_fig5_encrypt_fixed_120gb(once):
    series = once(_sweep)
    empty, java, cell = series
    slope = log_slope(java, 4, 64)
    accel_gap = max(abs(java.y_at(n) - cell.y_at(n)) / java.y_at(n) for n in NODES)
    empty_gap = max((java.y_at(n) - empty.y_at(n)) / java.y_at(n) for n in NODES)
    claims = [
        (
            "Hadoop scales well with node count",
            "time drops with nodes",
            f"log-log slope {slope:.2f}",
            all(is_monotonic(s.ys, increasing=False) for s in series) and slope < -0.85,
        ),
        (
            "hardware acceleration hardly noticed",
            "Java ~= Cell",
            f"max gap {accel_gap * 100:.1f}%",
            accel_gap < 0.08,
        ),
        (
            "EmptyMapper difference is really small",
            "Empty ~= Java",
            f"max gap {empty_gap * 100:.1f}%",
            0 <= empty_gap < 0.08,
        ),
        (
            "order of magnitude: thousands of seconds at 4 nodes",
            "~10^3 s scale-down",
            f"{java.y_at(4):.0f} s -> {java.y_at(64):.0f} s",
            1000 < java.y_at(4) < 5000 and 100 < java.y_at(64) < 400,
        ),
    ]
    emit(
        "Figure 5: Distributed encryption of 120 GB (time vs nodes, log-log)",
        series,
        claims,
        xlabel="Nodes",
        ylabel="Time (s)",
        figure="Fig. 5",
    )
