"""A3 — SPU chunk-size ablation.

The paper fixes the node-level decomposition at 4 KB ("each record was
split into 4KB data blocks that were sent to the SPUs", §IV-A) without
justifying it. This bench sweeps the chunk size through the Cell offload
runtime and shows the design space the authors navigated:

- tiny chunks pay per-request DMA latency and lose throughput;
- the plateau is broad (1 KB–32 KB all reach ~the socket rate,
  because AES compute dominates the DMA at every legal size);
- chunks above ~52 KB cannot double-buffer inside the 256 KB local
  store at all — the allocator rejects them, exactly like real SPE code.
"""

import pytest

from repro.analysis import Series
from repro.perf import PAPER_CALIBRATION
from repro.perf.calibration import MB
from repro.cell import CellProcessor, DirectSPERuntime, LocalStoreOverflow
from repro.sim import Environment

from conftest import emit

CAL = PAPER_CALIBRATION
CHUNKS = (64, 256, 1024, 4096, 16 * 1024, 32 * 1024)
DATA = 64 * MB


def _bandwidth_for_chunk(chunk_bytes: int) -> float:
    env = Environment()
    cell = CellProcessor(env, 0, CAL)
    rt = DirectSPERuntime(cell, CAL, chunk_bytes=chunk_bytes)

    def run():
        result = yield from rt.offload_bytes(DATA, CAL.aes_spe_bw)
        return result

    result = env.run(env.process(run()))
    return DATA / result.elapsed_s / MB


def _sweep():
    s = Series("offload bandwidth (MB/s)")
    for c in CHUNKS:
        s.append(c, _bandwidth_for_chunk(c))
    return [s]


def test_ablation_chunk_size(once):
    series = once(_sweep)
    s = series[0]
    paper_bw = s.y_at(4096)
    tiny_bw = s.y_at(64)
    # Oversized chunks must be rejected by the local-store allocator.
    env = Environment()
    cell = CellProcessor(env, 0, CAL)
    with pytest.raises(LocalStoreOverflow):
        DirectSPERuntime(cell, CAL, chunk_bytes=64 * 1024)
    claims = [
        (
            "paper's 4 KB chunk reaches the socket plateau",
            "~700 MB/s",
            f"{paper_bw:.0f} MB/s",
            paper_bw > 0.97 * 700,
        ),
        (
            "tiny chunks lose throughput to DMA issue latency",
            "visible drop at 64 B",
            f"{tiny_bw:.0f} vs {paper_bw:.0f} MB/s",
            tiny_bw < paper_bw,
        ),
        (
            "chunks beyond the local-store budget are impossible",
            "alloc failure >52 KB",
            "LocalStoreOverflow at 64 KB",
            True,
        ),
        (
            "1 KB already loses a few % to per-chunk overhead",
            "slightly below 4 KB",
            f"{s.y_at(1024):.0f} vs {paper_bw:.0f} MB/s",
            0.9 * paper_bw < s.y_at(1024) < paper_bw,
        ),
        (
            "beyond 4 KB the curve saturates (overhead amortized)",
            "within ~2.5% of 4 KB",
            ", ".join(f"{y:.0f}" for y in s.ys[3:]),
            all(abs(y - paper_bw) / paper_bw < 0.025 for y in s.ys[3:]),
        ),
    ]
    emit(
        "Ablation A3: SPU chunk-size sweep for the AES offload",
        series,
        claims,
        xlabel="Chunk (bytes)",
        ylabel="MB/s",
        figure="A3 (chunking)",
    )
