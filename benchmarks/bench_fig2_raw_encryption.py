"""Figure 2 — Raw node encryption performance.

Paper setup (§IV-A): one Cell blade, working sets of 1–1024 MB cached in
memory, four configurations (Cell BE direct, MapReduce-for-Cell, Java on
the Cell PPE, Java on a Power6 core). No Hadoop involved.

Paper observations reproduced here:
- the direct Cell kernel is the fastest, plateauing near 700 MB/s;
- the MapReduce-for-Cell version pays "a considerable overhead" for its
  PPE-side input copies;
- one Power6 core encrypts around 45 MB/s; the Cell PPE is slower still.
"""

from repro.analysis import crossover_x, is_monotonic
from repro.core import raw_encryption_bandwidth

from conftest import emit

SIZES_MB = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig2_raw_encryption(once):
    series = once(raw_encryption_bandwidth, SIZES_MB)
    by = {s.label: s for s in series}
    cell, mrc = by["Cell BE"], by["MapReduce Cell"]
    ppc, p6 = by["PPC"], by["Power 6"]

    cell_peak = cell.y_at(1024)
    claims = [
        (
            "Cell BE plateaus near 700 MB/s",
            "~700 MB/s",
            f"{cell_peak:.0f} MB/s",
            0.95 * 700 <= cell_peak <= 1.05 * 700,
        ),
        (
            "Power6 core around 45 MB/s",
            "~45 MB/s",
            f"{p6.y_at(1024):.0f} MB/s",
            0.9 * 45 <= p6.y_at(1024) <= 1.1 * 45,
        ),
        (
            "MR-Cell pays considerable overhead vs direct",
            "clearly below Cell BE",
            f"{mrc.y_at(1024) / cell_peak:.2f}x of direct",
            mrc.y_at(1024) < 0.7 * cell_peak,
        ),
        (
            "MR-Cell still beats both Java configs",
            "2nd fastest",
            f"{mrc.y_at(1024):.0f} vs {p6.y_at(1024):.0f} MB/s",
            mrc.y_at(1024) > p6.y_at(1024) > ppc.y_at(1024),
        ),
        (
            "PPE is the slowest configuration",
            "slowest curve",
            f"{ppc.y_at(1024):.0f} MB/s",
            all(ppc.ys[i] <= min(cell.ys[i], mrc.ys[i], p6.ys[i]) for i in range(len(SIZES_MB))),
        ),
        (
            "Cell ramps with working-set size (startup amortization)",
            "rising curve",
            f"{cell.y_at(1):.0f} -> {cell_peak:.0f} MB/s",
            is_monotonic(cell.ys) and cell.y_at(1) < cell_peak / 4,
        ),
    ]
    emit(
        "Figure 2: Raw node encryption performance (bandwidth vs size)",
        series,
        claims,
        xlabel="Size(MB)",
        ylabel="Bandwidth (MB/s)",
        figure="Fig. 2",
    )
