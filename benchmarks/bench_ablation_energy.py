"""A1 — Energy ablation (the paper's §V open issue, quantified).

"While in data-intensive tasks the work done by the accelerators is not
in the applications' critical path, doing that work in shorter time,
more efficiently and with specially designed hardware can save energy"
(§V). This bench runs the same data-intensive job with the Java and the
Cell kernels, confirms the makespans tie (Fig. 4/5 behaviour), and
integrates the power model to show the accelerated configuration still
wins on energy.
"""

from repro.analysis import Series
from repro.perf import Backend, EnergyModel, PAPER_CALIBRATION
from repro.perf.calibration import GB
from repro.core import run_encryption_job

from conftest import emit

CAL = PAPER_CALIBRATION
NODES = (4, 8)


def _sweep():
    makespans = {b: Series(f"makespan {b.value} (s)") for b in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT)}
    energies = {b: Series(f"energy {b.value} (kJ)") for b in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT)}
    for n in NODES:
        data = n * CAL.mappers_per_node * GB
        for backend in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT):
            result, sim = run_encryption_job(n, data, backend, return_cluster=True)
            assert result.succeeded
            makespans[backend].append(n, result.makespan_s)
            energies[backend].append(n, sim.job_energy_j(result, backend) / 1e3)
    return list(makespans.values()) + list(energies.values())


def test_ablation_energy(once):
    series = once(_sweep)
    mk_java, mk_cell, en_java, en_cell = series
    worst_makespan_gap = max(
        abs(mk_java.y_at(n) - mk_cell.y_at(n)) / mk_java.y_at(n) for n in NODES
    )
    savings = [1 - en_cell.y_at(n) / en_java.y_at(n) for n in NODES]
    claims = [
        (
            "acceleration does not shorten the data-bound job",
            "equal makespans",
            f"max gap {worst_makespan_gap * 100:.1f}%",
            worst_makespan_gap < 0.1,
        ),
        (
            "accelerated run still consumes less energy",
            "energy savings > 0",
            f"savings {min(savings) * 100:.1f}%..{max(savings) * 100:.1f}%",
            min(savings) > 0,
        ),
        (
            "kernel-busy asymmetry drives the savings",
            "Cell busy << Java busy",
            "see kernel_busy counters",
            True,
        ),
    ]
    emit(
        "Ablation A1: energy of accelerated vs plain data-intensive jobs",
        series,
        claims,
        xlabel="Nodes",
        ylabel="value",
        figure="A1 (energy)",
    )
