"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation figures: it
runs the workload through the simulated stack, prints the same series
the figure plots (plus an ASCII rendering and a paper-vs-measured claim
table), and asserts the claims so a calibration regression fails loudly.
"""

import sys

import pytest

from repro.analysis import ascii_chart, paper_comparison_rows
from repro.analysis.report import series_table


def emit(title: str, series, claims, xlabel: str, ylabel: str, figure: str) -> None:
    """Print one figure's full reproduction block."""
    out = sys.stdout
    print(f"\n{'=' * 78}\n{title}\n{'=' * 78}", file=out)
    print(series_table(series, x_name=xlabel), file=out)
    print(file=out)
    print(ascii_chart(series, title=title, xlabel=xlabel, ylabel=ylabel), file=out)
    print(file=out)
    print(paper_comparison_rows(figure, claims), file=out)
    failed = [c for c in claims if not c[3]]
    assert not failed, f"{figure}: failed claims: {[c[0] for c in failed]}"


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulations are
    deterministic; repeated rounds only waste the time budget)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
