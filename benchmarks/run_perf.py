#!/usr/bin/env python
"""Tracked engine-performance harness.

Runs six suites and records the results in ``BENCH_engine.json``:

1. **Engine microbenchmarks** — apples-to-apples A/B against the frozen
   seed engine (``benchmarks/legacy``): the same workload driven through
   the pre-overhaul kernel and the optimized one, interleaved to defeat
   host-timing noise. The headline metric is the median per-pair
   **wall-clock speedup**; events/sec is reported only as a diagnostic,
   because event-eliding optimizations make it misleading (a bench that
   cancels 3000 events in 8 actual events has a *lower* events/sec
   precisely because it is faster).
2. **Fig-8 sweep** — the full Pi node-scaling sweep (the heaviest figure
   reproduction) in optimized vs reference engine mode, asserting that
   every series value is **byte-identical** between the two modes (the
   determinism contract) and reporting the wall-clock speedup of the
   optimized event loop.
3. **Model bench** — the cluster-protocol A/B (``repro.modelmode``):
   event-thin heartbeats + analytic task segments vs the pre-overhaul
   fixed-interval model, reporting events-per-simulated-job, cluster-
   scale wall-clock, and the makespan drift the protocol change costs.
4. **Sweep bench** — the experiment-layer fan-out: persistent
   ``SweepPool`` dispatch overhead vs a cold per-sweep pool, the
   point-cache incremental re-sweep (executed-point reduction after a
   one-value grid edit), and 4-shard ``--merge`` parity against a
   serial run in both engine modes and both model modes.
5. **Scale bench** — the weak-scaling envelope: the ``scale`` scenario
   family (256-4096 nodes, every placement policy) timed against a
   frozen seed-tree baseline with a >= 2x gate on the 1024-node point,
   the 2048/4096 wall-clock + peak-RSS envelope recorded, and the
   per-policy mean-completion values re-checked byte-exactly (the
   speedup must be pure wall-clock, never model drift).

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py          # full run
    PYTHONPATH=src python benchmarks/run_perf.py --smoke  # quick CI smoke

``--smoke`` shrinks every workload and enforces a wall-clock budget so
it can gate CI; it still checks byte-identity and the event-reduction
floor (those are algorithmic, not timing-sensitive). Exit status is
non-zero if determinism, event-thinness, or (non-smoke) speed targets
fail.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for p in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if p not in sys.path:
        sys.path.insert(0, p)

import benchmarks.legacy as legacy  # noqa: E402
import repro.sim.engine as engine  # noqa: E402
from repro.sim import Environment, Interrupt, PriorityResource, Store  # noqa: E402

# --------------------------------------------------------------------------- #
# Microbenchmark workloads                                                     #
#                                                                              #
# Each takes a module namespace (legacy or current) plus a size, builds a      #
# fresh Environment, runs, and returns (wall_seconds, processed_events).       #
# --------------------------------------------------------------------------- #


def _run(env) -> tuple[float, int]:
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    env.run()
    dt = time.perf_counter() - t0
    gc.enable()
    return dt, env.processed_events


def micro_timeout_chain(ns, n: int) -> tuple[float, int]:
    """Pure event-loop throughput: one process, n sequential sleeps."""
    env = ns.Environment()
    to = getattr(env, "pooled_timeout", env.timeout)

    def proc():
        for _ in range(n):
            yield to(1.0)

    env.process(proc())
    return _run(env)


def micro_event_pingpong(ns, n: int) -> tuple[float, int]:
    """Two processes rendezvousing through bare events (succeed path)."""
    env = ns.Environment()
    box = {"evt": ns.Event(env)}

    def ping():
        for _ in range(n):
            box["evt"].succeed()
            box["evt"] = ns.Event(env)
            yield env.timeout(1.0)

    def pong():
        for _ in range(n):
            yield box["evt"]

    env.process(pong())
    env.process(ping())
    return _run(env)


def micro_interrupt_storm(ns, n: int) -> tuple[float, int]:
    """n sleepers on one shared event, all interrupted: exercises
    cancellation (eager O(n) callback removal vs lazy tombstones)."""
    env = ns.Environment()
    barrier = env.timeout(10_000.0)
    interrupt_cls = ns.Interrupt  # each engine raises its own class

    def sleeper():
        try:
            yield barrier
        except interrupt_cls:
            pass

    procs = [env.process(sleeper()) for _ in range(n)]

    def killer():
        yield env.timeout(1.0)
        # Reverse order: each eager O(n) callback removal scans the
        # whole subscriber list (worst case); lazy tombstones are O(1)
        # regardless of order.
        for p in reversed(procs):
            if p.is_alive:
                p.interrupt("storm")

    env.process(killer())
    return _run(env)


def micro_cancel_churn(ns, n: int) -> tuple[float, int]:
    """n queued priority requests withdrawn in waves: exercises the
    eager heapify-per-cancel vs lazy-deletion + compaction path."""
    env = ns.Environment()
    res = ns.PriorityResource(env, capacity=1)

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(1_000.0)

    def churn():
        yield env.timeout(1.0)
        reqs = [res.request(priority=1 + (i % 7)) for i in range(n)]
        yield env.timeout(1.0)
        for r in reqs:
            r.cancel()

    env.process(holder())
    env.process(churn())
    return _run(env)


def micro_store_pingpong(ns, n: int) -> tuple[float, int]:
    """Producer/consumer message loop through a bounded Store — the
    heartbeat-mailbox pattern that dominates the cluster protocol."""
    env = ns.Environment()
    inbox = ns.Store(env, capacity=4)
    outbox = ns.Store(env, capacity=4)

    def producer():
        for i in range(n):
            yield inbox.put(i)
            yield outbox.get()

    def consumer():
        for _ in range(n):
            item = yield inbox.get()
            yield outbox.put(item)

    env.process(producer())
    env.process(consumer())
    return _run(env)


def micro_resource_cycle(ns, n: int) -> tuple[float, int]:
    """Acquire/hold/release cycles on an uncontended unit resource."""
    env = ns.Environment()
    res = ns.Resource(env, capacity=1)

    def worker():
        for _ in range(n):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)

    env.process(worker())
    return _run(env)


MICROS = {
    "timeout_chain": (micro_timeout_chain, 150_000, 20_000),
    "event_pingpong": (micro_event_pingpong, 60_000, 8_000),
    "interrupt_storm": (micro_interrupt_storm, 3_000, 600),
    "cancel_churn": (micro_cancel_churn, 3_000, 600),
    "store_pingpong": (micro_store_pingpong, 40_000, 6_000),
    "resource_cycle": (micro_resource_cycle, 50_000, 7_000),
}


class _CurrentNS:
    """Adapter giving the current engine the same surface as the legacy
    namespace object."""

    from repro.sim import (  # type: ignore[misc]
        Environment,
        Event,
        Interrupt,
        PriorityResource,
        Resource,
        Store,
    )


def run_micros(pairs: int, smoke: bool) -> dict:
    results = {}
    for name, (fn, full_n, smoke_n) in MICROS.items():
        n = smoke_n if smoke else full_n
        rows = []
        for _ in range(pairs):
            # Two back-to-back reps per side, keeping the faster one:
            # filters one-sided host hiccups out of the pair ratio
            # (this harness runs on shared/virtualized CPUs).
            l_dt, l_events = fn(legacy, n)
            l_dt = min(l_dt, fn(legacy, n)[0])
            c_dt, c_events = fn(_CurrentNS, n)
            c_dt = min(c_dt, fn(_CurrentNS, n)[0])
            rows.append((l_dt, l_events, c_dt, c_events))
        med_speedup = statistics.median(r[0] / r[2] for r in rows)
        best = min(rows, key=lambda r: r[2])
        results[name] = {
            # Headline: wall-clock. Events/sec lives under "diagnostic"
            # because event-eliding benches (e.g. cancel_churn: 3009
            # legacy events vs 8) report *lower* events/sec the faster
            # they get — comparing it across engines is meaningless
            # unless the event counts match.
            "n": n,
            "wallclock_speedup_median": round(med_speedup, 3),
            "wallclock_optimized_best_s": round(best[2], 5),
            "diagnostic": {
                "events_legacy": rows[0][1],
                "events_optimized": rows[0][3],
                "events_comparable": rows[0][1] == rows[0][3],
                "events_per_sec_legacy": max(r[1] / r[0] for r in rows),
                "events_per_sec_optimized": max(r[3] / r[2] for r in rows),
                "note": (
                    "diagnostic only; when events_comparable is false the "
                    "optimized engine eliminated events, so events/sec is "
                    "not a speed metric — wallclock_speedup_median is"
                ),
            },
        }
        eliding = "" if rows[0][1] == rows[0][3] else "  [event-eliding]"
        print(
            f"  micro {name:<16} n={n:<7} speedup x{med_speedup:5.2f}  "
            f"({rows[0][1]} legacy events vs {rows[0][3]} optimized){eliding}"
        )
    geomean = math.exp(
        statistics.fmean(math.log(r["wallclock_speedup_median"]) for r in results.values())
    )
    results["_geomean_speedup"] = round(geomean, 3)
    print(f"  micro geomean speedup: x{geomean:.2f}")
    return results


# --------------------------------------------------------------------------- #
# Determinism: engine-mode trace equality                                      #
# --------------------------------------------------------------------------- #


def _trace_scenario(env: Environment) -> None:
    """A dense mixed scenario: stores, priority cancels, interrupts,
    conditions — every dispatch path the optimized loop specializes."""
    res = PriorityResource(env, capacity=2)
    store = Store(env, capacity=3)

    def worker(i):
        with res.request(priority=i % 3) as req:
            yield req
            yield env.timeout(1 + i % 4)
        yield store.put(i)

    def fickle(i):
        yield env.timeout(0.5 * i)
        req = res.request(priority=0)
        yield env.timeout(0.25)
        req.cancel()

    def consumer():
        for _ in range(8):
            yield store.get()

    def sleeper():
        try:
            yield env.timeout(500.0)
        except Interrupt:
            yield env.timeout(0.125)

    def killer(victim):
        yield env.timeout(3.0)
        if victim.is_alive:
            victim.interrupt("trace")

    for i in range(8):
        env.process(worker(i))
    for i in range(4):
        env.process(fickle(i))
    env.process(consumer())
    victim = env.process(sleeper())
    env.process(killer(victim))
    env.process((t for t in [env.timeout(2.0) & env.timeout(4.0)]))  # condition yield
    env.run()


def check_trace_determinism() -> bool:
    fast = Environment(reference=False)
    fast_trace = fast.capture_trace()
    _trace_scenario(fast)
    ref = Environment(reference=True)
    ref_trace = ref.capture_trace()
    _trace_scenario(ref)
    same = fast_trace == ref_trace
    print(f"  trace determinism (fast vs reference, {len(fast_trace)} events): "
          f"{'IDENTICAL' if same else 'MISMATCH'}")
    return same


# --------------------------------------------------------------------------- #
# Fig-8 sweep: wall-clock + byte-identical series                              #
# --------------------------------------------------------------------------- #


def _fig8_series(nodes, samples, workers: int = 1) -> list[tuple[str, list[float]]]:
    """The Fig-8 sweep through the declarative scenario registry.

    Goes through the same parallel sweep driver the CLI uses
    (`repro sweep fig8`), so the perf harness measures exactly the code
    path the figure reproduction runs; the driver's grid-order
    aggregation keeps the series byte-identical at any worker count.
    """
    from repro.experiments import run_sweep

    result = run_sweep(
        "fig8", {"nodes": list(nodes), "samples": samples}, workers=workers
    )
    return [(s.label, s.ys) for s in result.series]


def run_fig8(pairs: int, smoke: bool, workers: int = 1) -> tuple[dict, bool]:
    nodes = (4, 8) if smoke else (4, 8, 16, 32, 64)
    samples = 1e10 if smoke else 1e11
    # Warm up imports/caches outside the timed region (both modes).
    for mode in (True, False):
        prev = engine.set_reference_mode(mode)
        try:
            _fig8_series((4,), 1e9)
        finally:
            engine.set_reference_mode(prev)
    ref_times, fast_times = [], []
    ref_series = fast_series = None
    for _ in range(pairs):
        prev = engine.set_reference_mode(True)
        try:
            t0 = time.perf_counter()
            ref_series = _fig8_series(nodes, samples, workers)
            ref_times.append(time.perf_counter() - t0)
        finally:
            engine.set_reference_mode(prev)
        prev = engine.set_reference_mode(False)
        try:
            t0 = time.perf_counter()
            fast_series = _fig8_series(nodes, samples, workers)
            fast_times.append(time.perf_counter() - t0)
        finally:
            engine.set_reference_mode(prev)
    # Byte-identity: serialize with full repr precision and compare.
    ref_bytes = json.dumps(ref_series).encode()
    fast_bytes = json.dumps(fast_series).encode()
    identical = ref_bytes == fast_bytes
    speedup = statistics.median(r / f for r, f in zip(ref_times, fast_times))
    print(f"  fig8 sweep nodes={nodes}: reference best {min(ref_times):.3f}s, "
          f"optimized best {min(fast_times):.3f}s, median speedup x{speedup:.2f}")
    print(f"  fig8 series byte-identical across engine modes: {identical}")
    result = {
        "nodes": list(nodes),
        "samples": samples,
        "sweep_workers": workers,
        "wallclock_reference_best_s": round(min(ref_times), 4),
        "wallclock_optimized_best_s": round(min(fast_times), 4),
        "wallclock_speedup_median": round(speedup, 3),
        "series_byte_identical": identical,
        "series": [{"label": lbl, "makespans_s": ys} for lbl, ys in fast_series],
        "note": (
            "reference mode isolates the event-loop rewrite only; the "
            "lazy-cancellation, store fast paths, claim API, and pooled/"
            "composite events are shared by both modes, so the full "
            "speedup over the seed engine is larger (see seed_baseline)"
        ),
    }
    return result, identical


# --------------------------------------------------------------------------- #
# Model bench: event-thin cluster protocol vs the reference model              #
# --------------------------------------------------------------------------- #


def _model_case_pi(nodes: float, samples: float):
    from repro.core.simexec import run_pi_job
    from repro.perf.calibration import Backend

    result, sim = run_pi_job(
        nodes, samples, Backend.CELL_SPE_DIRECT, return_cluster=True
    )
    assert result.succeeded
    return sim.env.processed_events, 1, result.makespan_s, "makespan"


def _model_case_mix(nodes: int, num_jobs: int):
    from repro.core.simexec import run_workload_mix

    mix, sim = run_workload_mix(
        nodes,
        num_jobs=num_jobs,
        scheduler="fair",
        stagger_s=5.0,
        data_gb=2.0,
        samples=2e10,
        accelerated_fraction=0.5,
        return_cluster=True,
    )
    assert mix.succeeded
    return sim.env.processed_events, num_jobs, mix.mean_completion_s, "mean_completion"


def _model_cases(smoke: bool) -> dict:
    """name -> (zero-arg runner, descriptor). Sizes follow the paper's
    Fig-8 grid (64 nodes) plus a cluster-scale point the event-thin
    layer exists for."""
    if smoke:
        return {
            "pi_fig8_64nodes": (lambda: _model_case_pi(64, 1e10), "pi, 64 nodes"),
            "pi_scale_128nodes": (lambda: _model_case_pi(128, 1e11), "pi, 128 nodes"),
            "mix_fair_16nodes": (lambda: _model_case_mix(16, 4), "4-job mix, 16 nodes"),
        }
    return {
        "pi_fig8_64nodes": (lambda: _model_case_pi(64, 1e11), "pi, 64 nodes"),
        "pi_scale_256nodes": (lambda: _model_case_pi(256, 1e12), "pi, 256 nodes"),
        "mix_fair_64nodes": (lambda: _model_case_mix(64, 4), "4-job mix, 64 nodes"),
    }


def run_model_bench(pairs: int, smoke: bool) -> tuple[dict, bool]:
    """A/B the cluster model layer: reference protocol vs event-thin.

    Both sides run the optimized engine; only ``repro.modelmode``
    differs. Headline per case: wall-clock speedup and the events-per-
    simulated-job reduction. The makespan drift is recorded (the
    event-thin protocol intentionally trades exact queue timing at the
    serialized JobTracker for event count) and gated loosely — a large
    drift means a protocol bug, not noise.
    """
    import repro.modelmode as modelmode

    results: dict = {}
    ok = True
    for name, (runner, desc) in _model_cases(smoke).items():
        ref_times, thin_times = [], []
        ref_events = thin_events = jobs = 0
        ref_metric = thin_metric = 0.0
        metric_name = "makespan"
        for _ in range(pairs):
            for reference in (True, False):
                prev = modelmode.set_model_reference(reference)
                try:
                    gc.collect()
                    t0 = time.perf_counter()
                    events, jobs, metric, metric_name = runner()
                    dt = time.perf_counter() - t0
                finally:
                    modelmode.set_model_reference(prev)
                if reference:
                    ref_times.append(dt)
                    ref_events, ref_metric = events, metric
                else:
                    thin_times.append(dt)
                    thin_events, thin_metric = events, metric
        speedup = statistics.median(r / t for r, t in zip(ref_times, thin_times))
        reduction = ref_events / thin_events
        drift = (thin_metric - ref_metric) / ref_metric
        results[name] = {
            "workload": desc,
            "jobs": jobs,
            "wallclock_speedup_median": round(speedup, 3),
            "wallclock_thin_best_s": round(min(thin_times), 4),
            "wallclock_reference_best_s": round(min(ref_times), 4),
            "events_per_job_reference": round(ref_events / jobs, 1),
            "events_per_job_thin": round(thin_events / jobs, 1),
            "event_reduction": round(reduction, 3),
            # Which simulated quantity the drift is measured on: single-
            # job cases report the makespan, the mix case the mean job
            # completion time (the number its scenarios plot).
            "metric": metric_name,
            "metric_reference_s": ref_metric,
            "metric_thin_s": thin_metric,
            "metric_drift": round(drift, 5),
        }
        print(
            f"  model {name:<18} events/job {ref_events // jobs} -> "
            f"{thin_events // jobs} (x{reduction:.2f}), wallclock "
            f"x{speedup:.2f}, {metric_name} drift {drift:+.2%}"
        )
        if abs(drift) > 0.20:
            print(f"  MODEL DRIFT TOO LARGE on {name}: {drift:+.2%}")
            ok = False
        if reduction < 2.0:
            # The acceptance floor: events-per-job must at least halve.
            print(f"  EVENT REDUCTION BELOW 2x on {name}: x{reduction:.2f}")
            ok = False
    return results, ok


def run_model_fig8_ab(pairs: int, smoke: bool) -> dict:
    """Fig-8 sweep wall-clock, event-thin vs reference *model* (the
    number the PR-4 acceptance compares against the pre-overhaul
    ``BENCH_engine.json`` fig8 wallclock)."""
    import repro.modelmode as modelmode

    nodes = (4, 8) if smoke else (4, 8, 16, 32, 64)
    samples = 1e10 if smoke else 1e11
    ref_times, thin_times = [], []
    for _ in range(pairs):
        for reference in (True, False):
            prev = modelmode.set_model_reference(reference)
            try:
                t0 = time.perf_counter()
                _fig8_series(nodes, samples)
                dt = time.perf_counter() - t0
            finally:
                modelmode.set_model_reference(prev)
            (ref_times if reference else thin_times).append(dt)
    speedup = statistics.median(r / t for r, t in zip(ref_times, thin_times))
    print(
        f"  model fig8 sweep nodes={nodes}: reference-model best "
        f"{min(ref_times):.3f}s, event-thin best {min(thin_times):.3f}s, "
        f"median speedup x{speedup:.2f}"
    )
    return {
        "nodes": list(nodes),
        "samples": samples,
        "wallclock_reference_model_best_s": round(min(ref_times), 4),
        "wallclock_thin_model_best_s": round(min(thin_times), 4),
        "wallclock_speedup_median": round(speedup, 3),
    }


# --------------------------------------------------------------------------- #
# Sweep bench: persistent pools, point cache, shard/merge parity               #
# --------------------------------------------------------------------------- #


def _sweep_dispatch_point(cfg):
    """Near-zero work: the sweep's cost is pure dispatch overhead, which
    is exactly what the cold-vs-warm pool A/B isolates."""
    return {"y": cfg["k"] * 1.0 + cfg["seed"] / 7.0}


def _register_dispatch_scenario():
    from repro.experiments import Scenario, register

    return register(Scenario(
        name="_bench_dispatch",
        title="pool-dispatch microbench",
        description="trivial points; measures sweep fan-out overhead",
        run_point=_sweep_dispatch_point,
        grid={"k": tuple(range(8))},
        x="k",
        curves=("y",),
    ), replace=True)


def run_sweep_bench(pairs: int, smoke: bool) -> tuple[dict, bool]:
    """Suite [5/5]: the experiment layer's own overheads.

    All three sub-benches assert byte-level invariants (pooling,
    caching, and sharding must never change result bytes); the pool and
    cache sub-benches additionally gate algorithmic ratios that hold on
    any host — executed-point counts, and a dispatch-overhead ratio
    with an order of magnitude of headroom over its 2x floor.
    """
    import shutil
    import tempfile

    import repro.modelmode as modelmode
    from repro.experiments import run_sweep
    from repro.experiments.cache import cached_sweep
    from repro.experiments.pool import SweepPool
    from repro.experiments.shard import merge_shards, run_shard, write_shard

    ok = True
    results: dict = {}
    _register_dispatch_scenario()
    workers = 4
    reps = max(3, pairs)

    # Cold: a fresh pool forked (and torn down) per sweep — the pre-
    # SweepPool behavior. Warm: one persistent pool reused across
    # sweeps, warmed up once outside the timed region.
    cold_times = []
    baseline = None
    for _ in range(reps):
        with SweepPool(workers) as pool:
            t0 = time.perf_counter()
            r = run_sweep("_bench_dispatch", workers=workers, pool=pool)
            cold_times.append(time.perf_counter() - t0)
        baseline = baseline or r.canonical_json()
    warm_times = []
    with SweepPool(workers) as pool:
        warm = run_sweep("_bench_dispatch", workers=workers, pool=pool)
        for _ in range(reps):
            t0 = time.perf_counter()
            warm = run_sweep("_bench_dispatch", workers=workers, pool=pool)
            warm_times.append(time.perf_counter() - t0)
    pool_ratio = statistics.median(cold_times) / statistics.median(warm_times)
    pooled_identical = warm.canonical_json() == baseline
    results["pool_dispatch"] = {
        "workers": workers,
        "grid_points": len(warm.points),
        "cold_per_sweep_pool_median_s": round(statistics.median(cold_times), 5),
        "warm_persistent_pool_median_s": round(statistics.median(warm_times), 5),
        "overhead_ratio": round(pool_ratio, 3),
        "bytes_identical": pooled_identical,
    }
    print(f"  sweep pool: cold {statistics.median(cold_times) * 1e3:.1f}ms vs "
          f"warm {statistics.median(warm_times) * 1e3:.1f}ms per sweep "
          f"(x{pool_ratio:.1f} overhead reduction)")
    if pool_ratio < 2.0:
        # Wall-clock target: recorded always, enforced only by the full
        # run (smoke fails solely on algorithmic invariants — the byte
        # and executed-count gates below — per the harness contract).
        print(f"  POOL OVERHEAD REDUCTION BELOW 2x: x{pool_ratio:.2f}"
              f"{' (not gated in smoke)' if smoke else ''}")
        ok = ok and smoke
    if not pooled_identical:
        print("  POOLED SWEEP BYTES DIFFER FROM COLD-POOL SWEEP")
        ok = False

    # Point cache: a one-value grid edit must re-run only the new point.
    cache_dir = Path(tempfile.mkdtemp(prefix="sweep-bench-cache-"))
    try:
        first, _ = cached_sweep("_bench_dispatch", workers=1, cache_dir=cache_dir)
        from repro.experiments import get_scenario

        edited = get_scenario("_bench_dispatch").with_overrides(
            {"k": [0, 1, 2, 3, 4, 5, 6, 99]}
        )
        second, _ = cached_sweep(edited, workers=1, cache_dir=cache_dir)
        fresh = run_sweep(edited, workers=1)
        cache_identical = second.canonical_json() == fresh.canonical_json()
        executed_reduction = (
            len(second.points) / max(1, second.executed_points)
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    results["point_cache"] = {
        "grid_points": len(second.points),
        "first_run_executed": first.executed_points,
        "resweep_executed": second.executed_points,
        "resweep_cached": second.cached_points,
        "executed_reduction": round(executed_reduction, 3),
        "bytes_identical": cache_identical,
    }
    print(f"  point cache: grid edit re-ran {second.executed_points}/"
          f"{len(second.points)} points (x{executed_reduction:.1f} fewer), "
          f"bytes identical: {cache_identical}")
    if executed_reduction < 5.0:
        print(f"  CACHED RE-SWEEP REDUCTION BELOW 5x: x{executed_reduction:.2f}")
        ok = False
    if not cache_identical:
        print("  CACHE-ASSEMBLED SWEEP BYTES DIFFER FROM FRESH RUN")
        ok = False

    # Shard/merge parity: 4 shards reassemble to the serial sha256 in
    # every engine-mode x model-mode combination.
    overrides = {"nodes": [2, 4], "samples": 1e9}
    parity: dict = {}
    for eng_ref in (False, True):
        for mod_ref in (False, True):
            prev_e = engine.set_reference_mode(eng_ref)
            prev_m = modelmode.set_model_reference(mod_ref)
            try:
                serial = run_sweep("fig8", overrides, workers=1)
                with tempfile.TemporaryDirectory() as td:
                    dirs = []
                    for i in range(4):
                        manifest = run_shard("fig8", i, 4, overrides, workers=1)
                        dirs.append(write_shard(manifest, Path(td) / f"s{i}").parent)
                    merged = merge_shards(dirs)
            finally:
                engine.set_reference_mode(prev_e)
                modelmode.set_model_reference(prev_m)
            label = (f"engine_{'reference' if eng_ref else 'fast'}"
                     f"_model_{'reference' if mod_ref else 'thin'}")
            identical = merged.sha256() == serial.sha256()
            parity[label] = identical
            if not identical:
                print(f"  SHARD MERGE NOT BYTE-IDENTICAL under {label}")
                ok = False
    results["shard_merge"] = {
        "shards": 4,
        "grid": overrides,
        "sha256_identical": parity,
    }
    print(f"  4-shard merge sha256-identical to serial: "
          f"{all(parity.values())} ({len(parity)} mode combinations)")
    return results, ok


# --------------------------------------------------------------------------- #
# Scale bench: the weak-scaling envelope                                       #
# --------------------------------------------------------------------------- #

#: Frozen seed-tree measurements for the ``scale`` scenario family.
#: The live harness cannot run the seed's cluster stack in-process (the
#: workload modules import the current engine), so the baseline was
#: measured once at PR time and recorded with its methodology — the same
#: pattern as SEED_BASELINE below.
SCALE_BASELINE = {
    "methodology": (
        "scale scenario points (4-job AES+Pi mixes, every placement "
        "policy, weak-scaled per-node work, seed 1234) timed on the "
        "seed tree (restored via git stash) back-to-back with the "
        "optimized tree on the same host; one gc-fenced rep per size"
    ),
    "wallclock_s": {"256": 4.72, "512": 13.73, "1024": 37.22},
    "policy_mean_completion_s": {
        "256": {
            "FIFO": 287.3745120235993,
            "Fair": 436.9375435460291,
            "Locality-aware": 302.77103761252,
            "Accel-aware": 308.73353761251417,
        },
        "1024": {
            "FIFO": 907.995596269413,
            "Fair": 1086.3955962693315,
            "Locality-aware": 908.0080962694128,
            "Accel-aware": 907.995596269413,
        },
    },
    "note": (
        "policy mean-completion values are byte-identical between the "
        "seed and optimized trees at every measured size, so the scale "
        "speedups are pure wall-clock — not model drift"
    ),
}


def _peak_rss_mb() -> float:
    """Process-wide peak RSS (Linux ru_maxrss is in KB). Monotone over
    the process lifetime, so per-size readings taken in ascending size
    order attribute the peak to the size that set it."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _scale_point(nodes: int, **overrides) -> dict[str, float]:
    """One ``scale`` scenario point exactly as the sweep driver binds it
    (scenario defaults + scenario seed), sized by ``nodes``."""
    from repro.experiments.scenarios import SCALE_SCENARIOS, scale_point

    sc = SCALE_SCENARIOS[0]
    cfg = dict(sc.defaults)
    cfg.update(overrides)
    cfg["nodes"] = nodes
    cfg["seed"] = sc.seed
    return scale_point(cfg)


def _print_scale_diff(points: dict, gated: tuple[str, ...]) -> None:
    """The failure diff: per-size seed-vs-now table, not a bare assert."""
    print("    nodes   seed_s    now_s  speedup  gate")
    for key in sorted(points, key=int):
        row = points[key]
        seed_s = row["seed_wallclock_s"]
        if seed_s is None:
            continue
        mark = "x2.0 required" if key in gated else "-"
        print(
            f"    {key:>5}  {seed_s:7.2f}  {row['wallclock_s']:7.2f}  "
            f"x{row['wallclock_speedup']:5.2f}  {mark}"
        )


def run_scale_bench(smoke: bool) -> tuple[dict, bool]:
    """Suite [6/6]: raw wall-clock of the cluster-scale weak-scaling
    envelope (the ``scale`` scenario family, 256-4096 nodes).

    Full mode runs every grid size once (these points cost seconds to
    minutes; the x2 gate below has far more headroom than host timing
    noise), gates the 1024-node point at >= 2x over the frozen seed
    baseline, and records the 2048/4096 envelope (wall-clock + peak
    RSS) that the batch-served protocol and vectorized cost models
    open. Smoke runs a reduced 2048-node leg (2 jobs, 1/8 the per-node
    work — same protocol pressure, budget-sized) plus the 256-node
    point. Both modes re-check the frozen per-policy mean-completion
    values exactly: the speedup must be pure wall-clock.
    """
    ok = True
    gated = ("1024",)
    points: dict = {}
    sizes = ((256,) if smoke else (256, 512, 1024, 2048, 4096))
    for nodes in sizes:
        gc.collect()
        t0 = time.perf_counter()
        values = _scale_point(nodes)
        dt = time.perf_counter() - t0
        key = str(nodes)
        seed_s = SCALE_BASELINE["wallclock_s"].get(key)
        speedup = round(seed_s / dt, 3) if seed_s else None
        points[key] = {
            "wallclock_s": round(dt, 2),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "seed_wallclock_s": seed_s,
            "wallclock_speedup": speedup,
            "policy_mean_completion_s": values,
        }
        vs = f", x{speedup:.2f} vs seed" if speedup else ""
        print(f"  scale {nodes:>4} nodes: {dt:6.2f}s, "
              f"peak RSS {points[key]['peak_rss_mb']:.0f}MB{vs}")
        expected = SCALE_BASELINE["policy_mean_completion_s"].get(key)
        if expected is not None and values != expected:
            print(f"  SCALE POLICY VALUES DRIFTED AT {nodes} NODES:")
            for label in sorted(set(expected) | set(values)):
                want, got = expected.get(label), values.get(label)
                if want != got:
                    print(f"    {label}: seed {want!r} != now {got!r}")
            ok = False
    smoke_leg = None
    if smoke:
        # The 2048-node protocol-pressure leg, budget-sized: the same
        # heartbeat fan-in the full envelope measures, with the per-job
        # work cut so the point fits the CI smoke budget.
        gc.collect()
        t0 = time.perf_counter()
        values = _scale_point(
            2048, num_jobs=2, gb_per_node=0.03125, samples_per_node=5e8
        )
        dt = time.perf_counter() - t0
        smoke_leg = {
            "nodes": 2048,
            "num_jobs": 2,
            "gb_per_node": 0.03125,
            "samples_per_node": 5e8,
            "wallclock_s": round(dt, 2),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "policy_mean_completion_s": values,
        }
        print(f"  scale 2048-node smoke leg (2 jobs, 1/8 work): {dt:6.2f}s, "
              f"peak RSS {smoke_leg['peak_rss_mb']:.0f}MB")
    else:
        missing = [k for k in gated if points.get(k, {}).get("wallclock_speedup") is None]
        low = [k for k in gated
               if k not in missing and points[k]["wallclock_speedup"] < 2.0]
        if missing or low:
            print("  SCALE GATE FAILED: 1024-node family below x2 vs the "
                  "frozen seed baseline")
            _print_scale_diff(points, gated)
            ok = False
    results = {
        "points": points,
        "smoke_leg": smoke_leg,
        "gate": {"sizes": list(gated), "min_speedup": 2.0,
                 "enforced": not smoke},
        "baseline": SCALE_BASELINE,
    }
    return results, ok


#: Interleaved A/B against the actual seed tree (git stash), measured at
#: PR time on this harness's reference hardware. The live harness cannot
#: re-run the seed's full cluster stack in-process (the workload modules
#: import the current engine), so the measurement is recorded here with
#: its methodology; `benchmarks/legacy` keeps the seed *engine* runnable
#: for the microbenchmark A/B above.
SEED_BASELINE = {
    "methodology": (
        "fig8 sweep (nodes 4-64, 3 backends) timed in alternating "
        "subprocesses against the seed source tree, 6 pairs; ratios are "
        "seed_wallclock / optimized_wallclock per pair"
    ),
    "fig8_pair_ratios": [1.57, 1.63, 1.51, 1.59, 1.25, 1.86],
    "fig8_speedup_median": 1.58,
    "series_vs_seed": (
        "makespans bit-identical to the seed except single-ulp drift on "
        "points whose composite timeouts re-associate float addition"
    ),
}


# --------------------------------------------------------------------------- #
# Entry point                                                                  #
# --------------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes + wall-clock budget (CI gate)")
    parser.add_argument("--pairs", type=int, default=None,
                        help="interleaved A/B pairs per benchmark (default 5, smoke 1)")
    parser.add_argument("--budget-s", type=float, default=120.0,
                        help="smoke-mode wall-clock budget in seconds")
    parser.add_argument("--sweep-workers", type=int, default=1,
                        help="worker processes for the Fig-8 sweep (applied "
                             "to both engine modes; series stay byte-"
                             "identical at any count)")
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_engine.json")
    args = parser.parse_args(argv)
    pairs = args.pairs if args.pairs is not None else (1 if args.smoke else 5)
    if pairs < 1:
        parser.error(f"--pairs must be >= 1, got {pairs}")

    t_start = time.perf_counter()
    print(f"engine perf harness ({'smoke' if args.smoke else 'full'}, {pairs} pair(s))")
    print("[1/6] microbenchmarks vs frozen seed engine (benchmarks/legacy)")
    micros = run_micros(pairs, args.smoke)
    print("[2/6] determinism: fast-vs-reference event traces")
    traces_ok = check_trace_determinism()
    print("[3/6] Fig-8 sweep: optimized vs reference engine mode "
          f"({args.sweep_workers} sweep worker(s))")
    fig8, series_ok = run_fig8(pairs, args.smoke, args.sweep_workers)
    print("[4/6] model bench: event-thin cluster protocol vs reference model")
    model_bench, model_ok = run_model_bench(pairs, args.smoke)
    model_bench["fig8_model_ab"] = run_model_fig8_ab(pairs, args.smoke)
    print("[5/6] sweep bench: persistent pools, point cache, shard/merge parity")
    sweep_bench, sweep_ok = run_sweep_bench(pairs, args.smoke)
    print("[6/6] scale bench: weak-scaling envelope vs frozen seed baseline")
    scale_bench, scale_ok = run_scale_bench(args.smoke)
    elapsed = time.perf_counter() - t_start

    report = {
        "suite": "engine-perf",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "elapsed_s": round(elapsed, 2),
        "microbench": micros,
        "trace_determinism_ok": traces_ok,
        "fig8_sweep": fig8,
        "model_bench": model_bench,
        "sweep_bench": sweep_bench,
        "scale_bench": scale_bench,
        "seed_baseline": SEED_BASELINE,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({elapsed:.1f}s total)")

    ok = traces_ok and series_ok and model_ok and sweep_ok and scale_ok
    if args.smoke and elapsed > args.budget_s:
        print(f"SMOKE BUDGET EXCEEDED: {elapsed:.1f}s > {args.budget_s}s")
        ok = False
    if not args.smoke:
        if micros["_geomean_speedup"] < 2.0:
            print("TARGET MISSED: microbenchmark geomean speedup < 2x")
            ok = False
        if fig8["wallclock_speedup_median"] < 0.85:
            # The two modes share all workload-level optimizations, so
            # this only guards against the fast loop itself regressing;
            # 0.85 leaves room for shared-host timing noise.
            print("REGRESSION: optimized engine slower than reference on the sweep")
            ok = False
        if model_bench["fig8_model_ab"]["wallclock_speedup_median"] < 1.5:
            print("TARGET MISSED: event-thin model < 1.5x on the fig8 sweep")
            ok = False
    if not ok:
        print("FAILED")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
