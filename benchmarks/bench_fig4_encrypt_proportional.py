"""Figure 4 — Distributed encryption, proportional data set.

Paper setup (§IV-A): input size proportional to mapper count at 1 GB per
mapper (120 GB at 60 blades / 120 mappers), nodes {12, 24, 36, 48, 60},
2 mappers per blade, 64 MB records, replication 1.

Paper observation reproduced here: "the Cell-accelerated mapper and the
Java mapper offer a very similar performance for this application ...
most of the application time is spent on the Hadoop communication
processes" — the runtime, not the kernel, is the limiting factor.
"""

from repro.analysis import Series
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB
from repro.core import run_encryption_job

from conftest import emit

NODES = (12, 24, 36, 48, 60)
CAL = PAPER_CALIBRATION


def _sweep():
    out = []
    for label, backend in (("Java Mapper", Backend.JAVA_PPE),
                           ("Cell BE Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for n in NODES:
            mappers = n * CAL.mappers_per_node
            result = run_encryption_job(n, mappers * GB, backend)
            assert result.succeeded
            s.append(n, result.makespan_s)
        out.append(s)
    return out


def test_fig4_encrypt_proportional(once):
    series = once(_sweep)
    java, cell = series
    max_gap = max(
        abs(java.y_at(n) - cell.y_at(n)) / java.y_at(n) for n in NODES
    )
    spread = max(java.ys) / min(java.ys)
    claims = [
        (
            "Java and Cell mappers perform very similarly",
            "curves overlap",
            f"max gap {max_gap * 100:.1f}%",
            max_gap < 0.10,
        ),
        (
            "runtime (not kernel) limits the application",
            "flat-ish vs nodes",
            f"max/min over nodes = {spread:.2f}",
            spread < 1.6,
        ),
        (
            "absolute times in the paper's 100-160 s window",
            "100-160 s",
            f"{min(java.ys):.0f}-{max(java.ys):.0f} s",
            80 <= min(java.ys) and max(java.ys) <= 200,
        ),
    ]
    emit(
        "Figure 4: Distributed encryption, 1 GB per mapper (time vs nodes)",
        series,
        claims,
        xlabel="Nodes",
        ylabel="Time (s)",
        figure="Fig. 4",
    )
