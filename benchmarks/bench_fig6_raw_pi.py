"""Figure 6 — Raw node Pi estimation performance.

Paper setup (§IV-B): single Cell blade, total samples 1e3–1e9, three
configurations (Cell SPE kernel, Java on the Cell PPE, Java on Power6).

Paper observations reproduced here:
- "the overhead of work distribution about SPUs is only worth when the
  work ... is above the overhead of SPUs initialization";
- "when the size of the problem is big enough, running more than 10
  million samples, the Cell-accelerated kernel is one order of
  magnitude faster than the Java kernel running on top of the Power6".
"""

from repro.analysis import crossover_x, is_monotonic
from repro.core import raw_pi_rates

from conftest import emit

SAMPLES = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


def test_fig6_raw_pi(once):
    series = once(raw_pi_rates, SAMPLES)
    by = {s.label: s for s in series}
    cell, ppc, p6 = by["Cell BE"], by["PPC"], by["Power 6"]
    cross = crossover_x(cell, p6)
    big_ratio = cell.y_at(1e9) / p6.y_at(1e9)
    claims = [
        (
            "Cell is ~1 order of magnitude over Power6 at large N",
            ">=10x above ~1e7 samples",
            f"{big_ratio:.1f}x at 1e9",
            big_ratio >= 9,
        ),
        (
            "SPU initialization dominates small problems",
            "Cell below Java at small N",
            f"cell {cell.y_at(1e4):.2e} vs p6 {p6.y_at(1e4):.2e}",
            cell.y_at(1e4) < p6.y_at(1e4),
        ),
        (
            "Cell overtakes Power6 around 10M samples",
            "~1e7",
            f"{cross:.0e}" if cross else "never",
            cross is not None and 1e6 <= cross <= 1e8,
        ),
        (
            "Power6 outperforms the Cell PPE",
            "PPC slowest at scale",
            f"p6 {p6.y_at(1e9):.2e} vs ppc {ppc.y_at(1e9):.2e}",
            p6.y_at(1e9) > ppc.y_at(1e9),
        ),
        (
            "all rates rise toward their plateau",
            "monotone curves",
            "monotone",
            all(is_monotonic(s.ys, tol=1e-6) for s in series),
        ),
    ]
    emit(
        "Figure 6: Raw node Pi estimation (samples/s vs total samples)",
        series,
        claims,
        xlabel="Samples",
        ylabel="Samples/sec",
        figure="Fig. 6",
    )
