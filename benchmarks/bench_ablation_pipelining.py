"""A4 — Record-pipelining ablation: *why* Java == Cell in Figs. 4/5.

The paper reports the tie and attributes it to "the Hadoop communication
processes", but the mechanism is specifically *overlap*: the
RecordReader streams record N+1 while record N computes, so any kernel
faster than the ~10 MB/s delivery path is fully hidden. This ablation
turns the overlap off (strictly serial read → compute per record) and
shows the tie break apart: the Java mapper's 16 MB/s kernel now adds to
every record's latency, while the Cell mapper barely notices.

This is the reproduction's strongest evidence that the simulated
mechanism — not a tuned constant — produces the paper's headline
result.
"""

from repro.analysis import Series
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB
from repro.core import run_encryption_job

from conftest import emit

NODES = 4
DATA = NODES * PAPER_CALIBRATION.mappers_per_node * GB  # 1 GB/mapper


def _sweep():
    out = []
    for label, depth in (("pipelined (stock Hadoop)", 2), ("serial (ablation)", 0)):
        calib = PAPER_CALIBRATION.evolve(record_pipeline_depth=depth)
        s = Series(label)
        for i, backend in enumerate((Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT)):
            result = run_encryption_job(NODES, DATA, backend, calib=calib)
            assert result.succeeded
            s.append(i + 1, result.makespan_s)  # x=1 java, x=2 cell
        out.append(s)
    return out


def test_ablation_record_pipelining(once):
    series = once(_sweep)
    piped, serial = series
    java_p, cell_p = piped.y_at(1), piped.y_at(2)
    java_s, cell_s = serial.y_at(1), serial.y_at(2)
    tie_gap = abs(java_p - cell_p) / java_p
    serial_gap = (java_s - cell_s) / cell_s
    claims = [
        (
            "with pipelining Java == Cell (the Figs. 4/5 tie)",
            "gap < ~5%",
            f"{tie_gap * 100:.1f}%",
            tie_gap < 0.05,
        ),
        (
            "without pipelining the tie breaks: Java >> Cell",
            "kernel no longer hidden",
            f"Java {serial_gap * 100:.0f}% slower than Cell",
            serial_gap > 0.25,
        ),
        (
            "Cell barely notices the ablation (kernel ~free)",
            "small change",
            f"{cell_p:.0f}s -> {cell_s:.0f}s",
            abs(cell_s - cell_p) / cell_p < 0.15,
        ),
        (
            "Java pays its full kernel time when serialized",
            "larger change",
            f"{java_p:.0f}s -> {java_s:.0f}s",
            java_s > java_p * 1.25,
        ),
    ]
    emit(
        "Ablation A4: record pipelining on/off (x=1 Java mapper, x=2 Cell mapper)",
        series,
        claims,
        xlabel="backend (1=Java, 2=Cell)",
        ylabel="Time (s)",
        figure="A4 (pipelining)",
    )
