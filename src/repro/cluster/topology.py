"""Cluster assembly.

Builds the paper's testbed shape: N worker blades (QS22 by default, each
with two Cell sockets) plus one JS22 master blade hosting the JobTracker
and NameNode, all behind one GigE switch. The §V heterogeneity ablation
uses ``accelerated_fraction`` to mix accelerator-less workers in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import repro.obs as obs
from repro.perf.calibration import CalibrationProfile, PAPER_CALIBRATION
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.cell.processor import CellProcessor

from repro.cluster.network import Network
from repro.cluster.node import JS22_SPEC, QS22_SPEC, Node, NodeSpec

__all__ = ["Cluster", "ClusterSpec", "build_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a cluster to build.

    Attributes
    ----------
    worker_nodes:
        Number of worker blades (paper: 4–64, up to 66 available).
    worker_spec / master_spec:
        Blade models; defaults match the paper's testbed.
    accelerated_fraction:
        Fraction of workers carrying Cell sockets (1.0 = paper setup;
        swept by the heterogeneity ablation).
    seed:
        Root seed for all stochastic elements (heartbeat jitter, block
        placement tie-breaking).
    trace:
        Retain trace records (disable for large sweeps).
    """

    worker_nodes: int
    worker_spec: NodeSpec = QS22_SPEC
    master_spec: NodeSpec = JS22_SPEC
    accelerated_fraction: float = 1.0
    gpu_fraction: float = 0.0
    """Fraction of workers carrying extension GPUs (2 per blade, one per
    mapper slot) — the §I GPU-extensibility scenario."""
    seed: int = 1234
    trace: bool = False

    def __post_init__(self) -> None:
        if self.worker_nodes < 1:
            raise ValueError("need at least one worker node")
        if not 0.0 <= self.accelerated_fraction <= 1.0:
            raise ValueError("accelerated_fraction must be in [0, 1]")
        if not 0.0 <= self.gpu_fraction <= 1.0:
            raise ValueError("gpu_fraction must be in [0, 1]")


class Cluster:
    """A wired-up simulated cluster."""

    def __init__(self, env: Environment, spec: ClusterSpec, calib: CalibrationProfile):
        self.env = env
        self.spec = spec
        self.calib = calib
        self.network = Network(env, calib)
        self.rng = RandomStreams(spec.seed)
        # An installed obs trace collector overrides the spec's tracer:
        # `repro trace` gets spans out of any scenario without plumbing
        # a flag through every construction path. Recording is passive,
        # so canonical bytes are unchanged either way.
        collector = obs.trace_collector()
        if collector is not None:
            self.tracer = collector.tracer(env)
        else:
            self.tracer = Tracer(env, enabled=spec.trace)

        self.master = Node(env, 0, spec.master_spec, calib)
        self.network.attach(self.master)

        self.workers: list[Node] = []
        n_accel = round(spec.worker_nodes * spec.accelerated_fraction)
        n_gpu = round(spec.worker_nodes * spec.gpu_fraction)
        for i in range(spec.worker_nodes):
            node = Node(env, i + 1, spec.worker_spec, calib)
            if spec.worker_spec.has_accelerator and i < n_accel:
                for s in range(spec.worker_spec.cell_sockets):
                    node.cells.append(CellProcessor(env, s, calib))
            if i < n_gpu:
                from repro.gpu.device import GPUDevice

                for g in range(calib.mappers_per_node):
                    node.gpus.append(GPUDevice(env, g))
            self.network.attach(node)
            self.workers.append(node)

    def add_worker(self, accelerated: bool = True) -> Node:
        """Attach a new worker blade at the current simulation time.

        Supports the paper's §V "dynamically variable number of nodes"
        scenario: the blade gets the standard worker spec, optional Cell
        sockets, and a NIC; higher layers (DataNode, TaskTracker) are
        wired by the caller.
        """
        node_id = len(self.workers) + 1
        node = Node(self.env, node_id, self.spec.worker_spec, self.calib)
        if accelerated and self.spec.worker_spec.has_accelerator:
            for s in range(self.spec.worker_spec.cell_sockets):
                node.cells.append(CellProcessor(self.env, s, self.calib))
        self.network.attach(node)
        self.workers.append(node)
        return node

    @property
    def nodes(self) -> list[Node]:
        """Master followed by all workers."""
        return [self.master, *self.workers]

    def node_by_id(self, node_id: int) -> Node:
        if node_id == 0:
            return self.master
        return self.workers[node_id - 1]

    @property
    def accelerated_workers(self) -> list[Node]:
        return [w for w in self.workers if w.has_accelerator]

    def total_mapper_slots(self) -> int:
        """Cluster-wide map slots (2 per worker blade, §IV-A)."""
        return len(self.workers) * self.calib.mappers_per_node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster workers={len(self.workers)} "
            f"accelerated={len(self.accelerated_workers)}>"
        )


def build_cluster(
    worker_nodes: int,
    calib: CalibrationProfile = PAPER_CALIBRATION,
    env: Optional[Environment] = None,
    **spec_kwargs,
) -> Cluster:
    """Convenience constructor: a paper-shaped cluster of ``worker_nodes``."""
    env = env or Environment()
    spec = ClusterSpec(worker_nodes=worker_nodes, **spec_kwargs)
    return Cluster(env, spec, calib)
