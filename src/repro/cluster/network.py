"""Cluster network: per-node NICs and a shared switch backplane.

A remote transfer crosses three stages — source NIC, switch backplane,
destination NIC — each a bandwidth-limited channel. Same-node transfers
cross the node's loopback interface instead (see
:class:`repro.cluster.node.Node`), matching the paper's observation that
DataNode→TaskTracker traffic uses loopback even when data is local.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.perf.calibration import CalibrationProfile, PAPER_CALIBRATION
from repro.sim.engine import Environment
from repro.sim.pipes import Pipe, SharedPipe

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["Network", "NetworkInterface"]


class NetworkInterface:
    """A full-duplex GigE NIC: independent TX and RX channels."""

    def __init__(self, env: Environment, bandwidth_bps: float, latency_s: float, name: str):
        self.env = env
        self.name = name
        self.tx = Pipe(env, bandwidth_bps, latency_s=latency_s, name=f"{name}/tx")
        self.rx = Pipe(env, bandwidth_bps, latency_s=latency_s, name=f"{name}/rx")

    @property
    def bytes_sent(self) -> float:
        return self.tx.bytes_transferred

    @property
    def bytes_received(self) -> float:
        return self.rx.bytes_transferred


class Network:
    """The cluster interconnect.

    Owns one :class:`NetworkInterface` per node plus the shared switch
    backplane. :meth:`transfer` composes the right sequence of channels
    for a (src, dst) pair.
    """

    def __init__(self, env: Environment, calib: CalibrationProfile = PAPER_CALIBRATION):
        self.env = env
        self.calib = calib
        self._nics: dict[int, NetworkInterface] = {}
        self.backplane = SharedPipe(
            env,
            bandwidth_bps=calib.switch_backplane_bw,
            latency_s=calib.gige_latency_s,
            quantum_bytes=8 * 1024 * 1024,
            name="switch",
        )
        self.remote_bytes = 0.0
        self.local_bytes = 0.0

    def attach(self, node: "Node") -> NetworkInterface:
        """Create and register the NIC for ``node``."""
        if node.node_id in self._nics:
            raise ValueError(f"node {node.node_id} already attached")
        nic = NetworkInterface(
            self.env,
            bandwidth_bps=self.calib.gige_bw,
            latency_s=self.calib.gige_latency_s,
            name=f"{node.hostname}/eth0",
        )
        self._nics[node.node_id] = nic
        return nic

    def nic(self, node_id: int) -> NetworkInterface:
        return self._nics[node_id]

    def transfer(self, src: "Node", dst: "Node", nbytes: float) -> Generator:
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Same-node transfers use the node's loopback pipe; remote ones
        serialize through src TX → backplane → dst RX. Pipelining across
        the three stages is approximated by charging the full size to
        each stage but only the slowest stage's queueing matters in
        practice (the NICs are the narrow links).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src.node_id == dst.node_id:
            yield from src.loopback.transfer(nbytes)
            self.local_bytes += nbytes
            return nbytes
        src_nic = self._nics[src.node_id]
        dst_nic = self._nics[dst.node_id]
        # Hold TX for the duration; backplane and RX are traversed in
        # store-and-forward fashion at block granularity.
        yield from src_nic.tx.transfer(nbytes)
        yield from self.backplane.transfer(nbytes)
        yield from dst_nic.rx.transfer(nbytes)
        self.remote_bytes += nbytes
        return nbytes

    def transfer_time_estimate(self, remote: bool, nbytes: float) -> float:
        """Uncontended estimate (used by schedulers for locality decisions)."""
        if not remote:
            return nbytes / self.calib.loopback_bw
        return 3 * self.calib.gige_latency_s + 3 * nbytes / self.calib.gige_bw
