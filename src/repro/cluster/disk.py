"""Local disk model.

A disk is a serialized channel with per-request seek latency and a
streaming bandwidth. HDFS DataNodes read blocks through it; map tasks
spill their output through it. Sequential multi-request streams pay one
seek per request, which is accurate for the 64 MB block granularity the
experiments use.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import Environment
from repro.sim.pipes import Pipe

__all__ = ["Disk"]


class Disk:
    """A single spindle with FIFO request service."""

    def __init__(self, env: Environment, bandwidth_bps: float, seek_s: float = 0.0, name: str = "disk"):
        self.env = env
        self.name = name
        self._pipe = Pipe(
            env,
            bandwidth_bps=bandwidth_bps,
            latency_s=seek_s,
            name=name,
        )
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    @property
    def bandwidth_bps(self) -> float:
        return self._pipe.bandwidth_bps

    def read(self, nbytes: float) -> Generator:
        """Process: read ``nbytes`` sequentially."""
        yield from self._pipe.transfer(nbytes)
        self.bytes_read += nbytes
        return nbytes

    def write(self, nbytes: float) -> Generator:
        """Process: write ``nbytes`` sequentially."""
        yield from self._pipe.transfer(nbytes)
        self.bytes_written += nbytes
        return nbytes

    def service_time(self, nbytes: float) -> float:
        """Uncontended time for one request of ``nbytes``."""
        return self._pipe.transfer_time(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Disk {self.name!r} {self.bandwidth_bps / 1e6:.0f} MB/s>"
