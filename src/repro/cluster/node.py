"""Node and blade specifications.

The testbed of the paper (§IV): "a 66 IBM QS22 blades cluster, each one
equipped with 2x 3.2Ghz Cell processors and 8GB of RAM ... We also used
one IBM's JS22 blade equipped with 4x4.0Ghz Power 6 processor and 8GB of
memory to run the Hadoop JobTracker and Namenodes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.perf.calibration import GB, CalibrationProfile, PAPER_CALIBRATION
from repro.sim.engine import Environment
from repro.sim.pipes import Pipe
from repro.sim.resources import Resource

from repro.cluster.disk import Disk

if TYPE_CHECKING:  # pragma: no cover
    from repro.cell.processor import CellProcessor

__all__ = ["CPUSpec", "NodeSpec", "Node", "QS22_SPEC", "JS22_SPEC"]


@dataclass(frozen=True)
class CPUSpec:
    """One processor socket."""

    model: str
    clock_hz: float
    cores: int
    is_cell: bool = False
    """True for Cell BE sockets (PPE + 8 SPEs behind one socket)."""


@dataclass(frozen=True)
class NodeSpec:
    """A blade model: sockets, memory, storage, network."""

    name: str
    cpus: tuple[CPUSpec, ...]
    memory_bytes: int
    has_accelerator: bool = False

    @property
    def total_cores(self) -> int:
        return sum(c.cores for c in self.cpus)

    @property
    def cell_sockets(self) -> int:
        return sum(1 for c in self.cpus if c.is_cell)


QS22_SPEC = NodeSpec(
    name="IBM-QS22",
    cpus=(
        CPUSpec(model="CellBE", clock_hz=3.2e9, cores=1, is_cell=True),
        CPUSpec(model="CellBE", clock_hz=3.2e9, cores=1, is_cell=True),
    ),
    memory_bytes=8 * GB,
    has_accelerator=True,
)
"""Worker blade: 2x 3.2 GHz Cell BE, 8 GB RAM."""

JS22_SPEC = NodeSpec(
    name="IBM-JS22",
    cpus=(CPUSpec(model="Power6", clock_hz=4.0e9, cores=4, is_cell=False),),
    memory_bytes=8 * GB,
    has_accelerator=False,
)
"""Master blade: 4x 4.0 GHz Power6 cores, 8 GB RAM."""


class Node:
    """A simulated blade: CPU slots, disk, NIC, loopback, accelerators.

    Parameters
    ----------
    env: simulation environment.
    node_id: unique integer id within the cluster.
    spec: the blade model.
    calib: calibration profile for the hardware rates.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        spec: NodeSpec,
        calib: CalibrationProfile = PAPER_CALIBRATION,
    ):
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.calib = calib
        self.hostname = f"{spec.name.lower()}-{node_id:03d}"

        # General-purpose core slots (PPEs on a QS22, Power6 cores on JS22).
        ppe_count = spec.cell_sockets if spec.cell_sockets else spec.total_cores
        self.cpu = Resource(env, capacity=ppe_count)

        self.disk = Disk(
            env,
            bandwidth_bps=calib.disk_bw,
            seek_s=calib.disk_seek_s,
            name=f"{self.hostname}/disk",
        )

        # Loopback interface: DataNode <-> TaskTracker traffic on the same
        # blade crosses this (the paper's measured bottleneck path).
        self.loopback = Pipe(
            env,
            bandwidth_bps=calib.loopback_bw,
            latency_s=20e-6,
            name=f"{self.hostname}/lo",
        )

        # Attached accelerators (populated by the topology builder for
        # accelerator-enabled nodes): Cell sockets and/or extension GPUs.
        self.cells: list["CellProcessor"] = []
        self.gpus: list = []

        # Kernel-busy accounting for the energy model.
        self.kernel_busy_s = 0.0

        # Straggler modeling: >1.0 slows this blade's kernels (thermal
        # throttling, background load, failing DIMM — the conditions
        # speculative execution exists for).
        self.speed_factor = 1.0

    @property
    def has_accelerator(self) -> bool:
        return self.spec.has_accelerator and bool(self.cells)

    def record_kernel_busy(self, seconds: float) -> None:
        """Accumulate accelerator/CPU kernel-active time (energy model)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.kernel_busy_s += seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.hostname} cells={len(self.cells)}>"
