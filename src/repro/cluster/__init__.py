"""Simulated cluster hardware.

Models the MareIncognito-style testbed of the paper: IBM QS22 Cell
blades (workers) plus one JS22 Power6 blade (master), a Gigabit-Ethernet
switch, per-node disks, NICs, and the loopback interface that carries
the DataNode→TaskTracker traffic the paper found so costly.
"""

from repro.cluster.node import CPUSpec, Node, NodeSpec, JS22_SPEC, QS22_SPEC
from repro.cluster.disk import Disk
from repro.cluster.network import Network, NetworkInterface
from repro.cluster.topology import Cluster, ClusterSpec, build_cluster

__all__ = [
    "CPUSpec",
    "Cluster",
    "ClusterSpec",
    "Disk",
    "JS22_SPEC",
    "Network",
    "NetworkInterface",
    "Node",
    "NodeSpec",
    "QS22_SPEC",
    "build_cluster",
]
