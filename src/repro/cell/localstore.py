"""SPE local-store allocator.

Each SPE owns a 256 KB local store addressed with 18-bit addresses
(§II-B). SPE code, stack, and all DMA buffers live there; there is no
cache and no fallback to system memory. The allocator enforces the
capacity and the 16-byte alignment the SIMD unit requires, so a runtime
configured with too-large chunks fails exactly the way real SPE code
does — at buffer allocation time.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["LocalStore", "LocalStoreOverflow"]

LS_SIZE = 256 * 1024
LS_ALIGN = 16


class LocalStoreOverflow(MemoryError):
    """Requested allocation does not fit in the SPE local store."""


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class LocalStore:
    """A bump-pointer allocator with named regions and explicit free.

    Freeing coalesces only at the tail (real SPE code allocates buffer
    sets for a kernel's lifetime, so fragmentation is not interesting to
    model; what matters is the hard capacity check).

    Parameters
    ----------
    size_bytes:
        Store capacity (default 256 KB per §II-B).
    reserved_bytes:
        Space pre-claimed for SPE code + stack; the paper's kernels are
        a few tens of KB of code, and real SPE ABIs reserve stack at the
        top of the store.
    """

    def __init__(self, size_bytes: int = LS_SIZE, reserved_bytes: int = 48 * 1024):
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        if not 0 <= reserved_bytes < size_bytes:
            raise ValueError("reserved must be within [0, size)")
        self.size_bytes = size_bytes
        self.reserved_bytes = reserved_bytes
        self._next = _align_up(reserved_bytes, LS_ALIGN)
        self._regions: Dict[str, tuple[int, int]] = {}  # name -> (offset, size)

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated (including code/stack reserve)."""
        return self._next

    @property
    def free_bytes(self) -> int:
        return self.size_bytes - self._next

    def alloc(self, name: str, nbytes: int, align: int = LS_ALIGN) -> int:
        """Allocate ``nbytes`` under ``name``; returns the LS offset.

        Raises
        ------
        LocalStoreOverflow
            If the region does not fit.
        ValueError
            For duplicate names or bad alignment.
        """
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if align < 1 or (align & (align - 1)):
            raise ValueError(f"alignment must be a power of two, got {align}")
        offset = _align_up(self._next, align)
        if offset + nbytes > self.size_bytes:
            raise LocalStoreOverflow(
                f"cannot allocate {nbytes} bytes for {name!r}: "
                f"{self.free_bytes} bytes free of {self.size_bytes}"
            )
        self._regions[name] = (offset, nbytes)
        self._next = offset + nbytes
        return offset

    def free(self, name: str) -> None:
        """Release a region; tail regions return space to the allocator."""
        try:
            offset, nbytes = self._regions.pop(name)
        except KeyError:
            raise KeyError(f"no region named {name!r}") from None
        if offset + nbytes >= self._next - (LS_ALIGN - 1):
            # Tail region: roll the bump pointer back to the highest
            # remaining region end (or the reserve).
            high = _align_up(self.reserved_bytes, LS_ALIGN)
            for off, size in self._regions.values():
                high = max(high, off + size)
            self._next = high

    def region(self, name: str) -> Optional[tuple[int, int]]:
        """(offset, size) of a region, or None."""
        return self._regions.get(name)

    def reset(self) -> None:
        """Free all regions (kernel teardown)."""
        self._regions.clear()
        self._next = _align_up(self.reserved_bytes, LS_ALIGN)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalStore {self.used_bytes}/{self.size_bytes} regions={len(self._regions)}>"
