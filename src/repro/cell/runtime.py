"""SPE offload runtimes — the paper's two native libraries (§III-B).

Both runtimes split a record into small chunks ("each record was split
into 4KB data blocks that were sent to the SPUs", §IV-A), stream them to
the 8 SPEs with double-buffered DMA, and collect the results.

Timing has two paths, checked against each other by a property test:

- **event path** — every chunk is simulated: DMA slot acquisition, bus
  transfer, SPE occupancy. Exact but O(chunks) events.
- **analytic path** — the closed form of the steady-state pipeline, used
  automatically above :attr:`OffloadRuntime.event_chunk_limit` chunks so
  that simulating a 64 MB record (16384 chunks × 8 SPEs) stays cheap in
  the cluster benchmarks.

A third, *functional* API (:meth:`OffloadRuntime.execute_bytes`) runs a
real kernel over real bytes chunk-by-chunk, enforcing local-store
capacity and SIMD alignment — the tests drive real AES through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

import numpy as np

import repro.modelmode as modelmode
from repro.perf.calibration import CalibrationProfile
from repro.cell.localstore import LocalStoreOverflow
from repro.cell.processor import CellProcessor
from repro.cell.simd import check_alignment

__all__ = ["OffloadResult", "OffloadRuntime", "DirectSPERuntime", "CellMapReduceRuntime"]


@dataclass
class OffloadResult:
    """Outcome of one simulated offload call."""

    bytes_processed: float
    elapsed_s: float
    chunks: int
    path: str
    """``"event"`` or ``"analytic"``."""
    spe_busy_s: float = 0.0


class OffloadRuntime:
    """Common chunking/offload machinery for both native libraries.

    Parameters
    ----------
    cell:
        The socket this runtime drives.
    calib:
        Calibration profile (chunk size, DMA limits).
    startup_s:
        One-time cost charged on the first offload (SPE context creation
        and code upload; the Fig. 2 left-edge ramp).
    chunk_bytes:
        Chunk size; defaults to the paper's 4 KB.
    event_chunk_limit:
        Offloads with more chunks than this use the analytic path.
    analytic_samples:
        Collapse Monte-Carlo offloads into one composite event (the
        event-thin model mode). ``None`` samples the
        :mod:`repro.modelmode` default; cluster runs pass their
        JobTracker's construction-time flag down instead, so one
        simulation never mixes protocols.
    """

    name = "offload"

    def __init__(
        self,
        cell: CellProcessor,
        calib: CalibrationProfile,
        startup_s: float = 0.0,
        chunk_bytes: Optional[int] = None,
        event_chunk_limit: int = 1024,
        analytic_samples: Optional[bool] = None,
    ):
        self.cell = cell
        self.env = cell.env
        self.calib = calib
        self.startup_s = float(startup_s)
        self.chunk_bytes = int(calib.cell_chunk_bytes if chunk_bytes is None else chunk_bytes)
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.chunk_bytes % 16 != 0:
            raise ValueError("chunk_bytes must be a multiple of the 16-byte vector size")
        self.event_chunk_limit = event_chunk_limit
        self._started = False
        #: Event-thin model mode: Monte-Carlo offloads collapse into one
        #: composite event via :meth:`analytic_samples_time` instead of
        #: spawning one process per SPE. See repro.modelmode.
        self.analytic_samples = (
            (not modelmode.REFERENCE_MODE)
            if analytic_samples is None
            else bool(analytic_samples)
        )
        # Every numeric input the closed forms read, so memoized results
        # can be shared across runtime instances (one is built per task
        # attempt) without ever mixing calibrations.
        self._memo_key = (
            type(self).__name__,
            self.chunk_bytes,
            cell.spe_count,
            calib.spe_per_chunk_overhead_s,
            cell.dma.request_latency_s,
            cell.dma.max_request_bytes,
            calib.dma_bus_bw,
            calib.ppe_memcpy_bw,
            calib.cell_mr_per_chunk_overhead_s,
        )
        self.validate_buffers()

    # -- local-store validation -------------------------------------------------
    def validate_buffers(self) -> None:
        """Prove the double-buffer set fits each SPE's local store.

        Double buffering needs two input and two output buffers of one
        chunk each. Runs against SPE 0's allocator (all SPEs are
        identical) and rolls back, so configuration errors surface at
        construction time exactly like an SPE link failure would.
        """
        ls = self.cell.spes[0].local_store
        names = ["in0", "in1", "out0", "out1"]
        allocated = []
        try:
            for n in names:
                ls.alloc(f"__probe_{n}", self.chunk_bytes)
                allocated.append(f"__probe_{n}")
        except LocalStoreOverflow as exc:
            raise LocalStoreOverflow(
                f"{self.name}: chunk size {self.chunk_bytes} needs "
                f"{4 * self.chunk_bytes} bytes of buffers; {exc}"
            ) from None
        finally:
            for n in reversed(allocated):
                ls.free(n)

    # -- timing helpers -----------------------------------------------------------
    def _chunk_compute_s(self, spe_bw: float, nbytes: Optional[int] = None) -> float:
        """SPE time per chunk: raw SIMD compute plus the per-chunk
        software overhead (mailbox sync, loop control)."""
        size = self.chunk_bytes if nbytes is None else nbytes
        return size / spe_bw + self.calib.spe_per_chunk_overhead_s

    def _chunk_dma_s(self) -> float:
        """One-direction DMA time per chunk (uncontended)."""
        return self.cell.dma.chunk_time_estimate(self.chunk_bytes)

    def _steady_period_s(self, spe_bw: float) -> float:
        """Per-chunk period of one double-buffered SPE at steady state.

        With double buffering the chunk period is the max of compute and
        each DMA direction (they overlap); for the paper's 4 KB chunks
        and AES rates, compute dominates by ~300x.
        """
        return max(self._chunk_compute_s(spe_bw), self._chunk_dma_s())

    #: Shared closed-form result cache: memo key (every numeric input of
    #: the formula) → duration. Cluster runs build one runtime per task
    #: attempt but evaluate the same few (record size, rate) points tens
    #: of thousands of times; the memo turns those repeats into one dict
    #: probe. Bounded: cleared wholesale when full (keys are few in any
    #: real run; the bound only guards pathological sweeps).
    _ANALYTIC_MEMO: dict = {}
    _ANALYTIC_MEMO_MAX = 8192

    def analytic_time(self, nbytes: float, spe_bw: float) -> float:
        """Closed-form offload time (excludes one-time startup), memoized
        on every numeric input (see :attr:`_ANALYTIC_MEMO`)."""
        memo = OffloadRuntime._ANALYTIC_MEMO
        key = (self._memo_key, nbytes, spe_bw)
        t = memo.get(key)
        if t is None:
            t = self._analytic_time_uncached(nbytes, spe_bw)
            if len(memo) >= self._ANALYTIC_MEMO_MAX:
                memo.clear()
            memo[key] = t
        return t

    def _analytic_time_uncached(self, nbytes: float, spe_bw: float) -> float:
        """Exact critical path of the round-robin chunk distribution: SPE
        *i* receives ``ceil((chunks - i) / nspe)`` chunks, all full-size
        except that the SPE holding the globally last chunk processes
        the (possibly short) tail instead of a full chunk.
        """
        if nbytes <= 0:
            return 0.0
        chunks = max(1, int(np.ceil(nbytes / self.chunk_bytes)))
        nspe = self.cell.spe_count
        period = self._steady_period_s(spe_bw)
        tail_bytes = nbytes - (chunks - 1) * self.chunk_bytes
        tail_aligned = int(np.ceil(tail_bytes / 16) * 16)
        tail_period = max(
            self._chunk_compute_s(spe_bw, tail_aligned),
            self.cell.dma.chunk_time_estimate(max(16, tail_aligned)),
        )
        tail_spe = (chunks - 1) % nspe
        critical = 0.0
        for i in range(min(nspe, chunks)):
            count = (chunks - i + nspe - 1) // nspe
            if i == tail_spe:
                t = (count - 1) * period + tail_period
            else:
                t = count * period
            critical = max(critical, t)
        # Pipeline fill: first chunk must be DMA'd in before compute starts;
        # drain: last result DMA'd out after compute. Both use the actual
        # first/last transfer sizes (a lone sub-chunk pays sub-chunk DMA).
        first_aligned = int(min(self.chunk_bytes, max(16, np.ceil(nbytes / 16) * 16)))
        fill = self.cell.dma.chunk_time_estimate(first_aligned)
        drain = self.cell.dma.chunk_time_estimate(max(16, tail_aligned))
        return fill + drain + critical

    # -- simulated offload ----------------------------------------------------------
    def offload_bytes(self, nbytes: float, spe_bw: float) -> Generator:
        """Process: run a byte-streaming kernel over ``nbytes``.

        Returns an :class:`OffloadResult`. ``spe_bw`` is the per-SPE
        plateau bandwidth of the kernel (socket plateau / 8).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t0 = self.env.now
        startup = self._startup_delay()
        chunks = max(1, int(np.ceil(nbytes / self.chunk_bytes))) if nbytes else 0
        if chunks == 0:
            if startup > 0:
                yield self.env.pooled_timeout(startup)
            return OffloadResult(0.0, self.env.now - t0, 0, "analytic")
        if chunks > self.event_chunk_limit:
            # Startup + closed-form pipeline time: one composite event.
            t = self.analytic_time(nbytes, spe_bw)
            yield self.env.composite_timeout(startup, t)
            busy = nbytes / spe_bw + chunks * self.calib.spe_per_chunk_overhead_s
            self._record_busy(busy)
            return OffloadResult(nbytes, self.env.now - t0, chunks, "analytic", busy)
        if startup > 0:
            yield self.env.pooled_timeout(startup)
        yield from self._event_offload(nbytes, chunks, spe_bw)
        busy = nbytes / spe_bw + chunks * self.calib.spe_per_chunk_overhead_s
        return OffloadResult(nbytes, self.env.now - t0, chunks, "event", busy)

    #: Seed-in / result-out record moved per SPE by a Monte-Carlo offload.
    PI_DMA_BYTES = 128

    def analytic_samples_time(self, samples: float, socket_rate: float) -> float:
        """Closed-form Monte-Carlo offload time (excludes startup).

        The critical path of the event-accurate worker wave: all SPEs
        issue their 128-byte seed ``get`` together, so the inbound bus
        (FIFO, one channel) serializes ``nspe`` transfers; every SPE
        then computes the same ``samples / socket_rate`` seconds, so the
        result ``put``s arrive staggered by exactly one bus slice and
        never queue. The last SPE therefore finishes after two DMA issue
        latencies, ``nspe + 1`` bus slices, and one compute span.
        """
        return self._samples_time_base() + samples / socket_rate

    def _samples_time_base(self) -> float:
        """The samples-independent part of :meth:`analytic_samples_time`
        (DMA issue latencies plus the serialized seed bus slices)."""
        nspe = self.cell.spe_count
        bus_slice = self.PI_DMA_BYTES / self.calib.dma_bus_bw
        return 2 * self.cell.dma.request_latency_s + (nspe + 1) * bus_slice

    def analytic_samples_time_batch(self, samples, socket_rate: float) -> np.ndarray:
        """Vectorized :meth:`analytic_samples_time` for a wave of tasks.

        One array op computes every composite-event duration; each
        element is bit-identical to the scalar path (the base term is
        evaluated once with the same association, then ``+ s / rate``
        applies the same IEEE-754 ops per element).
        """
        s = np.asarray(samples, dtype=np.float64)
        return self._samples_time_base() + s / socket_rate

    def offload_samples(
        self, samples: float, socket_rate: float, lead_s: float = 0.0
    ) -> Generator:
        """Process: run a compute-only kernel (Monte-Carlo Pi).

        No input data crosses the DMA engine beyond the tiny seed/result
        records, so the time is pure SPE occupancy: samples are split
        evenly over the 8 SPEs running at ``socket_rate / 8`` each. In
        event-thin model mode the whole wave — a leading ``lead_s``
        delay, startup, seed DMA, compute, result DMA — is one composite
        event (:meth:`analytic_samples_time`); nothing outside the task
        can observe the per-SPE interleaving, because each mapper slot
        drives its own Cell socket with its own DMA engine.
        """
        if samples < 0:
            raise ValueError("samples must be non-negative")
        t0 = self.env.now
        startup = self._startup_delay()
        if self.analytic_samples:
            if samples == 0:
                if lead_s > 0 or startup > 0:
                    yield self.env.composite_timeout(lead_s, startup)
                return OffloadResult(0.0, self.env.now - t0, 0, "analytic")
            yield self.env.composite_timeout(
                lead_s, startup, self.analytic_samples_time(samples, socket_rate)
            )
            busy = samples / socket_rate * self.cell.spe_count
            self._record_busy(busy)
            return OffloadResult(
                samples, self.env.now - t0, self.cell.spe_count, "analytic", busy
            )
        if lead_s > 0:
            yield self.env.pooled_timeout(lead_s)
        if startup > 0:
            yield self.env.pooled_timeout(startup)
        if samples == 0:
            return OffloadResult(0.0, self.env.now - t0, 0, "analytic")
        nspe = self.cell.spe_count
        per_spe = samples / nspe
        spe_rate = socket_rate / nspe
        compute_s = per_spe / spe_rate
        # Seed in / result out: one minimal DMA round trip per SPE.
        # Workers start deferred and are batch-scheduled in one heap pass.
        procs = [
            self.env.process(
                self._pi_spe_worker(spe, compute_s), name=f"pi-spe{spe.spe_id}", start=False
            )
            for spe in self.cell.spes
        ]
        self.env.start_processes(procs)
        yield self.env.all_of(procs)
        return OffloadResult(samples, self.env.now - t0, nspe, "event", compute_s * nspe)

    def _pi_spe_worker(self, spe, compute_s: float) -> Generator:
        yield from self.cell.dma.get(self.PI_DMA_BYTES)
        yield from spe.compute(compute_s)
        yield from self.cell.dma.put(self.PI_DMA_BYTES)

    # -- internals ---------------------------------------------------------------
    def _startup_delay(self) -> float:
        """One-time startup cost, consumed on the first offload.

        Returned as a plain delay so callers can fold it into a
        composite event instead of paying a separate startup event.
        """
        if self._started:
            return 0.0
        self._started = True
        return self.startup_s

    def _record_busy(self, seconds: float) -> None:
        """Spread analytic busy time evenly over the SPEs."""
        share = seconds / self.cell.spe_count
        for spe in self.cell.spes:
            spe.busy_s += share

    def _event_offload(self, nbytes: float, chunks: int, spe_bw: float) -> Generator:
        """Event-accurate double-buffered offload across all SPEs."""
        counter = {"next": 0, "total": chunks, "last_bytes": nbytes - (chunks - 1) * self.chunk_bytes}
        workers = [
            self.env.process(
                self._spe_worker(spe, counter, spe_bw),
                name=f"{self.name}-spe{spe.spe_id}",
                start=False,
            )
            for spe in self.cell.spes
        ]
        self.env.start_processes(workers)
        yield self.env.all_of(workers)

    def _spe_worker(self, spe, counter: dict, spe_bw: float) -> Generator:
        """One SPE's loop over the shared chunk counter.

        Chunks are fetched, computed, and written back per-iteration. For
        the paper's 4 KB chunks DMA is ~0.5 % of compute, so forgoing
        explicit get/compute overlap here costs less than the tolerance
        of the analytic-vs-event consistency test; the analytic path
        models the overlapped (max) form.
        """
        dma = self.cell.dma
        while True:
            idx = counter["next"]
            if idx >= counter["total"]:
                break
            counter["next"] = idx + 1
            size = counter["last_bytes"] if idx == counter["total"] - 1 else self.chunk_bytes
            size = int(np.ceil(size / 16) * 16)
            yield from dma.transfer_chunk(size, inbound=True)
            yield from spe.compute(self._chunk_compute_s(spe_bw, size))
            yield from dma.transfer_chunk(size, inbound=False)

    # -- functional execution -------------------------------------------------------
    def execute_bytes(self, data: bytes | np.ndarray, kernel: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Run a real kernel over real bytes, chunk-by-chunk.

        Enforces the SIMD alignment contract and the local-store buffer
        budget; the output is the concatenation of per-chunk results.
        This path carries no simulated time — it is the "does the math
        actually work" half of the reproduction.
        """
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        check_alignment(arr.size)
        out_parts: list[np.ndarray] = []
        for off in range(0, arr.size, self.chunk_bytes):
            chunk = arr[off : off + self.chunk_bytes]
            check_alignment(chunk.size)
            result = kernel(chunk)
            out_parts.append(np.asarray(result, dtype=np.uint8))
        if not out_parts:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(out_parts)


class DirectSPERuntime(OffloadRuntime):
    """The paper's first native library: direct pthread-style offload.

    No PPE-side staging: records stream straight from system memory to
    the SPEs. This is the fastest Fig. 2 configuration (~700 MB/s AES).
    """

    name = "direct-spe"


class CellMapReduceRuntime(OffloadRuntime):
    """Proxy to the MapReduce-for-Cell framework (de Kruijf et al.).

    "...incurs in a considerable overhead because the way the PPEs are
    used to initialize the input data (basically the original input data
    must be copied again to internal buffers managed by the framework)"
    (§IV-A). We model that as a full PPE-side input copy that precedes
    SPE processing, plus a small per-chunk scheduling overhead on the
    PPE — together they produce the Fig. 2 gap below the direct runtime.
    """

    name = "cell-mapreduce"

    def _analytic_time_uncached(self, nbytes: float, spe_bw: float) -> float:
        base = super()._analytic_time_uncached(nbytes, spe_bw)
        chunks = max(1, int(np.ceil(nbytes / self.chunk_bytes)))
        copy_s = nbytes / self.calib.ppe_memcpy_bw
        sched_s = chunks * self.calib.cell_mr_per_chunk_overhead_s
        return copy_s + sched_s + base

    def offload_bytes(self, nbytes: float, spe_bw: float) -> Generator:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t0 = self.env.now
        startup = self._startup_delay()
        chunks = max(1, int(np.ceil(nbytes / self.chunk_bytes))) if nbytes else 0
        if chunks == 0:
            if startup > 0:
                yield self.env.pooled_timeout(startup)
            return OffloadResult(0.0, self.env.now - t0, 0, "analytic")
        if chunks > self.event_chunk_limit:
            t = self.analytic_time(nbytes, spe_bw)
            yield self.env.composite_timeout(startup, t)
            busy = nbytes / spe_bw + chunks * self.calib.spe_per_chunk_overhead_s
            self._record_busy(busy)
            return OffloadResult(nbytes, self.env.now - t0, chunks, "analytic", busy)
        if startup > 0:
            yield self.env.pooled_timeout(startup)
        # Event path: the framework's input-initialization copy runs on
        # the PPE before the map phase touches the SPEs.
        yield from self.cell.ppe.copy(nbytes)
        sched = chunks * self.calib.cell_mr_per_chunk_overhead_s
        if sched > 0:
            yield from self.cell.ppe.compute(sched)
        yield from self._event_offload(nbytes, chunks, spe_bw)
        busy = nbytes / spe_bw + chunks * self.calib.spe_per_chunk_overhead_s
        return OffloadResult(nbytes, self.env.now - t0, chunks, "event", busy)
