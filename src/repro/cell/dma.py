"""The SPE DMA engine.

SPEs "access system memory via a DMA engine connected to a high bandwidth
bus, relying on software to explicitly initiate DMA requests ... up to 16
concurrent requests of up to 16K, and bandwidth between the DMA engine
and the bus is 8 bytes per cycle in each direction" (§II-B). The bus
interface "allows issuing asynchronous DMA transfer requests, and
provides synchronization calls to check or wait".

This module models exactly that: an engine per Cell socket with 16
request slots shared by its 8 SPEs, a shared element-interconnect-bus
channel at 8 B/cycle per direction, a hard 16 KB per-request cap, and an
async issue/wait API shaped like ``mfc_get``/``mfc_put`` + tag waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.sim.engine import Environment
from repro.sim.events import Event, Process
from repro.sim.pipes import Pipe
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.calibration import CalibrationProfile

__all__ = ["DMAEngine", "DMARequestError", "DMAStats"]


class DMARequestError(ValueError):
    """Illegal DMA request (size/alignment violation)."""


@dataclass
class DMAStats:
    """Aggregate transfer statistics for one engine."""

    requests: int = 0
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    wait_time_s: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.bytes_in + self.bytes_out


class DMAEngine:
    """DMA engine for one Cell socket.

    Parameters
    ----------
    env: simulation environment.
    calib: calibration profile carrying the §II-B limits.
    """

    def __init__(self, env: Environment, calib: "CalibrationProfile"):
        self.env = env
        self.calib = calib
        self.max_request_bytes = calib.dma_max_request_bytes
        self.request_latency_s = calib.dma_request_latency_s
        self._slots = Resource(env, capacity=calib.dma_max_inflight)
        # One bus channel per direction, each 8 B/cycle (§II-B).
        bus_bw = calib.dma_bus_bw
        self._bus_in = Pipe(env, bus_bw, name="eib/in")
        self._bus_out = Pipe(env, bus_bw, name="eib/out")
        self.stats = DMAStats()

    # -- validation ----------------------------------------------------------
    def validate(self, nbytes: int, ls_offset: int = 0) -> None:
        """Enforce the §II-B request constraints.

        Real MFC requests must be 1/2/4/8/16 bytes or a multiple of 16,
        at most 16 KB, with matching 16-byte alignment for vector data.
        """
        if nbytes <= 0:
            raise DMARequestError(f"DMA size must be positive, got {nbytes}")
        if nbytes > self.max_request_bytes:
            raise DMARequestError(
                f"DMA request of {nbytes} bytes exceeds the {self.max_request_bytes} byte cap"
            )
        if nbytes >= 16 and nbytes % 16 != 0:
            raise DMARequestError(f"DMA size {nbytes} >= 16 must be a multiple of 16")
        if nbytes < 16 and nbytes not in (1, 2, 4, 8):
            raise DMARequestError(f"small DMA size must be 1/2/4/8 bytes, got {nbytes}")
        if ls_offset % 16 != 0:
            raise DMARequestError(f"local-store offset {ls_offset} not 16-byte aligned")

    # -- async API -------------------------------------------------------------
    def issue_get(self, nbytes: int, ls_offset: int = 0) -> Process:
        """Async transfer memory→local store; returns a joinable process."""
        self.validate(nbytes, ls_offset)
        return self.env.process(self._do_transfer(nbytes, inbound=True), name="dma-get")

    def issue_put(self, nbytes: int, ls_offset: int = 0) -> Process:
        """Async transfer local store→memory; returns a joinable process."""
        self.validate(nbytes, ls_offset)
        return self.env.process(self._do_transfer(nbytes, inbound=False), name="dma-put")

    def get(self, nbytes: int, ls_offset: int = 0) -> Generator:
        """Blocking get: validate + transfer inline.

        Equivalent timing to ``yield issue_get(...)`` without spawning a
        process per request (the dominant DMA pattern is synchronous
        ``mfc_get`` + immediate tag wait).
        """
        self.validate(nbytes, ls_offset)
        return (yield from self._do_transfer(nbytes, inbound=True))

    def put(self, nbytes: int, ls_offset: int = 0) -> Generator:
        """Blocking put: validate + transfer inline."""
        self.validate(nbytes, ls_offset)
        return (yield from self._do_transfer(nbytes, inbound=False))

    def transfer_chunk(self, nbytes: int, inbound: bool) -> Generator:
        """Move an arbitrary-size chunk as a sequence of ≤16 KB requests.

        This is the software-visible "DMA list" pattern SPE code uses for
        bulk data: the chunk is split into max-size requests issued
        back-to-back (each still consumes an engine slot).
        """
        remaining = int(nbytes)
        while remaining > 0:
            req = min(remaining, self.max_request_bytes)
            if req >= 16:
                req -= req % 16 or 0
                if req == 0:
                    req = remaining
            if inbound:
                yield from self.get(req)
            else:
                yield from self.put(req)
            remaining -= req

    # -- internals -------------------------------------------------------------
    def _do_transfer(self, nbytes: int, inbound: bool) -> Generator:
        t0 = self.env.now
        bus = self._bus_in if inbound else self._bus_out
        slots = self._slots
        # Free request slot (the common case: 16 slots, 8 SPEs): charge
        # issue latency + bus time without a grant event.
        claim = slots.try_claim()
        req = None
        try:
            if claim is None:
                req = slots.request()
                yield req
            yield self.env.pooled_timeout(self.request_latency_s)
            yield from bus.transfer(nbytes)
        finally:
            if claim is not None:
                slots.release_claim(claim)
            elif req is not None:
                slots.release(req)
        self.stats.requests += 1
        if inbound:
            self.stats.bytes_in += nbytes
        else:
            self.stats.bytes_out += nbytes
        self.stats.wait_time_s += self.env.now - t0
        return nbytes

    def chunk_time_estimate(self, nbytes: int) -> float:
        """Uncontended time to move ``nbytes`` through one direction."""
        full, rem = divmod(int(nbytes), self.max_request_bytes)
        nreq = full + (1 if rem else 0)
        return nreq * self.request_latency_s + nbytes / self._bus_in.bandwidth_bps

    @property
    def inflight(self) -> int:
        """Number of requests currently holding engine slots."""
        return self._slots.count
