"""Cell Broadband Engine model.

Models the paper's accelerator (§II-B): one PPE plus eight SPEs per
socket, each SPE with a 256 KB local store fed by a DMA engine that
supports at most 16 concurrent requests of at most 16 KB, over a bus
moving 8 bytes/cycle in each direction, with 16-byte SIMD alignment
rules.

Two offload runtimes mirror the paper's two native libraries (§III-B):

- :class:`~repro.cell.runtime.DirectSPERuntime` — "a simple runtime that
  allows us to divide and execute task on the SPUs" (the pthread-style
  direct implementation; fastest curve in Fig. 2).
- :class:`~repro.cell.runtime.CellMapReduceRuntime` — "a proxy to an
  existing MapReduce framework for the Cell processor" (de Kruijf &
  Sankaralingam), whose PPE-side input copy costs it the gap seen in
  Fig. 2.
"""

from repro.cell.localstore import LocalStore, LocalStoreOverflow
from repro.cell.dma import DMAEngine, DMARequestError, DMAStats
from repro.cell.simd import (
    SIMDAlignmentError,
    check_alignment,
    pad_to_vector,
    vector_op_count,
)
from repro.cell.processor import PPE, SPE, CellProcessor
from repro.cell.runtime import (
    CellMapReduceRuntime,
    DirectSPERuntime,
    OffloadResult,
    OffloadRuntime,
)

__all__ = [
    "CellMapReduceRuntime",
    "CellProcessor",
    "DMAEngine",
    "DMARequestError",
    "DMAStats",
    "DirectSPERuntime",
    "LocalStore",
    "LocalStoreOverflow",
    "OffloadResult",
    "OffloadRuntime",
    "PPE",
    "SIMDAlignmentError",
    "SPE",
    "check_alignment",
    "pad_to_vector",
    "vector_op_count",
]
