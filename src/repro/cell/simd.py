"""SIMD rules and cost helpers for SPE kernels.

The Cell "supports vector operations that operate on memory contiguous
data sets of 16 bytes ... the Cell architecture requires every vector
operation to operate with aligned data to 16-byte memory boundaries"
(§II-B). Functional kernels running "on" a simulated SPE go through
these checks so that a kernel violating the alignment contract fails in
the reproduction exactly where it would fail on hardware.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SIMDAlignmentError",
    "VECTOR_BYTES",
    "check_alignment",
    "pad_to_vector",
    "vector_op_count",
]

VECTOR_BYTES = 16


class SIMDAlignmentError(ValueError):
    """Data handed to a SIMD kernel violates the 16-byte rules."""


def check_alignment(nbytes: int, offset: int = 0) -> None:
    """Validate a (length, offset) pair for vector processing.

    Both the starting offset and the length must be multiples of the
    16-byte vector size; SPE kernels process whole quadwords.
    """
    if offset % VECTOR_BYTES != 0:
        raise SIMDAlignmentError(f"offset {offset} is not {VECTOR_BYTES}-byte aligned")
    if nbytes % VECTOR_BYTES != 0:
        raise SIMDAlignmentError(
            f"length {nbytes} is not a multiple of the {VECTOR_BYTES}-byte vector size"
        )


def pad_to_vector(data: bytes | np.ndarray, pad_value: int = 0) -> np.ndarray:
    """Zero-pad a byte buffer up to the next vector boundary.

    Returns a ``uint8`` array whose length is a multiple of 16. Kernels
    that need exact-length output must track the original length
    themselves (AES-CTR does; AES-ECB requires multiple-of-16 input by
    construction).
    """
    arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
    rem = arr.size % VECTOR_BYTES
    if rem == 0:
        return arr.copy()
    out = np.full(arr.size + (VECTOR_BYTES - rem), pad_value, dtype=np.uint8)
    out[: arr.size] = arr
    return out


def vector_op_count(nbytes: int) -> int:
    """Number of quadword operations to touch ``nbytes`` once."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return -(-nbytes // VECTOR_BYTES)
