"""PPE, SPE, and the Cell socket that binds them.

The compute elements are deliberately thin: an SPE is a serialized
execution slot plus a local store; a PPE is a serialized slot with a
memcpy channel. All offload *policy* (chunking, double buffering,
MapReduce-on-Cell semantics) lives in :mod:`repro.cell.runtime`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.engine import Environment
from repro.sim.pipes import Pipe
from repro.sim.resources import Resource

from repro.cell.dma import DMAEngine
from repro.cell.localstore import LocalStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.calibration import CalibrationProfile

__all__ = ["SPE", "PPE", "CellProcessor"]


class SPE:
    """One Synergistic Processing Element.

    Owns its 256 KB local store; shares the socket's DMA engine. Compute
    is expressed as timed occupancy of the execution slot.
    """

    def __init__(self, env: Environment, spe_id: int, dma: DMAEngine, calib: "CalibrationProfile"):
        self.env = env
        self.spe_id = spe_id
        self.dma = dma
        self.calib = calib
        self.local_store = LocalStore(size_bytes=calib.local_store_bytes)
        self._slot = Resource(env, capacity=1)
        self.busy_s = 0.0

    def compute(self, seconds: float) -> Generator:
        """Process: occupy the SPE for ``seconds`` of kernel time."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        slot = self._slot
        claim = slot.try_claim()  # idle slot: skip the grant event
        req = None
        try:
            if claim is None:
                req = slot.request()
                yield req
            yield self.env.pooled_timeout(seconds)
        finally:
            if claim is not None:
                slot.release_claim(claim)
            elif req is not None:
                slot.release(req)
        self.busy_s += seconds

    @property
    def busy(self) -> bool:
        return self._slot.count > 0


class PPE:
    """The Power Processing Element: a general-purpose core.

    Runs the "Java" kernels and the framework-side copies of the
    MapReduce-for-Cell runtime.
    """

    def __init__(self, env: Environment, calib: "CalibrationProfile"):
        self.env = env
        self.calib = calib
        self._slot = Resource(env, capacity=1)
        # Software memcpy through the PPE cache hierarchy.
        self.memcpy = Pipe(env, calib.ppe_memcpy_bw, name="ppe/memcpy")
        self.busy_s = 0.0

    def compute(self, seconds: float) -> Generator:
        """Process: occupy the PPE for ``seconds``."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        slot = self._slot
        claim = slot.try_claim()
        req = None
        try:
            if claim is None:
                req = slot.request()
                yield req
            yield self.env.pooled_timeout(seconds)
        finally:
            if claim is not None:
                slot.release_claim(claim)
            elif req is not None:
                slot.release(req)
        self.busy_s += seconds

    def copy(self, nbytes: float) -> Generator:
        """Process: PPE-side buffer copy of ``nbytes``."""
        slot = self._slot
        claim = slot.try_claim()
        req = None
        try:
            if claim is None:
                req = slot.request()
                yield req
            yield from self.memcpy.transfer(nbytes)
        finally:
            if claim is not None:
                slot.release_claim(claim)
            elif req is not None:
                slot.release(req)
        self.busy_s += nbytes / self.calib.ppe_memcpy_bw


class CellProcessor:
    """One Cell BE socket: 1 PPE + 8 SPEs + shared DMA engine."""

    def __init__(self, env: Environment, socket_id: int, calib: "CalibrationProfile"):
        self.env = env
        self.socket_id = socket_id
        self.calib = calib
        self.dma = DMAEngine(env, calib)
        self.ppe = PPE(env, calib)
        self.spes = [SPE(env, i, self.dma, calib) for i in range(calib.spes_per_cell)]

    @property
    def spe_count(self) -> int:
        return len(self.spes)

    def total_spe_busy_s(self) -> float:
        """Aggregate SPE kernel-active seconds (energy accounting)."""
        return sum(s.busy_s for s in self.spes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CellProcessor #{self.socket_id} spes={self.spe_count}>"
