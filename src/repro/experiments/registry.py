"""The scenario registry.

Every runnable experiment is registered here by name — the paper figures
plus the extension studies — so the CLI, the sweep driver, the perf
harness, and the golden-series tests all resolve the same declarative
definition. Worker processes re-resolve scenarios by name, so only a
``(name, point_index, cfg)`` triple ever crosses a process boundary.
"""

from __future__ import annotations

from repro.experiments.scenario import Scenario

__all__ = ["all_scenarios", "epoch", "get_scenario", "register", "scenario_names"]

_REGISTRY: dict[str, Scenario] = {}

_EPOCH = 0
"""Bumped on every (re-)registration. Persistent worker pools snapshot
the registry at fork time and compare epochs to know when a respawn is
needed for late-registered scenarios (see ``experiments/pool.py``)."""


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` under its name; duplicate names are an error
    unless ``replace=True`` (used by tests to shadow a builtin)."""
    global _EPOCH
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    _EPOCH += 1
    return scenario


def epoch() -> int:
    """Monotonic registration counter (includes builtin registration)."""
    _ensure_builtins()
    return _EPOCH


def get_scenario(name: str) -> Scenario:
    """Look up a scenario, with the known names in the error message."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def all_scenarios() -> list[Scenario]:
    _ensure_builtins()
    return [_REGISTRY[n] for n in scenario_names()]


def _ensure_builtins() -> None:
    # Deferred so `import repro.experiments.registry` from a scenario
    # module (to self-register) is not circular.
    from repro.experiments import scenarios  # noqa: F401
