"""Declarative experiments: scenario registry + parallel sweep driver.

Public surface:

- :class:`~repro.experiments.scenario.Scenario` — one named experiment
  as data (grid, defaults, seed, curves, point function).
- :func:`~repro.experiments.registry.get_scenario`,
  :func:`~repro.experiments.registry.register`,
  :func:`~repro.experiments.registry.scenario_names` — the registry all
  figures and extension studies live in.
- :func:`~repro.experiments.driver.run_sweep` — fan a grid across
  workers and aggregate deterministically (byte-identical to serial).
- :func:`~repro.experiments.persistence.save_sweep` — JSON/CSV under
  ``results/``.

See ``docs/EXPERIMENTS.md`` for the determinism contract and how to add
a scenario.
"""

from repro.experiments.cache import cached_sweep, request_key
from repro.experiments.compare import DriftReport, compare_result_to_dir
from repro.experiments.driver import SweepResult, run_sweep
from repro.experiments.persistence import DEFAULT_RESULTS_DIR, save_sweep, sweep_csv
from repro.experiments.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.experiments.scenario import GridError, Scenario, parse_grid_overrides

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "DriftReport",
    "GridError",
    "Scenario",
    "SweepResult",
    "all_scenarios",
    "cached_sweep",
    "compare_result_to_dir",
    "get_scenario",
    "parse_grid_overrides",
    "register",
    "request_key",
    "run_sweep",
    "save_sweep",
    "scenario_names",
    "sweep_csv",
]
