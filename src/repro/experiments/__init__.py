"""Declarative experiments: scenario registry + parallel sweep driver.

Public surface:

- :class:`~repro.experiments.scenario.Scenario` — one named experiment
  as data (grid, defaults, seed, curves, point function).
- :func:`~repro.experiments.registry.get_scenario`,
  :func:`~repro.experiments.registry.register`,
  :func:`~repro.experiments.registry.scenario_names` — the registry all
  figures and extension studies live in.
- :func:`~repro.experiments.driver.run_sweep` — fan a grid across
  workers and aggregate deterministically (byte-identical to serial).
- :class:`~repro.experiments.pool.SweepPool` /
  :func:`~repro.experiments.pool.shared_pool` — persistent worker pools
  that amortize fork cost across sweeps (``REPRO_SWEEP_START_METHOD``
  overrides the start method).
- :func:`~repro.experiments.cache.cached_sweep` — whole-sweep *and*
  per-point result caching; incremental re-sweeps after grid tweaks.
- :func:`~repro.experiments.shard.run_shard` /
  :func:`~repro.experiments.shard.merge_shards` — cross-host sharded
  sweeps that merge byte-identically to a serial run.
- :func:`~repro.experiments.persistence.save_sweep` — JSON/CSV under
  ``results/``.

See ``docs/EXPERIMENTS.md`` for the determinism contract, the
sweeps-at-scale machinery, and how to add a scenario.
"""

from repro.experiments.cache import (
    PointCache,
    TimingStore,
    cached_sweep,
    point_key,
    prune_cache,
    request_key,
)
from repro.experiments.compare import DriftReport, compare_result_to_dir
from repro.experiments.driver import SweepResult, run_sweep
from repro.experiments.persistence import DEFAULT_RESULTS_DIR, save_sweep, sweep_csv
from repro.experiments.pool import SweepPool, close_shared_pools, shared_pool
from repro.experiments.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.experiments.scenario import GridError, Scenario, parse_grid_overrides
from repro.experiments.shard import (
    ShardError,
    merge_shards,
    parse_shard_spec,
    run_shard,
    shard_indices,
    write_shard,
)

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "DriftReport",
    "GridError",
    "PointCache",
    "Scenario",
    "ShardError",
    "SweepPool",
    "SweepResult",
    "TimingStore",
    "all_scenarios",
    "cached_sweep",
    "close_shared_pools",
    "compare_result_to_dir",
    "get_scenario",
    "merge_shards",
    "parse_grid_overrides",
    "parse_shard_spec",
    "point_key",
    "prune_cache",
    "register",
    "request_key",
    "run_shard",
    "run_sweep",
    "save_sweep",
    "scenario_names",
    "shard_indices",
    "shared_pool",
    "sweep_csv",
    "write_shard",
]
