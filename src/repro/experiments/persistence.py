"""Sweep result persistence: JSON + CSV under ``results/``.

The JSON file is exactly :meth:`SweepResult.canonical_json` (pretty-
printed deterministically): no worker counts, no timestamps, no wall-
clock — re-running the same sweep at any parallelism must reproduce the
file byte for byte. Run metadata that legitimately varies (workers,
elapsed time, the calibration profile) goes to a ``*.meta.json``
sidecar that is excluded from all byte-identity claims.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.perf.calibration import PAPER_CALIBRATION

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.driver import SweepResult

__all__ = ["DEFAULT_RESULTS_DIR", "save_sweep", "sweep_csv"]

DEFAULT_RESULTS_DIR = Path("results")


def sweep_csv(result: "SweepResult") -> str:
    """The series as shared-x CSV: one x column, one column per curve.

    Floats are serialized with ``repr`` so the CSV carries the same
    bit-exact values as the JSON.
    """
    xs = result.series[0].xs if result.series else []
    header = [result.x] + [s.label for s in result.series]
    lines = [",".join(_csv_cell(h) for h in header)]
    for i, x in enumerate(xs):
        row = [_fmt_num(x)]
        for s in result.series:
            row.append(_fmt_num(s.ys[i]) if i < len(s.ys) else "")
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def _fmt_num(v: float) -> str:
    return repr(int(v)) if float(v).is_integer() and abs(v) < 1e15 else repr(v)


def _csv_cell(v: str) -> str:
    return f'"{v}"' if ("," in v or '"' in v) else v


def save_sweep(result: "SweepResult", outdir: Path = DEFAULT_RESULTS_DIR) -> dict[str, Path]:
    """Write ``<scenario>.json``, ``<scenario>.csv``, ``<scenario>.meta.json``.

    Returns the written paths keyed ``json``/``csv``/``meta``.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    base = result.scenario
    paths = {
        "json": outdir / f"{base}.json",
        "csv": outdir / f"{base}.csv",
        "meta": outdir / f"{base}.meta.json",
    }
    paths["json"].write_text(result.pretty_json())
    paths["csv"].write_text(sweep_csv(result))
    meta = {
        "scenario": base,
        "workers": result.workers,
        "elapsed_s": round(result.elapsed_s, 3),
        "start_method": result.start_method,
        "executed_points": result.executed_points,
        "cached_points": result.cached_points,
        "sha256": result.sha256(),
        "calibration": PAPER_CALIBRATION.to_dict(),
    }
    paths["meta"].write_text(json.dumps(meta, sort_keys=True, indent=2) + "\n")
    return paths
