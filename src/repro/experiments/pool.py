"""Persistent worker pools for the sweep driver.

Before this module existed every ``run_sweep`` forked a fresh
``multiprocessing`` pool and tore it down at the end of the grid — for
wide, cheap grids (and for benchmarks/tests that run many sweeps back
to back) the fork/import cost dominated the sweep itself. A
:class:`SweepPool` keeps its worker processes alive across sweeps, so
the fork cost is paid once per session, not once per sweep.

Determinism is unaffected: workers are stateless with respect to
results (each task re-applies the parent's engine and model modes and
builds a fresh ``Environment``), so pooled, per-sweep, and serial runs
produce byte-identical ``SweepResult`` content.

Two wrinkles the pool handles:

- **Start method.** ``fork`` is preferred (cheap, and children inherit
  the scenario registry so test-registered scenarios sweep too); where
  it is unavailable the pool falls back to ``spawn``. The environment
  variable ``REPRO_SWEEP_START_METHOD`` overrides the choice
  (``fork``/``spawn``/``forkserver``), and the method actually used is
  surfaced as non-canonical ``SweepResult.start_method`` metadata.
- **Registry staleness.** A forked pool snapshots the parent's scenario
  registry at creation. Registering a scenario afterwards bumps
  :func:`repro.experiments.registry.epoch`; the pool notices on its
  next use and transparently respawns, so late-registered scenarios
  always resolve in workers.
- **Worker death.** A pool worker SIGKILLed mid-task used to wedge the
  sweep forever: ``multiprocessing.Pool`` replaces the process but the
  in-flight task's result simply never arrives. :meth:`SweepPool.reap_dead`
  detects the death (exitcode or pid-set drift against the spawn-time
  baseline), respawns the pool, and :meth:`SweepPool.run_tasks` — the
  dispatch loop the driver and the serving layer use — re-dispatches
  every unfinished task. Tasks are idempotent pure functions, so a
  re-dispatch can at worst produce a duplicate result, which is
  deduplicated by index on receipt.
- **Concurrent callers.** The ``repro serve`` daemon multiplexes many
  concurrent jobs onto one pool from multiple threads, so the pool's
  lifecycle (lazy spawn, registry respawn, close) is guarded by a lock.
  The underlying ``multiprocessing.Pool`` task queue is itself
  thread-safe, so interleaved ``imap_unordered``/``apply_async`` calls
  from different threads share the workers without perturbing results —
  dispatch order was never canonical to begin with.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from queue import Empty, SimpleQueue
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.experiments import registry

__all__ = [
    "START_METHOD_ENV",
    "SweepPool",
    "close_shared_pools",
    "resolve_start_method",
    "shared_pool",
]

START_METHOD_ENV = "REPRO_SWEEP_START_METHOD"


def resolve_start_method(override: Optional[str] = None) -> str:
    """The multiprocessing start method sweeps will use.

    Precedence: explicit ``override`` argument, then the
    ``REPRO_SWEEP_START_METHOD`` environment variable, then ``fork``
    where available (``spawn`` otherwise). An unsupported name raises
    ``ValueError`` naming the platform's available methods — previously
    platforms without fork silently changed behavior; now the choice is
    explicit and inspectable.
    """
    available = multiprocessing.get_all_start_methods()
    choice = override if override is not None else os.environ.get(START_METHOD_ENV)
    if choice:
        if choice not in available:
            raise ValueError(
                f"unsupported sweep start method {choice!r} (via "
                f"{START_METHOD_ENV} or override); available on this "
                f"platform: {', '.join(available)}"
            )
        return choice
    return "fork" if "fork" in available else "spawn"


class SweepPool:
    """A reusable pool of sweep worker processes.

    Workers are created lazily on first use and stay alive until
    :meth:`close` (or interpreter exit, for the shared pools below), so
    consecutive sweeps skip the per-sweep fork/import cost. Safe to
    pass to any number of ``run_sweep``/``run_shard`` calls; the driver
    never closes a pool it was handed.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = resolve_start_method(start_method)
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._registry_epoch: Optional[int] = None
        self._lock = threading.Lock()
        #: PIDs the live pool was spawned with — the baseline reap_dead
        #: compares against to detect killed-and-respawned workers.
        self._pids: Optional[frozenset[int]] = None
        #: Worker deaths detected (and survived) over this pool's life.
        self.deaths_detected = 0

    @property
    def started(self) -> bool:
        return self._pool is not None

    def _ensure(self) -> multiprocessing.pool.Pool:
        # Forked children snapshot the registry; respawn when it grew so
        # scenarios registered after the fork still resolve in workers.
        # Locked: concurrent server threads must never double-spawn or
        # respawn a pool out from under each other.
        with self._lock:
            epoch = registry.epoch()
            if self._pool is not None and self._registry_epoch != epoch:
                self._close_locked()
            if self._pool is None:
                ctx = multiprocessing.get_context(self.start_method)
                self._pool = ctx.Pool(processes=self.workers)
                self._registry_epoch = epoch
                self._pids = frozenset(p.pid for p in self._pool._pool)  # noqa: SLF001
            return self._pool

    def imap_unordered(
        self, fn: Callable[[Any], Any], tasks: Iterable[Any]
    ) -> Iterator[Any]:
        """Stream ``fn(task)`` results in completion order (chunksize 1,
        so long tasks never serialize short ones behind them)."""
        return self._ensure().imap_unordered(fn, tasks, chunksize=1)

    def apply_async(
        self,
        fn: Callable[..., Any],
        args: tuple = (),
        callback: Optional[Callable[[Any], None]] = None,
        error_callback: Optional[Callable[[BaseException], None]] = None,
    ):
        """Submit one task and return its ``AsyncResult``.

        The serving layer's dispatch primitive: one task per call keeps
        at most a pool's worth of work in flight, so a cancelled job
        stops costing workers after the current wave instead of after
        the whole grid (``imap_unordered`` queues everything eagerly)."""
        return self._ensure().apply_async(
            fn, args, callback=callback, error_callback=error_callback
        )

    def reap_dead(self) -> bool:
        """Detect a killed worker process; tear the pool down if so.

        A ``multiprocessing.Pool`` survives a SIGKILLed worker (its
        maintenance thread forks a replacement) but the task that worker
        was executing is silently lost — the ``AsyncResult`` never
        completes and a bare ``imap_unordered`` consumer wedges forever.
        Detection is two-pronged because the maintenance thread races
        us: a dead ``Process`` object still in the pool list has a
        non-None exitcode, and a replaced one changes the pid set away
        from the spawn-time baseline. On detection the pool is torn
        down (the next use respawns it cleanly) and the caller must
        re-dispatch whatever it has not yet received — which is exactly
        what :meth:`run_tasks` does.

        Returns True when a death was detected (pool was reset).
        """
        with self._lock:
            if self._pool is None:
                return False
            procs = list(self._pool._pool)  # noqa: SLF001
            dead = any(p.exitcode is not None for p in procs)
            if not dead and self._pids is not None:
                dead = frozenset(p.pid for p in procs) != self._pids
            if not dead:
                return False
            self.deaths_detected += 1
            self._close_locked()
            return True

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        poll_s: float = 0.2,
    ) -> Iterator[Any]:
        """Death-tolerant ``imap_unordered``: stream ``fn(task)`` results
        in completion order, surviving SIGKILLed workers.

        Every task is dispatched individually (``apply_async``) onto a
        completion queue. When the queue stays silent for ``poll_s`` the
        pool is health-checked; a detected death respawns the workers
        and re-dispatches every task whose result has not arrived yet.
        Tasks must be idempotent pure functions (the sweep contract): a
        task that was merely queued — not lost — may then complete
        twice, and the first result wins. Exceptions raised *by tasks*
        still propagate to the caller; only silent worker death is
        retried.
        """
        tasks = list(tasks)
        total = len(tasks)
        if not total:
            return
        completions: SimpleQueue = SimpleQueue()
        received = [False] * total

        def submit(indices) -> None:
            for i in indices:
                self.apply_async(
                    fn, (tasks[i],),
                    callback=lambda r, i=i: completions.put((i, r, None)),
                    error_callback=lambda e, i=i: completions.put((i, None, e)),
                )

        submit(range(total))
        done = 0
        while done < total:
            try:
                i, result, error = completions.get(timeout=poll_s)
            except Empty:
                if self.reap_dead():
                    submit(i for i in range(total) if not received[i])
                continue
            if received[i]:
                continue  # duplicate from a pre-respawn dispatch
            if error is not None:
                raise error
            received[i] = True
            done += 1
            yield result

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty before first use) —
        lets tests assert that consecutive sweeps reused the same
        workers instead of forking new ones."""
        if self._pool is None:
            return []
        return [p.pid for p in self._pool._pool]  # noqa: SLF001

    def close(self) -> None:
        """Tear the workers down; the next use respawns them."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._registry_epoch = None
            self._pids = None

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Session-shared pools, keyed by (workers, start method). run_sweep
#: defaults to these, so the CLI, the perf harness, and the golden/sweep
#: tests all amortize worker startup without any explicit plumbing.
_SHARED: dict[tuple[int, str], SweepPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: int, start_method: Optional[str] = None) -> SweepPool:
    """The session-wide persistent pool for ``workers`` processes."""
    method = resolve_start_method(start_method)
    key = (workers, method)
    with _SHARED_LOCK:
        pool = _SHARED.get(key)
        if pool is None:
            pool = _SHARED[key] = SweepPool(workers, method)
        return pool


def close_shared_pools() -> None:
    """Terminate every shared pool (also runs at interpreter exit)."""
    while True:
        with _SHARED_LOCK:
            if not _SHARED:
                return
            _, pool = _SHARED.popitem()
        pool.close()


atexit.register(close_shared_pools)
