"""Scenario-level result caching.

A sweep is a pure function of its *request*: the scenario definition
(grid, defaults, curves, seed), the engine mode, the model-protocol
mode (repro.modelmode), the calibration profile — and the code itself.
:func:`request_key` hashes the canonical request description plus a
best-effort code-version marker (the git HEAD commit, read without
spawning a process), so two invocations that would provably compute
identical series share one cache entry, while a grid override, another
seed, the reference engine or reference model, a calibration tweak,
or a new commit each miss by construction. The one honest gap: edits
that are not yet committed do not change the key — after hacking on
model code, clear the cache directory (or commit) before trusting a
hit. Worker count is deliberately *not* part of the key: the driver's
determinism contract makes results byte-identical at any parallelism.

Entries are one JSON file each under the cache directory,
``<scenario>-<key16>.json``, holding the request key and the full
canonical result. A hit reconstructs the :class:`SweepResult` without
running a single simulation; a corrupt or mismatched entry is treated
as a miss and overwritten.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional, Union

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.analysis.series import Series
from repro.experiments.driver import SweepResult, run_sweep
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario
from repro.perf.calibration import PAPER_CALIBRATION

__all__ = ["cache_path", "cached_sweep", "load_cached", "request_key", "store_cached"]

_FORMAT = 1
"""Cache schema version; bump to invalidate every stored entry."""


def _code_version() -> Optional[str]:
    """Best-effort marker for the simulator code the results came from:
    the git HEAD commit of the repo containing this package, resolved by
    plain file reads (no subprocess). None outside a git checkout —
    then only the schema ``_FORMAT`` guards against code drift."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        git_dir = parent / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref: "):
                ref = git_dir / head[5:]
                if ref.exists():
                    return ref.read_text().strip()
                packed = git_dir / "packed-refs"
                if packed.exists():
                    for line in packed.read_text().splitlines():
                        if line.endswith(head[5:]):
                            return line.split(" ", 1)[0]
                return head  # unborn branch: the ref name still keys it
            return head  # detached HEAD: already a commit hash
        except OSError:
            return None
    return None


def request_key(scenario: Scenario, reference: Optional[bool] = None) -> str:
    """sha256 over everything that determines a sweep's bytes."""
    if reference is None:
        reference = engine.REFERENCE_MODE
    request = {
        "format": _FORMAT,
        "code_version": _code_version(),
        "scenario": scenario.name,
        "grid": {k: list(v) for k, v in scenario.grid.items()},
        "defaults": dict(scenario.defaults),
        "seed": scenario.seed,
        "x": scenario.x,
        "curves": list(scenario.curves),
        "reference_engine": bool(reference),
        "reference_model": bool(modelmode.REFERENCE_MODE),
        "calibration": PAPER_CALIBRATION.to_dict(),
    }
    blob = json.dumps(request, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def cache_path(cache_dir: Path, scenario: Union[str, Scenario], key: str) -> Path:
    """The single source of the entry naming scheme (load and store must
    agree or every lookup silently misses)."""
    name = scenario if isinstance(scenario, str) else scenario.name
    return Path(cache_dir) / f"{name}-{key[:16]}.json"


def store_cached(result: SweepResult, cache_dir: Path, key: str) -> Path:
    """Persist one sweep result under its request key."""
    path = cache_path(cache_dir, result.scenario, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {"format": _FORMAT, "key": key, "result": result.canonical_dict()}
    path.write_text(json.dumps(entry, sort_keys=True, indent=2) + "\n")
    return path


def load_cached(cache_dir: Path, scenario: Scenario, key: str) -> Optional[SweepResult]:
    """Rebuild a stored result, or None on miss/corruption/key mismatch."""
    path = cache_path(cache_dir, scenario, key)
    if not path.exists():
        return None
    try:
        entry = json.loads(path.read_text())
        if entry.get("format") != _FORMAT or entry.get("key") != key:
            return None
        return _result_from_dict(entry["result"])
    except (ValueError, KeyError, TypeError):
        return None  # unreadable entry == miss; the rerun overwrites it


def _result_from_dict(d: dict[str, Any]) -> SweepResult:
    return SweepResult(
        scenario=d["scenario"],
        title=d["title"],
        seed=d["seed"],
        x=d["x"],
        xlabel=d["xlabel"],
        ylabel=d["ylabel"],
        grid={k: list(v) for k, v in d["grid"].items()},
        defaults=dict(d["defaults"]),
        points=list(d["points"]),
        series=[
            Series(label=s["label"], xs=list(s["xs"]), ys=list(s["ys"]))
            for s in d["series"]
        ],
        workers=0,  # nothing ran
        elapsed_s=0.0,
    )


def cached_sweep(
    scenario: Union[str, Scenario],
    *,
    workers: int = 1,
    cache_dir: Path,
    seed: Optional[int] = None,
) -> tuple[SweepResult, bool]:
    """``run_sweep`` behind the cache: returns ``(result, was_hit)``."""
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if seed is not None:
        sc = sc.with_overrides(None, seed=seed)
    key = request_key(sc)
    cached = load_cached(cache_dir, sc, key)
    if cached is not None:
        return cached, True
    result = run_sweep(sc, workers=workers)
    store_cached(result, cache_dir, key)
    return result, False
