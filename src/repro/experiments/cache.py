"""Sweep result caching: whole-sweep entries plus per-point entries.

A sweep is a pure function of its *request*: the scenario definition
(grid, defaults, curves, seed), the engine mode, the model-protocol
mode (repro.modelmode), the calibration profile — and the code itself.
:func:`request_key` hashes the canonical request description plus a
best-effort code-version marker (the git HEAD commit, read without
spawning a process), so two invocations that would provably compute
identical series share one cache entry, while a grid override, another
seed, the reference engine or reference model, a calibration tweak,
or a new commit each miss by construction. The one honest gap: edits
that are not yet committed do not change the key — after hacking on
model code, clear the cache directory (or commit) before trusting a
hit. Worker count is deliberately *not* part of the key: the driver's
determinism contract makes results byte-identical at any parallelism.

The same purity holds one level down: **each grid point** is a pure
function of its fully-bound ``cfg`` (plus modes/calibration/code), so
:func:`point_key` keys single points and :class:`PointCache` stores
them individually under ``<cache_dir>/points/``. When a sweep's
whole-request key misses but most of its points are unchanged — the
typical "tweak one grid value / one default" iteration — the driver
executes only the missing points and assembles the rest from cache.

Two more files live next to the entries:

- ``timings.json`` (:class:`TimingStore`) — recorded per-point
  ``elapsed_s`` from prior runs; purely advisory, used to dispatch
  pending points longest-first so wide pools do not end on a straggler.
- nothing else: :func:`prune_cache` (``repro sweep --cache-prune``)
  deletes whole-sweep and point entries by age and/or total size,
  oldest first, and leaves ``timings.json`` alone.

Entries are one JSON file each, ``<scenario>-<key16>.json``, holding
the full key and the canonical payload. A hit reconstructs the result
without running a single simulation; a corrupt or mismatched entry is
treated as a miss and overwritten.

**Concurrent access.** A long-lived ``repro serve`` daemon reads and
writes this cache while ``repro sweep --cache-prune`` (or another
sweep) races it, so every path here is safe against files appearing,
vanishing, or being replaced mid-operation: writes go through a
same-directory temp file plus :func:`os.replace` (readers see the old
bytes or the new bytes, never a torn file), reads treat a vanished or
unreadable entry as a miss, and :func:`prune_cache` tolerates entries
deleted under its feet. :class:`InflightRegistry` is the in-process
complement: a thread-safe map of request keys to live computations, so
concurrent identical requests coalesce onto one run instead of racing
each other to the same entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, TypeVar, Union

import repro.modelmode as modelmode
import repro.obs as obs
import repro.sim.engine as engine
from repro.experiments.driver import SweepResult, run_sweep
from repro.experiments.pool import SweepPool
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario
from repro.perf.calibration import PAPER_CALIBRATION

__all__ = [
    "InflightRegistry",
    "PointCache",
    "PruneStats",
    "TimingStore",
    "cache_path",
    "cached_sweep",
    "load_cached",
    "point_key",
    "prune_cache",
    "request_key",
    "store_cached",
]

_FORMAT = 1
"""Whole-sweep cache schema version; bump to invalidate stored entries."""

_POINT_FORMAT = 1
"""Per-point cache schema version."""


def _code_version() -> Optional[str]:
    """Best-effort marker for the simulator code the results came from:
    the git HEAD commit of the repo containing this package, resolved by
    plain file reads (no subprocess). None outside a git checkout —
    then only the schema ``_FORMAT`` guards against code drift."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        git_dir = parent / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref: "):
                ref = git_dir / head[5:]
                if ref.exists():
                    return ref.read_text().strip()
                packed = git_dir / "packed-refs"
                if packed.exists():
                    for line in packed.read_text().splitlines():
                        if line.endswith(head[5:]):
                            return line.split(" ", 1)[0]
                return head  # unborn branch: the ref name still keys it
            return head  # detached HEAD: already a commit hash
        except OSError:
            return None
    return None


def _hash_request(request: dict[str, Any]) -> str:
    blob = json.dumps(request, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` all-or-nothing: a same-directory temp
    file + :func:`os.replace`, so a concurrent reader (another sweep, a
    serving daemon) sees the previous entry or the new one, never a
    half-written file."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


_T = TypeVar("_T")


class InflightRegistry:
    """Thread-safe map of request key → live computation.

    The admission/coalescing primitive the serving layer builds on:
    :meth:`claim` either returns the existing in-flight entry for a key
    (attach — the caller shares that computation's result) or invokes
    ``factory`` under the lock and registers the fresh entry (the caller
    owns the execution). :meth:`release` removes a finished entry, after
    which an identical request starts a new computation — typically a
    whole-sweep cache hit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: dict[str, Any] = {}

    def claim(self, key: str, factory: Callable[[], _T]) -> tuple[_T, bool]:
        """``(entry, created)``: attach to the in-flight entry for
        ``key``, or create and register one via ``factory``."""
        with self._lock:
            entry = self._live.get(key)
            if entry is not None:
                return entry, False
            entry = factory()
            self._live[key] = entry
            return entry, True

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            return self._live.get(key)

    def release(self, key: str, entry: Any) -> bool:
        """Drop ``key`` if it still maps to ``entry`` (a stale release
        must never evict a newer computation that reused the key)."""
        with self._lock:
            if self._live.get(key) is entry:
                del self._live[key]
                return True
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)


def request_key(
    scenario: Scenario,
    reference: Optional[bool] = None,
    model_reference: Optional[bool] = None,
) -> str:
    """sha256 over everything that determines a sweep's bytes."""
    if reference is None:
        reference = engine.REFERENCE_MODE
    if model_reference is None:
        model_reference = modelmode.REFERENCE_MODE
    return _hash_request({
        "format": _FORMAT,
        "code_version": _code_version(),
        "scenario": scenario.name,
        "grid": {k: list(v) for k, v in scenario.grid.items()},
        "defaults": dict(scenario.defaults),
        "seed": scenario.seed,
        "x": scenario.x,
        "curves": list(scenario.curves),
        "reference_engine": bool(reference),
        "reference_model": bool(model_reference),
        "calibration": PAPER_CALIBRATION.to_dict(),
    })


def point_key(
    scenario: Scenario,
    cfg: Mapping[str, Any],
    reference: Optional[bool] = None,
    model_reference: Optional[bool] = None,
) -> str:
    """sha256 over everything that determines one grid point's values.

    The fully-bound ``cfg`` already carries every grid value, every
    default, and the seed, so grid *membership* is deliberately absent:
    adding or removing neighbors never invalidates a point, which is
    exactly what makes incremental re-sweeps possible.
    """
    if reference is None:
        reference = engine.REFERENCE_MODE
    if model_reference is None:
        model_reference = modelmode.REFERENCE_MODE
    return _hash_request({
        "format": _POINT_FORMAT,
        "code_version": _code_version(),
        "scenario": scenario.name,
        "cfg": dict(cfg),
        "curves": list(scenario.curves),
        "reference_engine": bool(reference),
        "reference_model": bool(model_reference),
        "calibration": PAPER_CALIBRATION.to_dict(),
    })


def cache_path(cache_dir: Path, scenario: Union[str, Scenario], key: str) -> Path:
    """The single source of the entry naming scheme (load and store must
    agree or every lookup silently misses)."""
    name = scenario if isinstance(scenario, str) else scenario.name
    return Path(cache_dir) / f"{name}-{key[:16]}.json"


def store_cached(result: SweepResult, cache_dir: Path, key: str) -> Path:
    """Persist one sweep result under its request key."""
    path = cache_path(cache_dir, result.scenario, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {"format": _FORMAT, "key": key, "result": result.canonical_dict()}
    _atomic_write(path, json.dumps(entry, sort_keys=True, indent=2) + "\n")
    return path


def load_cached(cache_dir: Path, scenario: Scenario, key: str) -> Optional[SweepResult]:
    """Rebuild a stored result, or None on miss/corruption/key mismatch.

    A file that vanishes between the existence check and the read — a
    concurrent prune — is a miss too, not an error.
    """
    path = cache_path(cache_dir, scenario, key)
    if not path.exists():
        return None
    try:
        entry = json.loads(path.read_text())
        if entry.get("format") != _FORMAT or entry.get("key") != key:
            return None
        return SweepResult.from_dict(entry["result"])
    except (OSError, ValueError, KeyError, TypeError):
        return None  # unreadable/vanished entry == miss; the rerun overwrites it


class PointCache:
    """Per-point result entries under ``<cache_dir>/points/``.

    One small JSON file per grid point, named by scenario plus the
    first 16 hex chars of the :func:`point_key`; the full key stored
    inside guards against prefix collisions. Values round-trip through
    JSON, which serializes floats at full ``repr`` precision — a
    cache-assembled sweep is byte-identical to a fresh one.
    """

    def __init__(self, cache_dir: Path):
        self.dir = Path(cache_dir) / "points"
        #: Lifetime lookup tallies (always on — two int bumps). When
        #: telemetry is enabled at construction they are mirrored into
        #: the obs registry as counters.
        self.hits = 0
        self.misses = 0
        self._obs_lookups = (
            obs.registry().counter(
                "repro_point_cache_lookups_total",
                "Point-cache lookups by outcome",
                labels=("outcome",),
            )
            if obs.enabled()
            else None
        )

    def lookup(
        self,
        scenario: Scenario,
        cfg: Mapping[str, Any],
        reference: Optional[bool] = None,
        model_reference: Optional[bool] = None,
    ) -> tuple[str, Optional[dict[str, float]]]:
        """``(key, stored values or None)`` for one bound point."""
        key = point_key(scenario, cfg, reference, model_reference)
        values = self.get(scenario.name, key)
        if values is not None:
            self.hits += 1
        else:
            self.misses += 1
        if self._obs_lookups is not None:
            self._obs_lookups.inc(outcome="hit" if values is not None else "miss")
        return key, values

    def _path(self, name: str, key: str) -> Path:
        return self.dir / f"{name}-{key[:16]}.json"

    def get(self, name: str, key: str) -> Optional[dict[str, float]]:
        path = self._path(name, key)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
            if entry.get("format") != _POINT_FORMAT or entry.get("key") != key:
                return None
            values = entry["values"]
            return dict(values) if isinstance(values, dict) else None
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable == miss; OSError covers an entry pruned away
            # between the existence check and the read.
            return None

    def store(self, name: str, key: str, values: Mapping[str, float]) -> Path:
        path = self._path(name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": _POINT_FORMAT,
            "key": key,
            "scenario": name,
            "values": dict(values),
        }
        _atomic_write(path, json.dumps(entry, sort_keys=True, indent=2) + "\n")
        return path


class TimingStore:
    """Recorded per-point ``elapsed_s`` from prior runs, persisted as
    ``<cache_dir>/timings.json``.

    Purely advisory — never part of any cache key or canonical byte —
    so its key deliberately *excludes* the code version and calibration:
    a commit does not change how long a point roughly takes, and a
    stale estimate only costs dispatch-order quality, never
    correctness. Engine/model modes are included (the reference loops
    are much slower). Entries are keyed by the first 16 hex chars and
    capped at ``max_entries``, evicting least-recently-updated first.
    """

    def __init__(self, cache_dir: Path, max_entries: int = 10_000):
        self.path = Path(cache_dir) / "timings.json"
        self.max_entries = max_entries
        self._data: Optional[dict[str, float]] = None
        self._dirty = False

    def key(
        self,
        scenario: Scenario,
        cfg: Mapping[str, Any],
        reference: Optional[bool] = None,
        model_reference: Optional[bool] = None,
    ) -> str:
        if reference is None:
            reference = engine.REFERENCE_MODE
        if model_reference is None:
            model_reference = modelmode.REFERENCE_MODE
        return _hash_request({
            "scenario": scenario.name,
            "cfg": dict(cfg),
            "reference_engine": bool(reference),
            "reference_model": bool(model_reference),
        })

    def _load(self) -> dict[str, float]:
        if self._data is None:
            try:
                raw = json.loads(self.path.read_text())
                data = raw["elapsed_s"] if raw.get("format") == 1 else {}
                self._data = {
                    str(k): float(v) for k, v in data.items()
                } if isinstance(data, dict) else {}
            except (OSError, ValueError, KeyError, TypeError):
                self._data = {}
        return self._data

    def estimate(self, key: str) -> Optional[float]:
        return self._load().get(key[:16])

    def record(self, key: str, elapsed_s: Optional[float]) -> None:
        if elapsed_s is None:
            return
        data = self._load()
        data.pop(key[:16], None)  # re-insert at the end: LRU-by-update
        data[key[:16]] = round(float(elapsed_s), 6)
        self._dirty = True

    def flush(self) -> None:
        if not self._dirty:
            return
        data = self._load()
        if len(data) > self.max_entries:
            for stale in list(data)[: len(data) - self.max_entries]:
                del data[stale]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # No sort_keys: JSON objects round-trip in insertion order, and
        # insertion order *is* the recency order the cap evicts by —
        # sorting here would reset eviction to alphabetical on reload.
        _atomic_write(
            self.path, json.dumps({"format": 1, "elapsed_s": data}, indent=2) + "\n"
        )
        self._dirty = False


@dataclass
class PruneStats:
    """What one :func:`prune_cache` pass did."""

    scanned: int = 0
    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0


def prune_cache(
    cache_dir: Path,
    max_age_days: Optional[float] = None,
    max_bytes: Optional[int] = None,
    now: Optional[float] = None,
) -> PruneStats:
    """Delete cache entries by age and/or total size (oldest first).

    Covers whole-sweep entries in ``cache_dir`` and point entries in
    ``cache_dir/points``; the advisory ``timings.json`` is exempt (it
    is one bounded file, and losing it costs dispatch quality, not
    space). With ``max_age_days``, entries whose mtime is older are
    removed; with ``max_bytes``, the oldest entries are removed until
    the survivors fit. With neither, nothing is removed (the stats
    still report the current entry count and footprint).
    """
    cache_dir = Path(cache_dir)
    now = time.time() if now is None else now
    entries: list[tuple[float, int, Path]] = []
    for root in (cache_dir, cache_dir / "points"):
        # Everything below tolerates a racing writer/pruner: the listing
        # may name entries that vanish before they are statted (skip) or
        # unlinked (already counted gone), and the directory itself may
        # disappear mid-scan.
        try:
            listing = sorted(root.glob("*.json")) if root.is_dir() else []
        except OSError:
            continue
        for path in listing:
            if path == cache_dir / "timings.json":
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))

    stats = PruneStats(scanned=len(entries))
    survivors: list[tuple[float, int, Path]] = []
    for mtime, size, path in entries:
        if max_age_days is not None and now - mtime > max_age_days * 86_400:
            _remove(path, size, stats)
        else:
            survivors.append((mtime, size, path))
    if max_bytes is not None:
        survivors.sort()  # oldest first
        total = sum(size for _, size, _ in survivors)
        while survivors and total > max_bytes:
            _, size, path = survivors.pop(0)
            _remove(path, size, stats)
            total -= size
    stats.kept = len(survivors)
    stats.kept_bytes = sum(size for _, size, _ in survivors)
    return stats


def _remove(path: Path, size: int, stats: PruneStats) -> None:
    try:
        path.unlink()
    except OSError:
        return
    stats.removed += 1
    stats.freed_bytes += size


def cached_sweep(
    scenario: Union[str, Scenario],
    *,
    workers: int = 1,
    cache_dir: Path,
    seed: Optional[int] = None,
    pool: Optional[SweepPool] = None,
) -> tuple[SweepResult, bool]:
    """``run_sweep`` behind the cache: returns ``(result, was_hit)``.

    ``was_hit`` reports a **whole-sweep** hit (nothing ran at all).
    On a whole-sweep miss the run still goes through the point cache,
    so only points whose individual keys miss actually execute — check
    ``result.executed_points`` / ``result.cached_points`` for the
    split — and recorded point timings order the dispatch.
    """
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if seed is not None:
        sc = sc.with_overrides(None, seed=seed)
    key = request_key(sc)
    cached = load_cached(cache_dir, sc, key)
    if cached is not None:
        return cached, True
    result = run_sweep(
        sc,
        workers=workers,
        pool=pool,
        point_cache=PointCache(cache_dir),
        timings=TimingStore(cache_dir),
    )
    store_cached(result, cache_dir, key)
    return result, False
