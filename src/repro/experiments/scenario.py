"""Declarative sweep scenarios.

A :class:`Scenario` names one experiment family — a paper figure or an
extension study — as data: a parameter grid, fixed defaults, a seed, the
declared curve order, and a pure ``run_point`` function that maps one
fully-bound parameter dict to ``{curve_label: y}``. Everything else
(fan-out, aggregation, persistence, plotting) is generic and lives in
:mod:`repro.experiments.driver`.

The determinism contract: ``run_point`` must depend only on its ``cfg``
argument (which includes the seed) and module-level calibration
constants. Given that, any execution order — serial, or parallel across
processes — reassembles into byte-identical series.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.series import Series

__all__ = ["GridError", "Scenario", "parse_grid_overrides"]

#: One grid point, fully bound: every grid param, every default, plus "seed".
PointFn = Callable[[Mapping[str, Any]], Mapping[str, float]]


class GridError(ValueError):
    """Raised for unknown parameters or malformed grid overrides."""


@dataclass(frozen=True)
class Scenario:
    """One named, declaratively-swept experiment.

    Attributes
    ----------
    name: registry key (``repro sweep <name>``).
    title: report heading; may reference defaults, e.g.
        ``"Fig. 5: {data_gb:.0f} GB fixed"``.
    description: one-paragraph motivation shown by ``repro scenarios``.
    run_point: pure function of one bound parameter dict returning
        ``{curve_label: y}`` for every curve at that point.
    grid: ordered sweepable parameters → value tuples. The cartesian
        product in row-major order defines the canonical point order.
    x: which grid parameter is the x axis of the figure.
    defaults: fixed scalar parameters, overridable per run.
    curves: declared curve order (series appear in exactly this order).
    seed: root seed threaded into every point as ``cfg["seed"]``.
    figure: paper figure tag (``"fig8"``) or None for extension studies.
    """

    name: str
    title: str
    description: str
    run_point: PointFn
    grid: dict[str, tuple]
    x: str
    curves: tuple[str, ...]
    defaults: dict[str, Any] = field(default_factory=dict)
    seed: int = 1234
    xlabel: str = "x"
    ylabel: str = "Time (s)"
    figure: str | None = None

    def __post_init__(self) -> None:
        if not self.grid:
            raise GridError(f"scenario {self.name!r} has an empty grid")
        if self.x not in self.grid:
            raise GridError(f"x axis {self.x!r} is not a grid parameter")
        for param, values in self.grid.items():
            if not values:
                raise GridError(f"grid parameter {param!r} has no values")
        overlap = set(self.grid) & set(self.defaults)
        if overlap:
            raise GridError(f"parameters both grid and default: {sorted(overlap)}")
        if "seed" in self.grid or "seed" in self.defaults:
            raise GridError("'seed' is reserved (set Scenario.seed)")

    # -- derivation ---------------------------------------------------------
    def with_overrides(
        self,
        overrides: Mapping[str, Any] | None = None,
        seed: int | None = None,
    ) -> "Scenario":
        """A copy with grid lists / default scalars / seed replaced.

        A grid parameter takes a sequence of values; a default takes one
        scalar. Unknown names raise :class:`GridError` (catching typos in
        ``--grid`` long before a worker process would).
        """
        grid = dict(self.grid)
        defaults = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key in grid:
                values = tuple(value) if isinstance(value, (list, tuple)) else (value,)
                grid[key] = tuple(_cast(self.name, key, type(grid[key][0]), v)
                                  for v in values)
            elif key in defaults:
                if isinstance(value, (list, tuple)):
                    if len(value) != 1:
                        raise GridError(
                            f"{key!r} is a fixed parameter of {self.name!r}; "
                            f"give one value, not {len(value)}"
                        )
                    value = value[0]
                if defaults[key] is not None:
                    value = _cast(self.name, key, type(defaults[key]), value)
                defaults[key] = value
            else:
                known = sorted(list(grid) + list(defaults))
                raise GridError(
                    f"unknown parameter {key!r} for scenario {self.name!r}; "
                    f"known: {', '.join(known)}"
                )
        return replace(
            self,
            grid=grid,
            defaults=defaults,
            seed=self.seed if seed is None else int(seed),
        )

    def format_title(self) -> str:
        """``title`` with defaults substituted (best effort)."""
        try:
            return self.title.format(**self.defaults)
        except (KeyError, IndexError):  # pragma: no cover - authoring error
            return self.title

    # -- the canonical point order ------------------------------------------
    def points(self) -> list[dict[str, Any]]:
        """Every grid point, fully bound, in canonical row-major order."""
        names = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[n] for n in names)):
            cfg = dict(self.defaults)
            cfg.update(zip(names, combo))
            cfg["seed"] = self.seed
            out.append(cfg)
        return out

    # -- deterministic aggregation ------------------------------------------
    def assemble(self, results: Sequence[Mapping[str, float]]) -> list[Series]:
        """Merge per-point results (in canonical point order) into series.

        One series per (curve, non-x grid combination), curves in
        declared order, x values in grid order — independent of the
        order the results were *computed* in, which is what makes the
        parallel driver byte-identical to a serial run.
        """
        points = self.points()
        if len(results) != len(points):
            raise ValueError(
                f"{self.name}: {len(results)} results for {len(points)} points"
            )
        extra_params = [p for p in self.grid if p != self.x]
        series: dict[tuple, Series] = {}
        for cfg, values in zip(points, results):
            missing = [c for c in self.curves if c not in values]
            if missing:
                raise ValueError(f"{self.name}: point missing curves {missing}")
            combo = tuple((p, cfg[p]) for p in extra_params)
            suffix = "".join(f" [{p}={v:g}]" if isinstance(v, float) else f" [{p}={v}]"
                             for p, v in combo)
            for curve in self.curves:
                key = (curve, combo)
                s = series.get(key)
                if s is None:
                    s = series[key] = Series(label=curve + suffix)
                s.append(cfg[self.x], values[curve])
        # Declared curve order is the outer sort key; extra-param combos
        # follow grid order because dicts preserve first-seen insertion.
        ordered: list[Series] = []
        for curve in self.curves:
            ordered.extend(s for (c, _), s in series.items() if c == curve)
        return ordered


def _cast(scenario: str, key: str, typ: type, value: Any) -> Any:
    """Cast an override to the parameter's existing type; a bad literal
    is a user error (GridError), not an internal ValueError."""
    try:
        return typ(value)
    except (TypeError, ValueError):
        raise GridError(
            f"cannot parse {value!r} as {typ.__name__} for parameter "
            f"{key!r} of scenario {scenario!r}"
        ) from None


def parse_grid_overrides(specs: Sequence[str]) -> dict[str, list[str]]:
    """Parse ``--grid key=v1,v2,...`` strings into an override mapping.

    Values stay strings; :meth:`Scenario.with_overrides` casts them to
    the type of the parameter's existing values.
    """
    out: dict[str, list[str]] = {}
    for spec in specs:
        key, sep, rest = spec.partition("=")
        key = key.strip()
        values = [v.strip() for v in rest.split(",") if v.strip()]
        if not sep or not key or not values:
            raise GridError(f"malformed --grid {spec!r}; expected key=v1,v2,...")
        out[key] = values
    return out
