"""Cross-host sharded sweeps.

One sweep can now span machines: ``repro sweep <scenario> --shard i/N``
runs a **deterministic partition** of the scenario's grid (point ``j``
belongs to shard ``j % N`` — round-robin, so paper grids whose cost
grows along the x axis spread their heavy tail across shards) and
writes a shard manifest; ``repro sweep --merge DIR...`` reassembles any
complete shard set into a :class:`SweepResult` whose
``canonical_json()``/``sha256()`` is **byte-identical to a serial
run**.

The manifest carries everything needed to make merging safe: the
scenario request (grid, defaults, seed), the engine/model modes the
shard ran under, and the full :func:`~repro.experiments.cache.request_key`
— which also fingerprints the code version and calibration profile.
:func:`merge_shards` refuses mismatched shards (different seeds, modes,
grids, shard counts, duplicate or missing shards) and refuses shard
sets whose request key no longer matches the merging host's code, so a
merge can never silently mix results from two different experiment
definitions or two different simulator versions.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments.cache import request_key
from repro.experiments.driver import SweepResult, dispatch_tasks
from repro.experiments.pool import SweepPool
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario

__all__ = [
    "ShardError",
    "merge_shards",
    "parse_shard_spec",
    "run_shard",
    "shard_filename",
    "shard_indices",
    "write_shard",
]

_SHARD_FORMAT = 1
"""Shard manifest schema version."""


class ShardError(ValueError):
    """Malformed shard specs, unreadable manifests, or unsafe merges."""


def parse_shard_spec(text: str) -> tuple[int, int]:
    """Parse ``I/N`` (shard index ``I`` of ``N``, zero-based)."""
    head, sep, tail = text.partition("/")
    try:
        index, count = int(head), int(tail)
    except ValueError:
        raise ShardError(
            f"malformed --shard {text!r}; expected I/N, e.g. 0/4"
        ) from None
    if not sep or count < 1 or not 0 <= index < count:
        raise ShardError(
            f"malformed --shard {text!r}; need 0 <= I < N, e.g. 0/4"
        )
    return index, count


def shard_indices(num_points: int, index: int, count: int) -> list[int]:
    """The canonical point indices belonging to one shard.

    Round-robin (point ``j`` -> shard ``j % count``): deterministic,
    independent of any timing data, so every host computes the same
    partition from the scenario definition alone.
    """
    if count < 1 or not 0 <= index < count:
        raise ShardError(f"invalid shard {index}/{count}")
    return list(range(index, num_points, count))


def shard_filename(scenario: str, index: int, count: int) -> str:
    return f"{scenario}.shard-{index}-of-{count}.json"


def run_shard(
    scenario: Union[str, Scenario],
    index: int,
    count: int,
    overrides: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    workers: int = 1,
    pool: Optional[SweepPool] = None,
) -> dict[str, Any]:
    """Execute one shard's points and return its manifest (a plain JSON-
    serializable dict; persist with :func:`write_shard`)."""
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    sc = sc.with_overrides(overrides, seed=seed)
    points = sc.points()
    mine = shard_indices(len(points), index, count)
    reference = engine.REFERENCE_MODE
    model_reference = modelmode.REFERENCE_MODE

    t0 = time.perf_counter()
    results: dict[int, dict[str, float]] = {}
    elapsed: dict[int, float] = {}
    tasks = [(sc.name, j, points[j], reference, model_reference, False) for j in mine]
    _, stream = dispatch_tasks(sc, tasks, workers, pool)
    for j, values, dt, _snap in stream:
        results[j] = values
        elapsed[j] = dt

    return {
        "format": _SHARD_FORMAT,
        "scenario": sc.name,
        "shard_index": index,
        "shard_count": count,
        "request_key": request_key(sc, reference, model_reference),
        "seed": sc.seed,
        "reference_engine": reference,
        "reference_model": model_reference,
        "grid": {k: list(v) for k, v in sc.grid.items()},
        "defaults": dict(sc.defaults),
        "point_indices": mine,
        # Keys are strings (JSON objects force it); merge converts back.
        "results": {str(j): results[j] for j in mine},
        "point_elapsed_s": {str(j): round(elapsed[j], 6) for j in mine},
        "elapsed_s": round(time.perf_counter() - t0, 6),
    }


def write_shard(manifest: dict[str, Any], outdir: Path) -> Path:
    """Persist a manifest as ``<scenario>.shard-<i>-of-<N>.json``."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / shard_filename(
        manifest["scenario"], manifest["shard_index"], manifest["shard_count"]
    )
    path.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return path


def _load_manifests(dirs: Sequence[Path]) -> list[dict[str, Any]]:
    manifests = []
    for d in dirs:
        found = sorted(Path(d).glob("*.shard-*-of-*.json"))
        if not found:
            raise ShardError(f"no shard manifests (*.shard-I-of-N.json) in {d}")
        for path in found:
            try:
                manifest = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                raise ShardError(f"unreadable shard manifest {path}: {exc}") from None
            if manifest.get("format") != _SHARD_FORMAT:
                raise ShardError(
                    f"{path}: unsupported shard format "
                    f"{manifest.get('format')!r} (expected {_SHARD_FORMAT})"
                )
            manifests.append(manifest)
    return manifests


#: Manifest fields every shard of one sweep must agree on. request_key
#: alone already covers seed/modes/grid/code, but checking the readable
#: fields first gives actionable error messages.
_CONSISTENT_FIELDS = (
    "scenario",
    "shard_count",
    "seed",
    "reference_engine",
    "reference_model",
    "grid",
    "defaults",
    "request_key",
)


def merge_shards(dirs: Sequence[Path]) -> SweepResult:
    """Reassemble a complete shard set into one :class:`SweepResult`.

    The merged result is byte-identical to running the sweep serially
    on one host: values round-trip through JSON at full ``repr``
    precision, points land in canonical grid order, and series assembly
    is the same :meth:`Scenario.assemble` every other path uses.
    Raises :class:`ShardError` on any inconsistency.
    """
    manifests = _load_manifests(dirs)
    first = manifests[0]
    for m in manifests[1:]:
        for fld in _CONSISTENT_FIELDS:
            if m[fld] != first[fld]:
                raise ShardError(
                    f"shard mismatch on {fld!r}: shard "
                    f"{m['shard_index']}/{m['shard_count']} has {m[fld]!r}, "
                    f"shard {first['shard_index']}/{first['shard_count']} "
                    f"has {first[fld]!r} — refusing to merge results from "
                    f"different sweep requests"
                )
    count = first["shard_count"]
    seen: set[int] = set()
    for m in manifests:
        if m["shard_index"] in seen:
            raise ShardError(f"duplicate shard {m['shard_index']}/{count}")
        seen.add(m["shard_index"])
    missing = sorted(set(range(count)) - seen)
    if missing:
        raise ShardError(
            f"incomplete shard set for {first['scenario']!r}: missing "
            f"shard(s) {missing} of {count}"
        )

    # Rebuild the swept scenario from the registry + the manifest's
    # grid/defaults/seed, then verify the recomputed request key matches
    # the shards' — catching code/calibration drift between the hosts
    # that ran the shards and the host merging them.
    try:
        base = get_scenario(first["scenario"])
    except KeyError as exc:
        raise ShardError(str(exc)) from None
    if set(first["grid"]) != set(base.grid):
        raise ShardError(
            f"shard grid parameters {sorted(first['grid'])} do not match "
            f"the registered scenario's {sorted(base.grid)}"
        )
    sc = replace(
        base,
        # Manifests are JSON with sorted keys; canonical point order is
        # row-major over the *declared* grid order, so rebuild the grid
        # in the registered scenario's key order.
        grid={k: tuple(first["grid"][k]) for k in base.grid},
        defaults=dict(first["defaults"]),
        seed=int(first["seed"]),
    )
    expected = request_key(
        sc, first["reference_engine"], first["reference_model"]
    )
    if expected != first["request_key"]:
        raise ShardError(
            f"request-key mismatch for {sc.name!r}: the shards were "
            f"produced under a different code/calibration state than this "
            f"host (got {first['request_key'][:16]}, expected "
            f"{expected[:16]}); re-run the shards or merge on a matching "
            f"checkout"
        )

    points = sc.points()
    results: list[Optional[dict[str, float]]] = [None] * len(points)
    point_elapsed: list[Optional[float]] = [None] * len(points)
    for m in manifests:
        expected_indices = shard_indices(
            len(points), m["shard_index"], count
        )
        if list(m["point_indices"]) != expected_indices:
            raise ShardError(
                f"shard {m['shard_index']}/{count} covers points "
                f"{m['point_indices']}, expected {expected_indices} — the "
                f"partition is not the canonical round-robin split"
            )
        for j_str, values in m["results"].items():
            results[int(j_str)] = dict(values)
        for j_str, dt in m.get("point_elapsed_s", {}).items():
            point_elapsed[int(j_str)] = float(dt)
    absent = [i for i, r in enumerate(results) if r is None]
    if absent:
        raise ShardError(
            f"shard set covers the grid incompletely: no values for "
            f"point(s) {absent}"
        )

    series = sc.assemble(results)
    point_rows = []
    for i, (cfg, values) in enumerate(zip(points, results)):
        row: dict[str, Any] = {
            "params": {k: v for k, v in cfg.items() if k != "seed"},
            "values": values,
        }
        if point_elapsed[i] is not None:
            row["elapsed_s"] = point_elapsed[i]
        point_rows.append(row)
    return SweepResult(
        scenario=sc.name,
        title=sc.format_title(),
        seed=sc.seed,
        x=sc.x,
        xlabel=sc.xlabel,
        ylabel=sc.ylabel,
        grid={k: list(v) for k, v in sc.grid.items()},
        defaults=dict(sc.defaults),
        points=point_rows,
        series=series,
        workers=0,  # nothing ran here; the shards did the work
        elapsed_s=sum(float(m["elapsed_s"]) for m in manifests),
        executed_points=0,
        cached_points=0,
    )
