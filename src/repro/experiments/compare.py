"""Sweep drift reports: diff a fresh run against stored results.

``repro sweep <scenario> --compare results/old/`` reruns a scenario and
diffs its series, point by point, against the ``<scenario>.json`` a
previous run persisted. The report is per-curve — matched points, worst
absolute and relative deviation with the x where it happens — plus
structural changes (curves or grid points added/removed). Any
difference is *drift*: the determinism contract makes byte-identity the
expectation, so the CLI exits non-zero (3) when a report is non-clean,
which is what makes the flag usable as a CI gate across intentional
model changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.driver import SweepResult

__all__ = ["CurveDrift", "DriftReport", "compare_result_to_dir", "compare_series"]


@dataclass
class CurveDrift:
    """Per-curve comparison summary."""

    label: str
    matched_points: int = 0
    drifted_points: int = 0
    max_abs_diff: float = 0.0
    max_rel_diff: float = 0.0
    worst_x: Optional[float] = None
    only_in_new: bool = False
    only_in_old: bool = False
    xs_changed: bool = False

    @property
    def clean(self) -> bool:
        return not (
            self.drifted_points or self.only_in_new or self.only_in_old
            or self.xs_changed
        )


@dataclass
class DriftReport:
    """Everything one ``--compare`` produced."""

    scenario: str
    old_path: Path
    curves: list[CurveDrift] = field(default_factory=list)
    missing_old: bool = False

    @property
    def has_drift(self) -> bool:
        return self.missing_old or any(not c.clean for c in self.curves)

    def format(self) -> str:
        """The human-readable per-point diff summary."""
        head = f"drift report: {self.scenario} vs {self.old_path}"
        if self.missing_old:
            return f"{head}\n  DRIFT: no stored result to compare against"
        lines = [head]
        for c in self.curves:
            if c.only_in_new:
                lines.append(f"  DRIFT {c.label!r}: curve absent from old result")
            elif c.only_in_old:
                lines.append(f"  DRIFT {c.label!r}: curve absent from new result")
            elif c.xs_changed:
                lines.append(f"  DRIFT {c.label!r}: grid points changed")
            elif c.drifted_points:
                lines.append(
                    f"  DRIFT {c.label!r}: {c.drifted_points}/{c.matched_points} "
                    f"points differ; worst at x={c.worst_x:g}: "
                    f"|Δ|={c.max_abs_diff:.6g} ({100 * c.max_rel_diff:.4g}%)"
                )
            else:
                lines.append(f"  ok    {c.label!r}: {c.matched_points} points identical")
        verdict = "DRIFT DETECTED" if self.has_drift else "no drift"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def compare_series(
    scenario: str,
    new_series: list[dict],
    old_series: list[dict],
    old_path: Path,
) -> DriftReport:
    """Diff two canonical series lists (``{label, xs, ys}`` dicts)."""
    report = DriftReport(scenario=scenario, old_path=old_path)
    old_by_label = {s["label"]: s for s in old_series}
    new_by_label = {s["label"]: s for s in new_series}
    for s in new_series:
        label = s["label"]
        drift = CurveDrift(label=label)
        report.curves.append(drift)
        old = old_by_label.get(label)
        if old is None:
            drift.only_in_new = True
            continue
        if list(old["xs"]) != list(s["xs"]):
            drift.xs_changed = True
            continue
        drift.matched_points = len(s["xs"])
        for x, y_new, y_old in zip(s["xs"], s["ys"], old["ys"]):
            if y_new == y_old:
                continue
            drift.drifted_points += 1
            diff = abs(y_new - y_old)
            rel = diff / abs(y_old) if y_old else float("inf")
            # NaN-safe anchoring (NaN values round-trip through the
            # JSON): the first drifted point must anchor the report or
            # format() would render a None, and a finite deviation
            # always displaces a NaN anchor — `>` alone would let an
            # early NaN lock the summary and hide the real worst point.
            cur = drift.max_abs_diff
            if drift.worst_x is None or diff > cur or (cur != cur and diff == diff):
                drift.max_abs_diff = diff
                drift.max_rel_diff = rel
                drift.worst_x = x
    for label in old_by_label:
        if label not in new_by_label:
            report.curves.append(CurveDrift(label=label, only_in_old=True))
    return report


def compare_result_to_dir(result: "SweepResult", old_dir: Path) -> DriftReport:
    """Diff a fresh :class:`SweepResult` against ``old_dir/<scenario>.json``
    (the exact file ``save_sweep`` writes)."""
    old_path = Path(old_dir) / f"{result.scenario}.json"
    if not old_path.exists():
        return DriftReport(
            scenario=result.scenario, old_path=old_path, missing_old=True
        )
    old = json.loads(old_path.read_text())
    new_series = [
        {"label": s.label, "xs": s.xs, "ys": s.ys} for s in result.series
    ]
    return compare_series(
        result.scenario, new_series, old.get("series", []), old_path
    )
