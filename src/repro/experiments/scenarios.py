"""Builtin scenarios: the paper's figures plus the extension studies.

Each figure from the evaluation (§IV) is one registered
:class:`~repro.experiments.scenario.Scenario` whose defaults reproduce
the paper's exact grid; the extension scenarios open the §V questions
(heterogeneous node mixes, fault injection, GPU offload, skewed split
assignments) on the same declarative surface. Point functions are
module-level so worker processes can resolve them by reference.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.raw import (
    FIG2_CONFIGS,
    FIG6_CONFIGS,
    raw_encryption_bandwidth,
    raw_pi_rates,
)
from repro.analysis.report import percentile
from repro.core.simexec import (
    SimulatedCluster,
    run_empty_job,
    run_encryption_job,
    run_pi_job,
    run_workload_mix,
)
from repro.experiments.registry import register
from repro.experiments.scenario import Scenario
from repro.hadoop.config import JobConf
from repro.hadoop.faults import ChurnPlan
from repro.perf.calibration import GB, Backend, PAPER_CALIBRATION

__all__ = [
    "FIGURE_SCENARIOS",
    "ELASTIC_SCENARIOS",
    "EXTENSION_SCENARIOS",
    "SCALE_SCENARIOS",
    "SCHED_SCENARIOS",
]

_CALIB = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Paper figures                                                                #
# --------------------------------------------------------------------------- #


def fig2_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Raw single-node AES bandwidth at one working-set size (Fig. 2)."""
    out = {}
    for backend in FIG2_CONFIGS:
        (series,) = raw_encryption_bandwidth(
            sizes_mb=[cfg["size_mb"]], configs=[backend]
        )
        out[series.label] = series.ys[0]
    return out


def fig4_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Proportional-dataset encryption at one node count (Fig. 4)."""
    n = cfg["nodes"]
    data = n * _CALIB.mappers_per_node * cfg["gb_per_mapper"] * GB
    out = {}
    for label, backend in (
        ("Java Mapper", Backend.JAVA_PPE),
        ("Cell BE Mapper", Backend.CELL_SPE_DIRECT),
    ):
        out[label] = run_encryption_job(n, data, backend, seed=cfg["seed"]).makespan_s
    return out


def fig5_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Fixed-dataset encryption at one node count (Fig. 5)."""
    n, data = cfg["nodes"], cfg["data_gb"] * GB
    seed = cfg["seed"]
    return {
        "Empty Mapper": run_empty_job(n, data, seed=seed).makespan_s,
        "Java Mapper": run_encryption_job(
            n, data, Backend.JAVA_PPE, seed=seed
        ).makespan_s,
        "Cell Mapper": run_encryption_job(
            n, data, Backend.CELL_SPE_DIRECT, seed=seed
        ).makespan_s,
    }


def fig6_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Raw single-node Pi sample rate at one problem size (Fig. 6)."""
    out = {}
    for backend in FIG6_CONFIGS:
        (series,) = raw_pi_rates(sample_counts=[cfg["samples"]], configs=[backend])
        out[series.label] = series.ys[0]
    return out


def fig7_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Distributed Pi at one sample count, fixed cluster (Fig. 7)."""
    n, c, seed = cfg["nodes"], cfg["samples"], cfg["seed"]
    return {
        "Java Mapper": run_pi_job(n, c, Backend.JAVA_PPE, seed=seed).makespan_s,
        "Cell BE Mapper": run_pi_job(
            n, c, Backend.CELL_SPE_DIRECT, seed=seed
        ).makespan_s,
    }


def fig8_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Distributed Pi at one node count, fixed samples (Fig. 8)."""
    n, c, seed = cfg["nodes"], cfg["samples"], cfg["seed"]
    return {
        "Java Mapper": run_pi_job(n, c, Backend.JAVA_PPE, seed=seed).makespan_s,
        "Cell BE Mapper": run_pi_job(
            n, c, Backend.CELL_SPE_DIRECT, seed=seed
        ).makespan_s,
        "Cell BE Mapper (10x)": run_pi_job(
            n, c * 10, Backend.CELL_SPE_DIRECT, seed=seed
        ).makespan_s,
    }


FIGURE_SCENARIOS = (
    register(Scenario(
        name="fig2",
        figure="fig2",
        title="Fig. 2",
        description="Raw node encryption bandwidth vs. working-set size; "
                    "no Hadoop involved (§IV-A).",
        run_point=fig2_point,
        grid={"size_mb": (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)},
        x="size_mb",
        curves=("Cell BE", "MapReduce Cell", "PPC", "Power 6"),
        xlabel="Size(MB)",
        ylabel="MB/s",
    )),
    register(Scenario(
        name="fig4",
        figure="fig4",
        title="Fig. 4: {gb_per_mapper:.0f} GB per mapper",
        description="Distributed encryption with the dataset growing "
                    "proportionally to the cluster (§IV-A).",
        run_point=fig4_point,
        grid={"nodes": (12, 24, 36, 48, 60)},
        x="nodes",
        curves=("Java Mapper", "Cell BE Mapper"),
        defaults={"gb_per_mapper": 1.0},
        xlabel="Nodes",
    )),
    register(Scenario(
        name="fig5",
        figure="fig5",
        title="Fig. 5: {data_gb:.0f} GB fixed",
        description="Distributed encryption of a fixed dataset as nodes "
                    "scale, with the EmptyMapper overhead probe (§IV-A).",
        run_point=fig5_point,
        grid={"nodes": (4, 8, 16, 32, 64)},
        x="nodes",
        curves=("Empty Mapper", "Java Mapper", "Cell Mapper"),
        defaults={"data_gb": 120.0},
        xlabel="Nodes",
    )),
    register(Scenario(
        name="fig6",
        figure="fig6",
        title="Fig. 6",
        description="Raw node Pi estimation rate vs. problem size; the "
                    "SPU-initialization crossover (§IV-B).",
        run_point=fig6_point,
        grid={"samples": (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)},
        x="samples",
        curves=("Cell BE", "PPC", "Power 6"),
        xlabel="Samples",
        ylabel="Samples/sec",
    )),
    register(Scenario(
        name="fig7",
        figure="fig7",
        title="Fig. 7: Pi on {nodes} nodes",
        description="Distributed Pi across sample counts on a fixed "
                    "cluster (§IV-B).",
        run_point=fig7_point,
        grid={"samples": (3e3, 3e5, 3e7, 3e9, 3e11, 3e12)},
        x="samples",
        curves=("Java Mapper", "Cell BE Mapper"),
        defaults={"nodes": 50},
        xlabel="Samples",
    )),
    register(Scenario(
        name="fig8",
        figure="fig8",
        title="Fig. 8: Pi of {samples:.0e} samples",
        description="Distributed Pi node scaling at a fixed sample count, "
                    "plus the 10x-samples curve (§IV-B).",
        run_point=fig8_point,
        grid={"nodes": (4, 8, 16, 32, 64)},
        x="nodes",
        curves=("Java Mapper", "Cell BE Mapper", "Cell BE Mapper (10x)"),
        defaults={"samples": 1e11},
        xlabel="Nodes",
    )),
)


# --------------------------------------------------------------------------- #
# Extension studies (§V questions)                                             #
# --------------------------------------------------------------------------- #


def hetero_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Encryption on a partially-accelerated cluster with Java fallback."""
    n, data, seed = cfg["nodes"], cfg["data_gb"] * GB, cfg["seed"]
    frac = cfg["accelerated_fraction"]
    return {
        "Cell (Java fallback)": run_encryption_job(
            n, data, Backend.CELL_SPE_DIRECT,
            seed=seed,
            accelerated_fraction=frac,
            fallback_backend=Backend.JAVA_PPE,
        ).makespan_s,
        "Java Mapper": run_encryption_job(
            n, data, Backend.JAVA_PPE, seed=seed
        ).makespan_s,
    }


def faults_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Pi with one straggler node, with and without speculation."""
    n, c, seed = cfg["nodes"], cfg["samples"], cfg["seed"]
    factor = cfg["slow_factor"]
    slow = {1: float(factor)} if factor > 1 else None
    out = {}
    for label, speculative in (("No speculation", False), ("Speculative", True)):
        out[label] = run_pi_job(
            n, c, Backend.CELL_SPE_DIRECT,
            seed=seed, slow_nodes=slow, speculative=speculative,
        ).makespan_s
    return out


def gpu_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Pi node scaling: Cell blades vs. GPU-equipped nodes (§I outlook)."""
    n, c, seed = cfg["nodes"], cfg["samples"], cfg["seed"]
    return {
        "Cell BE Mapper": run_pi_job(
            n, c, Backend.CELL_SPE_DIRECT, seed=seed
        ).makespan_s,
        "GPU Mapper": run_pi_job(
            n, c, Backend.GPU_TESLA,
            seed=seed, accelerated_fraction=0.0, gpu_fraction=1.0,
        ).makespan_s,
    }


def skew_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Fixed dataset split into more (smaller) map tasks than slots.

    splits_per_slot=1 is the paper's one-split-per-mapper setting; larger
    values trade per-task overhead against load-balance tail latency.
    """
    n, data, seed = cfg["nodes"], cfg["data_gb"] * GB, cfg["seed"]
    maps = n * _CALIB.mappers_per_node * cfg["splits_per_slot"]
    out = {}
    for label, backend in (
        ("Java Mapper", Backend.JAVA_PPE),
        ("Cell BE Mapper", Backend.CELL_SPE_DIRECT),
    ):
        out[label] = run_encryption_job(
            n, data, backend, num_map_tasks=maps, seed=seed
        ).makespan_s
    return out


# --------------------------------------------------------------------------- #
# Scheduling-policy studies (repro.sched)                                      #
# --------------------------------------------------------------------------- #

#: Curve label → repro.sched registry name, in declared curve order.
SCHED_POLICIES = (
    ("FIFO", "fifo"),
    ("Fair", "fair"),
    ("Locality-aware", "locality"),
    ("Accel-aware", "accel"),
)


def sched_compare_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """One multi-job workload under every placement policy.

    The workload mixes delivery-bound AES jobs with compute-bound
    Cell-targeted Pi jobs on a partially-accelerated cluster — the
    regime where placement decides completion time (the paper's core
    sensitivity, §IV/§V). Metric: mean job completion time.
    """
    out = {}
    for label, policy in SCHED_POLICIES:
        mix = run_workload_mix(
            cfg["nodes"],
            num_jobs=cfg["num_jobs"],
            scheduler=policy,
            stagger_s=cfg["stagger_s"],
            data_gb=cfg["data_gb"],
            samples=cfg["samples"],
            accelerated_fraction=cfg["accelerated_fraction"],
            seed=cfg["seed"],
        )
        out[label] = mix.mean_completion_s
    return out


def multijob_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """FIFO vs. fair sharing as the number of concurrent jobs grows.

    A homogeneous all-Cell cluster isolates the *sharing* discipline
    from accelerator affinity: both mean job completion time (what each
    user waits) and workload makespan (what the operator pays) per
    policy.
    """
    out = {}
    for label, policy in (("FIFO", "fifo"), ("Fair", "fair")):
        mix = run_workload_mix(
            cfg["nodes"],
            num_jobs=cfg["num_jobs"],
            scheduler=policy,
            stagger_s=cfg["stagger_s"],
            data_gb=cfg["data_gb"],
            samples=cfg["samples"],
            seed=cfg["seed"],
        )
        out[f"{label} (mean completion)"] = mix.mean_completion_s
        out[f"{label} (makespan)"] = mix.makespan_s
    return out


SCHED_SCENARIOS = (
    register(Scenario(
        name="sched_compare",
        title="Scheduler comparison: {num_jobs} jobs, "
              "{accelerated_fraction:.0%} accelerated",
        description="One mixed AES+Pi workload under every placement "
                    "policy on a partially-accelerated cluster; mean job "
                    "completion time per policy (repro.sched).",
        run_point=sched_compare_point,
        grid={"nodes": (2, 4, 8, 16)},
        x="nodes",
        curves=tuple(label for label, _ in SCHED_POLICIES),
        defaults={
            "num_jobs": 3,
            "stagger_s": 5.0,
            "data_gb": 2.0,
            "samples": 2e9,
            "accelerated_fraction": 0.5,
        },
        xlabel="Nodes",
        ylabel="Mean job completion (s)",
    )),
    register(Scenario(
        name="multijob",
        title="Multi-job scaling on {nodes} nodes: FIFO vs. fair",
        description="Concurrent-job count sweep under FIFO and weighted "
                    "fair sharing; per-user wait vs. operator makespan "
                    "(repro.sched).",
        run_point=multijob_point,
        grid={"num_jobs": (1, 2, 4, 6)},
        x="num_jobs",
        curves=(
            "FIFO (mean completion)",
            "Fair (mean completion)",
            "FIFO (makespan)",
            "Fair (makespan)",
        ),
        defaults={
            "nodes": 4,
            "stagger_s": 5.0,
            "data_gb": 2.0,
            "samples": 2e9,
        },
        xlabel="Concurrent jobs",
        ylabel="Time (s)",
    )),
)


# --------------------------------------------------------------------------- #
# Elastic-membership studies (churn, revocation, multi-tenant SLAs)             #
# --------------------------------------------------------------------------- #


def elastic_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """One mixed workload on a cluster that grows and shrinks mid-run.

    A blade joins at ``join_at`` and the youngest live blade is revoked
    at ``leave_at`` while the jobs execute. The static-membership fair
    run anchors the cost of churn; the preemptive policy shows whether
    reclamation helps once the slot pool is moving.
    """
    plan = ChurnPlan.elastic(
        joins=[cfg["join_at"]], leaves=[(cfg["leave_at"], None)]
    )
    out = {}
    for label, policy, churn in (
        ("Fair (static)", "fair", None),
        ("Fair (churn)", "fair", plan),
        ("Fair preempt (churn)", "fair_preempt", plan),
    ):
        mix = run_workload_mix(
            cfg["nodes"],
            num_jobs=cfg["num_jobs"],
            scheduler=policy,
            stagger_s=cfg["stagger_s"],
            data_gb=cfg["data_gb"],
            samples=cfg["samples"],
            seed=cfg["seed"],
            churn=churn,
        )
        out[label] = mix.mean_completion_s
    return out


def spot_storm_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Graceful degradation under a spot-revocation storm.

    ``revoked`` youngest blades are taken away in a window starting at
    ``at_s``; the two curves bound the operator's choices — ride out the
    loss versus win replacement capacity back ``replace_after_s`` later.
    ``revoked=0`` anchors both curves at the undisturbed makespan.
    """
    n = cfg["nodes"]
    victims = [n - i for i in range(cfg["revoked"])]
    out = {}
    for label, replace_after_s in (
        ("No replacement", None),
        ("Replaced", cfg["replace_after_s"]),
    ):
        plan = ChurnPlan.spot_storm(
            victims,
            at_time=cfg["at_s"],
            window_s=cfg["window_s"],
            replace_after_s=replace_after_s,
        )
        mix = run_workload_mix(
            n,
            num_jobs=cfg["num_jobs"],
            scheduler="fair",
            stagger_s=cfg["stagger_s"],
            data_gb=cfg["data_gb"],
            samples=cfg["samples"],
            seed=cfg["seed"],
            churn=plan,
        )
        out[label] = mix.makespan_s
    return out


#: (tenant, fair-share weight, submission wave) — bronze floods the
#: cluster first, gold arrives last into a fully-occupied slot pool:
#: the regime where grant-only fair sharing can only wait for tasks to
#: finish, and preemption is the difference for the p95 SLO.
SLA_TENANTS = (("gold", 4.0, 2), ("silver", 2.0, 1), ("bronze", 1.0, 0))


def sla_mix_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """Per-tenant p95 job latency with and without preemption.

    Three weighted tenants submit Pi jobs in adversarial order (lowest
    weight first). Metric per curve: the tenant's p95 submit-to-finish
    latency (``analysis.report.percentile``) under ``fair`` versus
    ``fair_preempt``.
    """
    n, seed = cfg["nodes"], cfg["seed"]
    maps = n * _CALIB.mappers_per_node
    out = {}
    for policy in ("fair", "fair_preempt"):
        sim = SimulatedCluster(n, seed=seed, scheduler=policy)
        confs: list[JobConf] = []
        arrivals: list[float] = []
        for tenant, weight, wave in SLA_TENANTS:
            for j in range(cfg["jobs_per_tenant"]):
                confs.append(JobConf(
                    name=f"{tenant}-{j}",
                    workload="pi",
                    backend=Backend.CELL_SPE_DIRECT,
                    fallback_backend=Backend.JAVA_PPE,
                    samples=cfg["samples"],
                    num_map_tasks=maps,
                    num_reduce_tasks=1,
                    weight=weight,
                ))
                # Each tenant submits as a burst: same-weight jobs split
                # slots by granting alone, so any preemption measured is
                # strictly cross-tenant reclamation.
                arrivals.append(wave * cfg["stagger_s"])
        results = sim.run_jobs(confs, arrivals=arrivals)
        per_tenant: dict[str, list[float]] = {t: [] for t, _, _ in SLA_TENANTS}
        for conf, res in zip(confs, results):
            per_tenant[conf.name.rsplit("-", 1)[0]].append(res.makespan_s)
        for tenant, _, _ in SLA_TENANTS:
            out[f"{tenant.capitalize()} p95 ({policy})"] = percentile(
                per_tenant[tenant], 95
            )
    return out


ELASTIC_SCENARIOS = (
    register(Scenario(
        name="elastic",
        title="Elastic membership: {num_jobs} jobs, join@{join_at:.0f}s "
              "leave@{leave_at:.0f}s",
        description="A mixed AES+Pi workload while a blade joins and the "
                    "youngest live blade is revoked mid-run; static fair "
                    "sharing vs. churn vs. churn with preemption "
                    "(repro.hadoop.faults.ChurnPlan).",
        run_point=elastic_point,
        grid={"nodes": (2, 4)},
        x="nodes",
        curves=("Fair (static)", "Fair (churn)", "Fair preempt (churn)"),
        defaults={
            "num_jobs": 3,
            "stagger_s": 5.0,
            "data_gb": 1.0,
            "samples": 1e9,
            "join_at": 20.0,
            "leave_at": 60.0,
        },
        xlabel="Nodes",
        ylabel="Mean job completion (s)",
    )),
    register(Scenario(
        name="spot_storm",
        title="Spot-revocation storm on {nodes} nodes "
              "(window {window_s:.0f}s)",
        description="K youngest blades revoked in a window mid-workload, "
                    "with and without replacement capacity arriving "
                    "later; workload makespan vs. storm size (graceful-"
                    "degradation envelope).",
        run_point=spot_storm_point,
        grid={"revoked": (0, 1, 2)},
        x="revoked",
        curves=("No replacement", "Replaced"),
        defaults={
            "nodes": 4,
            "num_jobs": 4,
            "stagger_s": 5.0,
            "data_gb": 2.0,
            "samples": 4e9,
            "at_s": 30.0,
            "window_s": 10.0,
            "replace_after_s": 15.0,
        },
        xlabel="Blades revoked",
        ylabel="Workload makespan (s)",
    )),
    register(Scenario(
        name="sla_mix",
        title="Multi-tenant SLA mix: {jobs_per_tenant} jobs/tenant",
        description="Gold/silver/bronze tenants (weights 4/2/1) submit in "
                    "adversarial order (bronze floods first); per-tenant "
                    "p95 job latency under fair vs. preemptive fair "
                    "sharing.",
        run_point=sla_mix_point,
        grid={"nodes": (2, 4)},
        x="nodes",
        curves=(
            "Gold p95 (fair)",
            "Silver p95 (fair)",
            "Bronze p95 (fair)",
            "Gold p95 (fair_preempt)",
            "Silver p95 (fair_preempt)",
            "Bronze p95 (fair_preempt)",
        ),
        defaults={
            "jobs_per_tenant": 2,
            "stagger_s": 8.0,
            "samples": 1e10,
        },
        xlabel="Nodes",
        ylabel="p95 job completion (s)",
    )),
)


# --------------------------------------------------------------------------- #
# Cluster-scale studies (event-thin model layer)                                #
# --------------------------------------------------------------------------- #


def scale_point(cfg: Mapping[str, Any]) -> dict[str, float]:
    """One weak-scaled multi-job mix per placement policy at one size.

    Per-node work is held constant as the cluster grows (each AES job
    reads ``gb_per_node`` GB per blade, each Pi job draws
    ``samples_per_node`` samples per blade), so the curves isolate the
    *coordination* cost — JobTracker serialization, placement quality —
    from plain problem-size effects. These node counts (256-1024) are
    far beyond the paper's 64-blade testbed; the event-thin cluster
    protocol is what keeps them simulable (docs/PERFORMANCE.md,
    "Model-layer performance").
    """
    nodes = cfg["nodes"]
    out = {}
    for label, policy in SCHED_POLICIES:
        mix = run_workload_mix(
            nodes,
            num_jobs=cfg["num_jobs"],
            scheduler=policy,
            stagger_s=cfg["stagger_s"],
            data_gb=cfg["gb_per_node"] * nodes,
            samples=cfg["samples_per_node"] * nodes,
            accelerated_fraction=cfg["accelerated_fraction"],
            seed=cfg["seed"],
        )
        out[label] = mix.mean_completion_s
    return out


SCALE_SCENARIOS = (
    register(Scenario(
        name="scale",
        title="Cluster scale: {num_jobs}-job mixes, weak scaling",
        description="Multi-job AES+Pi workloads on 256 through 4096 worker "
                    "blades under every placement policy, with per-node "
                    "work held constant; mean job completion time per "
                    "policy (the weak-scaling envelope the batch-served "
                    "protocol and vectorized cost models open).",
        run_point=scale_point,
        grid={"nodes": (256, 512, 1024, 2048, 4096)},
        x="nodes",
        curves=tuple(label for label, _ in SCHED_POLICIES),
        defaults={
            "num_jobs": 4,
            "stagger_s": 10.0,
            "gb_per_node": 0.25,
            "samples_per_node": 4e9,
            "accelerated_fraction": 0.5,
        },
        xlabel="Nodes",
        ylabel="Mean job completion (s)",
    )),
)


EXTENSION_SCENARIOS = (
    register(Scenario(
        name="hetero",
        title="Heterogeneous cluster: {data_gb:.0f} GB on {nodes} nodes",
        description="Only a fraction of nodes carry Cell accelerators; "
                    "accelerated tasks fall back to Java elsewhere (§V).",
        run_point=hetero_point,
        grid={"accelerated_fraction": (0.0, 0.25, 0.5, 0.75, 1.0)},
        x="accelerated_fraction",
        curves=("Cell (Java fallback)", "Java Mapper"),
        defaults={"nodes": 8, "data_gb": 8.0},
        xlabel="Accelerated fraction",
    )),
    register(Scenario(
        name="faults",
        title="Straggler injection: Pi of {samples:.0e} on {nodes} nodes",
        description="One node slowed by a factor; speculative re-execution "
                    "should bound the tail (§III-A fault machinery).",
        run_point=faults_point,
        grid={"slow_factor": (1, 2, 4, 8)},
        x="slow_factor",
        curves=("No speculation", "Speculative"),
        defaults={"nodes": 4, "samples": 4e9},
        xlabel="Straggler slowdown",
    )),
    register(Scenario(
        name="gpu",
        title="GPU offload: Pi of {samples:.0e} samples",
        description="The same offload interface bound to Tesla-class GPUs "
                    "instead of Cell SPEs (§I: other accelerators).",
        run_point=gpu_point,
        grid={"nodes": (2, 4, 8, 16)},
        x="nodes",
        curves=("Cell BE Mapper", "GPU Mapper"),
        defaults={"samples": 1e10},
        xlabel="Nodes",
    )),
    register(Scenario(
        name="skew",
        title="Split skew: {data_gb:.0f} GB on {nodes} nodes",
        description="Oversplitting a fixed dataset: per-task overhead vs. "
                    "load-balance tail (§III-A two-level partitioning).",
        run_point=skew_point,
        grid={"splits_per_slot": (1, 2, 4, 8)},
        x="splits_per_slot",
        curves=("Java Mapper", "Cell BE Mapper"),
        defaults={"nodes": 8, "data_gb": 16.0},
        xlabel="Splits per slot",
    )),
)
