"""The parallel sweep driver.

Fans a scenario's parameter grid out across ``multiprocessing`` workers
— every grid point is an isolated simulation in its own process with a
fresh :class:`~repro.sim.engine.Environment` — streams results back as
they finish, and reassembles them **in canonical grid order**, so the
merged series are byte-identical to a serial run regardless of worker
count, completion order, dispatch order, or caching. That is the
determinism contract the golden-series tests pin down (see
``docs/EXPERIMENTS.md``).

Workers receive only ``(scenario_name, point_index, cfg, reference,
model_reference, collect_metrics)``: the scenario is re-resolved from
the registry on the worker side, and the parent's engine/model modes
are re-applied explicitly so sweeps behave identically under both loops
and any start method. ``collect_metrics`` additionally flips the
telemetry layer (:mod:`repro.obs`) on around the point and ships the
registry snapshot back as a **non-canonical** extra on the point row —
telemetry never touches canonical bytes.

Sweep-scale machinery layered on top (all byte-neutral):

- **Persistent pools** — by default parallel sweeps run on a shared
  :class:`~repro.experiments.pool.SweepPool` that survives across
  sweeps, amortizing worker startup; pass ``pool=`` to control the
  lifetime explicitly.
- **Point-level caching** — pass ``point_cache=`` (see
  ``experiments/cache.py``) and only grid points whose per-point key
  misses are executed; the rest assemble from stored values.
- **Cost-aware dispatch** — pass ``timings=`` and pending points are
  dispatched longest-recorded-first (unknown points first), which kills
  straggler tails on wide pools without touching result order.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Union

import repro.modelmode as modelmode
import repro.obs as obs
import repro.sim.engine as engine
from repro.analysis.series import Series
from repro.experiments.pool import SweepPool, shared_pool
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario

__all__ = ["SweepResult", "build_result", "run_sweep"]


@dataclass
class SweepResult:
    """Everything one sweep produced, plus how it was produced.

    ``canonical_json`` covers only run-independent content (no worker
    count, no wall-clock, no per-point timing, no pool/cache metadata),
    which is what persistence writes and what the byte-identity
    guarantees apply to. Each ``points`` row always carries canonical
    ``params``/``values``; executed points add a non-canonical
    ``elapsed_s`` and cache-assembled points a non-canonical
    ``cached`` marker — both stripped by :meth:`canonical_dict`.
    """

    scenario: str
    title: str
    seed: int
    x: str
    xlabel: str
    ylabel: str
    grid: dict[str, list]
    defaults: dict[str, Any]
    points: list[dict[str, Any]] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    workers: int = 1
    elapsed_s: float = 0.0
    #: Multiprocessing start method the sweep actually used; None for
    #: serial/in-process runs. Never part of the canonical bytes.
    start_method: Optional[str] = None
    #: How many grid points actually ran vs. came from the point cache.
    executed_points: int = 0
    cached_points: int = 0

    def canonical_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "title": self.title,
            "seed": self.seed,
            "x": self.x,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "defaults": dict(self.defaults),
            # Strip run metadata (elapsed_s, cached) from the rows: the
            # canonical bytes must not depend on timing or cache state.
            "points": [
                {"params": p["params"], "values": p["values"]}
                for p in self.points
            ],
            "series": [
                {"label": s.label, "xs": s.xs, "ys": s.ys} for s in self.series
            ],
        }

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, no whitespace; float
        values keep full ``repr`` precision, so equal bytes mean equal
        floats bit for bit."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def pretty_json(self) -> str:
        """The human-readable form of :meth:`canonical_json` — the exact
        bytes persistence writes and the golden tests freeze (one
        definition, so the two cannot drift apart)."""
        return json.dumps(self.canonical_dict(), sort_keys=True, indent=2) + "\n"

    def sha256(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a result from a canonical dict — a stored cache entry
        or a served payload. Nothing ran locally, so the run metadata
        reflects that: zero workers, every point counted as assembled."""
        points = list(d["points"])
        return cls(
            scenario=d["scenario"],
            title=d["title"],
            seed=d["seed"],
            x=d["x"],
            xlabel=d["xlabel"],
            ylabel=d["ylabel"],
            grid={k: list(v) for k, v in d["grid"].items()},
            defaults=dict(d["defaults"]),
            points=points,
            series=[
                Series(label=s["label"], xs=list(s["xs"]), ys=list(s["ys"]))
                for s in d["series"]
            ],
            workers=0,
            elapsed_s=0.0,
            executed_points=0,
            cached_points=len(points),
        )


def _execute_point(
    sc_or_name: Union[str, Scenario], cfg: Mapping[str, Any], collect: bool
) -> tuple[dict[str, float], float, Optional[dict]]:
    """Run one grid point, optionally under telemetry collection.

    Returns ``(values, elapsed_s, metrics_snapshot_or_None)``. With
    ``collect`` the obs switch is flipped on and the registry reset for
    exactly this point, then restored — byte-transparent either way.
    """
    sc = get_scenario(sc_or_name) if isinstance(sc_or_name, str) else sc_or_name
    prev_obs = False
    if collect:
        prev_obs = obs.set_obs(True)
        obs.reset_registry()
    t0 = time.perf_counter()
    try:
        values = dict(sc.run_point(cfg))
        dt = time.perf_counter() - t0
        snap = obs.registry().snapshot() if collect else None
        return values, dt, snap
    finally:
        if collect:
            obs.set_obs(prev_obs)


def _run_point_task(task: tuple) -> tuple[int, dict[str, float], float, Optional[dict]]:
    """Worker-side: one grid point, resolved by scenario name. Returns
    ``(index, values, elapsed_s, metrics)`` so the parent can record
    per-point cost for straggler reporting and (when requested) the
    point's telemetry snapshot."""
    name, idx, cfg, reference, model_reference, collect = task
    prev = engine.set_reference_mode(reference)
    prev_model = modelmode.set_model_reference(model_reference)
    try:
        values, dt, snap = _execute_point(name, cfg, collect)
        return idx, values, dt, snap
    finally:
        engine.set_reference_mode(prev)
        modelmode.set_model_reference(prev_model)


def _order_tasks(tasks: list[tuple], estimate: Callable[[tuple], Optional[float]]) -> list[tuple]:
    """Longest-estimated-first dispatch order (stable, so points with no
    recorded cost keep canonical order, ahead of every known point —
    an unknown point might be the longest, and starting it late is the
    one mistake a wide pool cannot recover from). Pure reordering: the
    results still land in canonical slots, so bytes are unaffected."""
    return sorted(
        tasks,
        key=lambda t: -(e if (e := estimate(t)) is not None else float("inf")),
    )


def dispatch_tasks(
    sc: Scenario,
    tasks: list[tuple],
    workers: int,
    pool: Optional[SweepPool],
):
    """The one serial-vs-pooled execution split every sweep path uses
    (``run_sweep`` and ``shard.run_shard``). Returns ``(start_method,
    iterator of (index, values, elapsed_s, metrics))``: in-process
    execution for one worker or a single task (``start_method`` None),
    otherwise a persistent pool — the one passed in, or a shared pool
    capped at the task count so narrow grids never fork idle workers."""
    if (pool.workers if pool is not None else workers) == 1 or len(tasks) <= 1:
        def _serial():
            for _, i, cfg, _, _, collect in tasks:
                values, dt, snap = _execute_point(sc, cfg, collect)
                yield i, values, dt, snap
        return None, _serial()
    try:
        registered = get_scenario(sc.name)
    except KeyError:
        registered = None
    if registered is None or registered.run_point is not sc.run_point:
        raise ValueError(
            f"scenario {sc.name!r} must be registered to sweep with "
            f"workers > 1 (workers re-resolve it by name)"
        )
    if pool is None:
        pool = shared_pool(min(workers, len(tasks)))
    # run_tasks (not imap_unordered): survives a worker process killed
    # mid-point by respawning the pool and re-dispatching lost tasks.
    return pool.start_method, pool.run_tasks(_run_point_task, tasks)


def run_sweep(
    scenario: Union[str, Scenario],
    overrides: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    workers: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    pool: Optional[SweepPool] = None,
    point_cache=None,
    timings=None,
    collect_metrics: bool = False,
) -> SweepResult:
    """Run one scenario's full grid and aggregate deterministically.

    Parameters
    ----------
    scenario: registry name or a :class:`Scenario` instance (instances
        must be registered when running in parallel, so worker
        processes can resolve them by name).
    overrides: grid/default replacements (see
        :meth:`Scenario.with_overrides`).
    seed: root seed override, threaded into every point's ``cfg``.
    workers: process count; ``1`` runs serially in-process. Results are
        byte-identical across any worker count.
    progress: optional ``(done, total)`` callback, called as points
        finish (in completion order; cache hits count as already done).
    pool: an explicit :class:`SweepPool` to dispatch on (its worker
        count takes precedence over ``workers``; the pool is left open
        for reuse). Default: the session-shared persistent pool.
    point_cache: optional per-point cache
        (:class:`repro.experiments.cache.PointCache`); hits skip
        execution entirely, fresh results are stored back.
    timings: optional per-point cost store
        (:class:`repro.experiments.cache.TimingStore`); recorded costs
        order dispatch longest-first and fresh costs are recorded.
    collect_metrics: run every executed point under the telemetry layer
        (:mod:`repro.obs`) and attach each point's registry snapshot to
        its row as a non-canonical ``metrics`` entry (``repro sweep
        -v`` surfaces the aggregate). Canonical bytes are unchanged.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    sc = sc.with_overrides(overrides, seed=seed)
    points = sc.points()
    total = len(points)
    # Workers re-apply both the parent's engine mode and its model-
    # protocol mode, so sweeps behave identically under any start method.
    reference = engine.REFERENCE_MODE
    model_reference = modelmode.REFERENCE_MODE

    t0 = time.perf_counter()
    results: list[Optional[dict[str, float]]] = [None] * total
    point_elapsed: list[Optional[float]] = [None] * total
    cache_keys: list[Optional[str]] = [None] * total
    cached = 0
    if point_cache is not None:
        for i, cfg in enumerate(points):
            cache_keys[i], hit = point_cache.lookup(
                sc, cfg, reference=reference, model_reference=model_reference
            )
            if hit is not None:
                results[i] = hit
                cached += 1

    pending = [i for i in range(total) if results[i] is None]
    tasks = [
        (sc.name, i, points[i], reference, model_reference, collect_metrics)
        for i in pending
    ]
    cost_keys: dict[int, str] = {}
    if timings is not None:
        cost_keys = {
            i: timings.key(sc, points[i], reference=reference,
                           model_reference=model_reference)
            for i in pending
        }

    effective_workers = pool.workers if pool is not None else workers
    done = cached
    if progress and cached:
        progress(done, total)
    if timings is not None and effective_workers > 1:
        # Cost-aware ordering only changes *dispatch*; results still
        # land in canonical slots. Serial runs keep canonical order.
        tasks = _order_tasks(tasks, lambda t: timings.estimate(cost_keys[t[1]]))
    point_metrics: list[Optional[dict]] = [None] * total
    start_method, stream = dispatch_tasks(sc, tasks, workers, pool)
    for idx, values, dt, snap in stream:
        results[idx] = values
        point_elapsed[idx] = dt
        point_metrics[idx] = snap
        done += 1
        if progress:
            progress(done, total)

    if point_cache is not None:
        for i in pending:
            point_cache.store(sc.name, cache_keys[i], results[i])
    if timings is not None:
        for i in pending:
            timings.record(cost_keys[i], point_elapsed[i])
        timings.flush()
    elapsed = time.perf_counter() - t0

    return build_result(
        sc,
        results,
        point_elapsed,
        workers=effective_workers,
        elapsed_s=elapsed,
        start_method=start_method,
        executed_points=len(pending),
        cached_points=cached,
        point_metrics=point_metrics if collect_metrics else None,
    )


def build_result(
    sc: Scenario,
    results: list,
    point_elapsed: list,
    *,
    workers: int,
    elapsed_s: float,
    start_method: Optional[str] = None,
    executed_points: int = 0,
    cached_points: int = 0,
    point_metrics: Optional[list] = None,
) -> SweepResult:
    """Assemble per-point values into a :class:`SweepResult`.

    The one definition of how canonical rows and series come together —
    shared by :func:`run_sweep` and the serving layer
    (:mod:`repro.serve`), so served payloads are byte-identical to
    offline sweeps by construction, not by parallel maintenance.
    ``results`` holds one value dict per canonical grid point; a row
    whose ``point_elapsed`` entry is None is marked cache-assembled.
    ``point_metrics`` (when given) attaches each point's telemetry
    snapshot as a non-canonical ``metrics`` entry on its row —
    :meth:`SweepResult.canonical_dict` strips it like every other bit
    of run metadata.
    """
    series = sc.assemble(results)  # raises if any point went missing
    point_rows = []
    for i, (cfg, values) in enumerate(zip(sc.points(), results)):
        row: dict[str, Any] = {
            "params": {k: v for k, v in cfg.items() if k != "seed"},
            "values": values,
        }
        if point_elapsed[i] is not None:
            row["elapsed_s"] = round(point_elapsed[i], 6)
        else:
            row["cached"] = True
        if point_metrics is not None and point_metrics[i] is not None:
            row["metrics"] = point_metrics[i]
        point_rows.append(row)
    return SweepResult(
        scenario=sc.name,
        title=sc.format_title(),
        seed=sc.seed,
        x=sc.x,
        xlabel=sc.xlabel,
        ylabel=sc.ylabel,
        grid={k: list(v) for k, v in sc.grid.items()},
        defaults=dict(sc.defaults),
        points=point_rows,
        series=series,
        workers=workers,
        elapsed_s=elapsed_s,
        start_method=start_method,
        executed_points=executed_points,
        cached_points=cached_points,
    )
