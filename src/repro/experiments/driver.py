"""The parallel sweep driver.

Fans a scenario's parameter grid out across ``multiprocessing`` workers
— every grid point is an isolated simulation in its own process with a
fresh :class:`~repro.sim.engine.Environment` — streams results back as
they finish, and reassembles them **in canonical grid order**, so the
merged series are byte-identical to a serial run regardless of worker
count or completion order. That is the determinism contract the
golden-series tests pin down (see ``docs/EXPERIMENTS.md``).

Workers receive only ``(scenario_name, point_index, cfg, reference)``:
the scenario is re-resolved from the registry on the worker side, and
the parent's engine mode (fast vs. reference) is re-applied explicitly
so sweeps behave identically under both loops and any start method.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Union

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.analysis.series import Series
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Everything one sweep produced, plus how it was produced.

    ``canonical_json`` covers only run-independent content (no worker
    count, no wall-clock), which is what persistence writes and what the
    byte-identity guarantees apply to.
    """

    scenario: str
    title: str
    seed: int
    x: str
    xlabel: str
    ylabel: str
    grid: dict[str, list]
    defaults: dict[str, Any]
    points: list[dict[str, Any]] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    workers: int = 1
    elapsed_s: float = 0.0

    def canonical_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "title": self.title,
            "seed": self.seed,
            "x": self.x,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "defaults": dict(self.defaults),
            "points": self.points,
            "series": [
                {"label": s.label, "xs": s.xs, "ys": s.ys} for s in self.series
            ],
        }

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, no whitespace; float
        values keep full ``repr`` precision, so equal bytes mean equal
        floats bit for bit."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def pretty_json(self) -> str:
        """The human-readable form of :meth:`canonical_json` — the exact
        bytes persistence writes and the golden tests freeze (one
        definition, so the two cannot drift apart)."""
        return json.dumps(self.canonical_dict(), sort_keys=True, indent=2) + "\n"

    def sha256(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


def _run_point_task(task: tuple) -> tuple[int, dict[str, float]]:
    """Worker-side: one grid point, resolved by scenario name."""
    name, idx, cfg, reference, model_reference = task
    prev = engine.set_reference_mode(reference)
    prev_model = modelmode.set_model_reference(model_reference)
    try:
        scenario = get_scenario(name)
        return idx, dict(scenario.run_point(cfg))
    finally:
        engine.set_reference_mode(prev)
        modelmode.set_model_reference(prev_model)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the registry so test-registered
    scenarios sweep too); fall back to spawn where fork is unavailable
    (spawn re-imports, so only builtin scenarios resolve there)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    scenario: Union[str, Scenario],
    overrides: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    workers: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SweepResult:
    """Run one scenario's full grid and aggregate deterministically.

    Parameters
    ----------
    scenario: registry name or a :class:`Scenario` instance (instances
        must be registered when ``workers > 1``, so worker processes can
        resolve them by name).
    overrides: grid/default replacements (see
        :meth:`Scenario.with_overrides`).
    seed: root seed override, threaded into every point's ``cfg``.
    workers: process count; ``1`` runs serially in-process. Results are
        byte-identical across any worker count.
    progress: optional ``(done, total)`` callback, called as points
        finish (in completion order).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    sc = sc.with_overrides(overrides, seed=seed)
    points = sc.points()
    # Workers re-apply both the parent's engine mode and its model-
    # protocol mode, so sweeps behave identically under any start method.
    reference = engine.REFERENCE_MODE
    model_reference = modelmode.REFERENCE_MODE
    tasks = [(sc.name, i, cfg, reference, model_reference) for i, cfg in enumerate(points)]

    t0 = time.perf_counter()
    results: list[Optional[dict[str, float]]] = [None] * len(points)
    if workers == 1 or len(points) == 1:
        # In-process: call the scenario directly (no registry round trip,
        # so unregistered Scenario instances work serially).
        for i, cfg in enumerate(points):
            results[i] = dict(sc.run_point(cfg))
            if progress:
                progress(i + 1, len(points))
    else:
        try:
            registered = get_scenario(sc.name)
        except KeyError:
            registered = None
        if registered is None or registered.run_point is not sc.run_point:
            raise ValueError(
                f"scenario {sc.name!r} must be registered to sweep with "
                f"workers > 1 (workers re-resolve it by name)"
            )
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(points))) as pool:
            done = 0
            for idx, values in pool.imap_unordered(_run_point_task, tasks,
                                                   chunksize=1):
                results[idx] = values
                done += 1
                if progress:
                    progress(done, len(tasks))
    elapsed = time.perf_counter() - t0

    series = sc.assemble(results)  # raises if any point went missing
    point_rows = [
        {"params": {k: v for k, v in cfg.items() if k != "seed"},
         "values": values}
        for cfg, values in zip(points, results)
    ]
    return SweepResult(
        scenario=sc.name,
        title=sc.format_title(),
        seed=sc.seed,
        x=sc.x,
        xlabel=sc.xlabel,
        ylabel=sc.ylabel,
        grid={k: list(v) for k, v in sc.grid.items()},
        defaults=dict(sc.defaults),
        points=point_rows,
        series=series,
        workers=workers,
        elapsed_s=elapsed,
    )
