"""The NameNode: namespace, placement, and replication management.

"The master process (NameNode) manages the global name space and controls
the operations on files ... HDFS can decide to change the blocks location
in order to favour local accesses" (§III-A). The paper ran "1 JobTracker
and 2 Namenodes ... on top of a Power6 JS22 blade" (§IV-A); metadata
operations are therefore charged a small RPC latency against the master.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from repro.hdfs.blocks import Block, BlockMap, FileMeta

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.datanode import DataNode
    from repro.sim.engine import Environment
    from repro.sim.rng import RandomStreams

__all__ = ["NameNode", "HDFSError"]

RPC_LATENCY_S = 0.001
"""Metadata RPC round-trip to the NameNode (GigE + handler)."""


class HDFSError(RuntimeError):
    """Namespace or placement failure."""


class NameNode:
    """Metadata master.

    Parameters
    ----------
    env: simulation environment.
    block_size: default file block size (paper: 64 MB).
    replication: default replica count (paper: 1).
    rng: random streams for placement tie-breaking.
    """

    def __init__(
        self,
        env: "Environment",
        block_size: int,
        replication: int = 1,
        rng: Optional["RandomStreams"] = None,
    ):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.env = env
        self.block_size = block_size
        self.replication = replication
        self.rng = rng
        self._namespace: dict[str, FileMeta] = {}
        self._datanodes: dict[int, "DataNode"] = {}
        self.block_map = BlockMap()
        self._next_block_id = 0

    # -- cluster membership ----------------------------------------------------
    def register_datanode(self, datanode: "DataNode") -> None:
        if datanode.node_id in self._datanodes:
            raise HDFSError(f"datanode {datanode.node_id} already registered")
        self._datanodes[datanode.node_id] = datanode

    def datanode(self, node_id: int) -> "DataNode":
        try:
            return self._datanodes[node_id]
        except KeyError:
            raise HDFSError(f"no datanode on node {node_id}") from None

    @property
    def datanode_ids(self) -> list[int]:
        return sorted(self._datanodes)

    def handle_datanode_failure(self, node_id: int) -> list[Block]:
        """Drop a dead DataNode's replicas; returns now-degraded blocks.

        With replication 1 (the paper's setting) the affected blocks are
        *lost*; the JobTracker layer decides whether tasks needing them
        must fail or can be re-ingested.
        """
        self._datanodes.pop(node_id, None)
        return self.block_map.remove_node(node_id)

    # -- namespace ----------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._namespace

    def file_meta(self, path: str) -> FileMeta:
        try:
            return self._namespace[path]
        except KeyError:
            raise HDFSError(f"no such file: {path}") from None

    def delete(self, path: str) -> None:
        meta = self._namespace.pop(path, None)
        if meta is None:
            raise HDFSError(f"no such file: {path}")
        for block in meta.blocks:
            for node_id in list(block.locations):
                dn = self._datanodes.get(node_id)
                if dn is not None:
                    dn.drop_block(block.block_id)

    def list_files(self) -> list[str]:
        return sorted(self._namespace)

    # -- placement ----------------------------------------------------------------
    def _choose_targets(self, preferred: Optional[int], count: int, index: int) -> list[int]:
        """Pick ``count`` distinct DataNodes for one block's replicas.

        First replica goes to the preferred (writer-local) node when it
        hosts a DataNode — the HDFS write-path rule; otherwise placement
        round-robins by block index with a seeded rotation so ingested
        files spread evenly, which is what a real multi-writer ingest
        converges to.
        """
        ids = self.datanode_ids
        if not ids:
            raise HDFSError("no datanodes registered")
        if count > len(ids):
            raise HDFSError(f"replication {count} exceeds datanode count {len(ids)}")
        targets: list[int] = []
        if preferred is not None and preferred in self._datanodes:
            targets.append(preferred)
        rotation = 0
        if self.rng is not None:
            rotation = int(self.rng.stream("hdfs-placement").integers(0, len(ids)))
        i = (index + rotation) % len(ids)
        while len(targets) < count:
            cand = ids[i % len(ids)]
            if cand not in targets:
                targets.append(cand)
            i += 1
        return targets

    def allocate_file(
        self,
        path: str,
        size: int,
        preferred_node: Optional[int] = None,
        replication: Optional[int] = None,
        block_size: Optional[int] = None,
        placement: str = "roundrobin",
    ) -> FileMeta:
        """Create namespace entry + block allocations for a new file.

        Pure metadata (no simulated time); the client charges transfer
        costs. Raises if the path exists.

        ``placement`` selects the first-replica policy:

        - ``"roundrobin"`` — block *i* rotates across DataNodes (what a
          single external writer produces).
        - ``"contiguous"`` — contiguous runs of blocks land on the same
          DataNode, as if each node generated and locally wrote its own
          shard of the dataset. This is how the paper's 120 GB working
          set sat in HDFS: the measured DataNode→TaskTracker traffic
          went "using the loopback interface" (§IV-A), i.e. reads were
          node-local.
        """
        if self.exists(path):
            raise HDFSError(f"file exists: {path}")
        if size < 0:
            raise ValueError("size must be non-negative")
        if placement not in ("roundrobin", "contiguous"):
            raise ValueError(f"unknown placement policy {placement!r}")
        bs = block_size or self.block_size
        repl = replication or self.replication
        meta = FileMeta(path=path, size=size, block_size=bs, replication=repl)
        nblocks = -(-size // bs) if size else 0
        ids = self.datanode_ids
        remaining = size
        index = 0
        while remaining > 0:
            bsize = min(bs, remaining)
            block = Block(self._next_block_id, path, index, bsize)
            self._next_block_id += 1
            if placement == "contiguous" and ids:
                home = ids[index * len(ids) // nblocks]
                targets = self._choose_targets(home, repl, index)
            else:
                targets = self._choose_targets(preferred_node, repl, index)
            for node_id in targets:
                self.block_map.add(block, node_id)
                self._datanodes[node_id].store_block(block)
            meta.blocks.append(block)
            remaining -= bsize
            index += 1
        self._namespace[path] = meta
        return meta

    def locate(self, path: str, offset: int = 0, length: Optional[int] = None) -> list[Block]:
        """Blocks (with locations) overlapping a byte range."""
        meta = self.file_meta(path)
        if length is None:
            length = meta.size - offset
        return meta.blocks_for_range(offset, length)

    def rpc(self) -> Generator:
        """Process: charge one metadata RPC round trip."""
        yield self.env.pooled_timeout(RPC_LATENCY_S)
