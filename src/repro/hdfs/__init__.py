"""HDFS model: NameNode, DataNodes, blocks, client.

Implements the paper's storage substrate (§III-A): a master/slave file
system where "file blocks are distributed across the local disks of the
nodes and can be replicated"; the NameNode "manages the global name
space", DataNodes serve block reads from their local disk, and block
locations feed the JobTracker's locality-aware scheduling.

The experiments use 64 MB blocks and replication 1 (§IV-A). Blocks may
optionally carry real payload bytes so functional integration tests can
verify end-to-end data integrity through split/record reassembly.
"""

from repro.hdfs.blocks import Block, BlockMap, FileMeta
from repro.hdfs.namenode import NameNode, HDFSError
from repro.hdfs.datanode import DataNode
from repro.hdfs.client import HDFSClient
from repro.hdfs.replication import ReplicationManager

__all__ = [
    "Block",
    "BlockMap",
    "DataNode",
    "FileMeta",
    "HDFSClient",
    "HDFSError",
    "NameNode",
    "ReplicationManager",
]
