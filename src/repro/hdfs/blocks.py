"""Block and file metadata structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Block", "FileMeta", "BlockMap"]


@dataclass
class Block:
    """One HDFS block.

    Attributes
    ----------
    block_id: globally unique id.
    path: owning file.
    index: position within the file.
    size: bytes in this block (last block may be short).
    locations: DataNode node-ids currently holding a replica.
    """

    block_id: int
    path: str
    index: int
    size: int
    locations: list[int] = field(default_factory=list)

    @property
    def offset(self) -> int:
        """Byte offset of this block within its file.

        Valid because all non-final blocks share the file's block size;
        computed lazily by :class:`FileMeta`.
        """
        raise AttributeError("use FileMeta.block_offset(index)")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Block {self.block_id} {self.path}[{self.index}] {self.size}B @{self.locations}>"


@dataclass
class FileMeta:
    """Namespace entry for one file."""

    path: str
    size: int
    block_size: int
    blocks: list[Block] = field(default_factory=list)
    replication: int = 1

    def block_offset(self, index: int) -> int:
        return index * self.block_size

    def blocks_for_range(self, offset: int, length: int) -> list[Block]:
        """Blocks overlapping [offset, offset+length)."""
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be non-negative")
        if length == 0:
            return []
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        return self.blocks[first : last + 1]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


class BlockMap:
    """Reverse index: node id → blocks resident on that node."""

    def __init__(self) -> None:
        self._by_node: dict[int, set[int]] = {}
        self._blocks: dict[int, Block] = {}

    def add(self, block: Block, node_id: int) -> None:
        self._blocks[block.block_id] = block
        self._by_node.setdefault(node_id, set()).add(block.block_id)
        if node_id not in block.locations:
            block.locations.append(node_id)

    def remove_node(self, node_id: int) -> list[Block]:
        """Drop all replicas on a failed node; returns affected blocks."""
        affected = []
        for bid in self._by_node.pop(node_id, set()):
            block = self._blocks[bid]
            if node_id in block.locations:
                block.locations.remove(node_id)
            affected.append(block)
        return affected

    def blocks_on(self, node_id: int) -> list[Block]:
        return [self._blocks[b] for b in self._by_node.get(node_id, ())]

    def block(self, block_id: int) -> Optional[Block]:
        return self._blocks.get(block_id)

    def __len__(self) -> int:
        return len(self._blocks)
