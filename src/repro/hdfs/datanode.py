"""DataNode: block storage and the block-serving path.

"Each slave process (DataNode) implements the operations on those blocks
stored in its local disk, following the NameNode indications" (§III-A).
A read crosses the DataNode's disk, then either the node's loopback
interface (reader on the same blade — the common, locality-scheduled
case the paper measured) or the cluster network (remote reader).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.resources import Resource
from repro.hdfs.blocks import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Network
    from repro.cluster.node import Node

__all__ = ["DataNode"]


class DataNode:
    """Block server bound to one cluster node.

    Parameters
    ----------
    node: the hosting blade (provides disk + loopback).
    network: cluster interconnect for remote readers.
    max_streams: concurrent block-serving streams (DataNode xceiver
        limit; Hadoop 0.19 defaulted to a small number).
    """

    def __init__(self, node: "Node", network: "Network", max_streams: int = 8):
        self.node = node
        self.env = node.env
        self.network = network
        self._streams = Resource(self.env, capacity=max_streams)
        self._blocks: dict[int, Block] = {}
        self._payloads: dict[int, bytes] = {}
        self.bytes_served = 0.0
        self.reads_local = 0
        self.reads_remote = 0

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # -- storage -----------------------------------------------------------------
    def store_block(self, block: Block, payload: Optional[bytes] = None) -> None:
        """Accept a replica (metadata; payload optional, for functional tests)."""
        self._blocks[block.block_id] = block
        if payload is not None:
            if len(payload) != block.size:
                raise ValueError(
                    f"payload size {len(payload)} != block size {block.size}"
                )
            self._payloads[block.block_id] = payload

    def drop_block(self, block_id: int) -> None:
        self._blocks.pop(block_id, None)
        self._payloads.pop(block_id, None)

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def payload(self, block_id: int) -> Optional[bytes]:
        return self._payloads.get(block_id)

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    # -- serving -----------------------------------------------------------------
    def serve_block(self, block: Block, dst: "Node", length: Optional[int] = None) -> Generator:
        """Process: stream ``block`` (or its first ``length`` bytes) to ``dst``.

        Returns the payload bytes when the block carries one, else None.

        The hot serving chain — xceiver slot, disk read, loopback/NIC
        transfer — is the per-record path the paper measured, so the
        common case (a free stream slot) claims the slot synchronously;
        the disk and network stages then run as single pooled events when
        their channels are idle. The stages stay individually contended:
        collapsing disk+network into one composite event would hide the
        mid-transfer arrival of other readers (see docs/PERFORMANCE.md).
        """
        if block.block_id not in self._blocks:
            raise KeyError(f"datanode {self.node_id} does not hold block {block.block_id}")
        nbytes = block.size if length is None else min(length, block.size)
        streams = self._streams
        claim = streams.try_claim()
        req = None
        try:
            if claim is None:
                req = streams.request()
                yield req
            yield from self.node.disk.read(nbytes)
            yield from self.network.transfer(self.node, dst, nbytes)
        finally:
            if claim is not None:
                streams.release_claim(claim)
            elif req is not None:
                streams.release(req)
        self.bytes_served += nbytes
        if dst.node_id == self.node_id:
            self.reads_local += 1
        else:
            self.reads_remote += 1
        data = self._payloads.get(block.block_id)
        if data is not None and length is not None:
            data = data[:length]
        return data
