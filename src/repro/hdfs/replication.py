"""Replication manager: restoring under-replicated blocks.

"File blocks are distributed across the local disks of the nodes and
can be replicated, in order to implement fault tolerance" (§III-A).
Real HDFS re-replicates when a DataNode dies; the paper's experiments
ran replication 1 (nothing to restore), but the fault-tolerance tests
and the dynamic-cluster extension need the full mechanism: a periodic
scan that copies under-replicated blocks from a surviving replica to a
fresh target.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.hdfs.blocks import Block
from repro.hdfs.namenode import NameNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Process

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Periodic under-replication repair bound to one NameNode."""

    def __init__(self, namenode: NameNode, scan_interval_s: float = 10.0):
        if scan_interval_s <= 0:
            raise ValueError("scan_interval_s must be positive")
        self.namenode = namenode
        self.env = namenode.env
        self.scan_interval_s = scan_interval_s
        self.blocks_repaired = 0
        self.blocks_lost = 0
        self._proc: Optional["Process"] = None

    def start(self) -> "Process":
        """Begin the periodic scan loop."""
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._scan_loop(), name="replication-manager")
        return self._proc

    def under_replicated(self) -> list[Block]:
        """Blocks with fewer live replicas than their file requests."""
        out = []
        for path in self.namenode.list_files():
            meta = self.namenode.file_meta(path)
            for block in meta.blocks:
                if 0 < len(block.locations) < meta.replication:
                    out.append(block)
        return out

    def lost_blocks(self) -> list[Block]:
        """Blocks with no live replica at all (unrecoverable)."""
        out = []
        for path in self.namenode.list_files():
            for block in self.namenode.file_meta(path).blocks:
                if not block.locations:
                    out.append(block)
        return out

    def _choose_target(self, block: Block) -> Optional[int]:
        """A live DataNode not already holding the block, fewest blocks
        first (the balancer-ish placement real HDFS approximates)."""
        candidates = [
            nid for nid in self.namenode.datanode_ids if nid not in block.locations
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda nid: (self.namenode.datanode(nid).block_count, nid))

    def repair_block(self, block: Block) -> Generator:
        """Process: copy one block from a surviving replica to a target."""
        if not block.locations:
            self.blocks_lost += 1
            return False
        target_id = self._choose_target(block)
        if target_id is None:
            return False
        src = self.namenode.datanode(block.locations[0])
        dst = self.namenode.datanode(target_id)
        payload = src.payload(block.block_id)
        # Stream: source disk read -> network -> target disk write.
        yield from src.node.disk.read(block.size)
        yield from src.network.transfer(src.node, dst.node, block.size)
        yield from dst.node.disk.write(block.size)
        dst.store_block(block, payload)
        self.namenode.block_map.add(block, target_id)
        self.blocks_repaired += 1
        return True

    def repair_all(self) -> Generator:
        """Process: repair every currently under-replicated block."""
        for block in self.under_replicated():
            yield from self.repair_block(block)

    def _scan_loop(self) -> Generator:
        while True:
            yield self.env.pooled_timeout(self.scan_interval_s)
            yield from self.repair_all()
