"""HDFS client: the file-level API used by jobs and the harness.

Writes charge disk + pipeline transfer per replica; reads pick the best
replica for the reading node (local if any — "it tries to minimize the
number of remote blocks accesses", §III-A) and stream blocks in order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.hdfs.blocks import Block, FileMeta
from repro.hdfs.namenode import HDFSError, NameNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["HDFSClient"]


class HDFSClient:
    """File operations against one NameNode."""

    def __init__(self, namenode: NameNode):
        self.namenode = namenode
        self.env = namenode.env

    # -- write path --------------------------------------------------------------
    def write_file(
        self,
        path: str,
        size: int,
        writer: "Node",
        payload: Optional[bytes] = None,
        replication: Optional[int] = None,
    ) -> Generator:
        """Process: create ``path`` of ``size`` bytes from ``writer``.

        Charges, per block and per replica: network transfer from the
        writer to the target DataNode plus the target's disk write. Real
        HDFS pipelines replicas; with the paper's replication=1 the two
        models coincide.
        """
        yield from self.namenode.rpc()
        meta = self.namenode.allocate_file(
            path, size, preferred_node=writer.node_id, replication=replication
        )
        offset = 0
        for block in meta.blocks:
            chunk = payload[offset : offset + block.size] if payload is not None else None
            for node_id in block.locations:
                dn = self.namenode.datanode(node_id)
                yield from dn.network.transfer(writer, dn.node, block.size)
                yield from dn.node.disk.write(block.size)
                dn.store_block(block, chunk)
            offset += block.size
        return meta

    def ingest_file(
        self,
        path: str,
        size: int,
        payload: Optional[bytes] = None,
        replication: Optional[int] = None,
        placement: str = "contiguous",
    ) -> FileMeta:
        """Instantly materialize a pre-loaded dataset (no simulated time).

        The paper's experiments start from data already resident in HDFS
        (the 120 GB working set was loaded before timing began); this is
        the harness call that sets that precondition. The default
        ``contiguous`` placement reflects a dataset generated in place
        (each blade wrote its shard locally), which is what makes the
        paper's record delivery a loopback path.
        """
        meta = self.namenode.allocate_file(
            path, size, preferred_node=None, replication=replication, placement=placement
        )
        if payload is not None:
            offset = 0
            for block in meta.blocks:
                chunk = payload[offset : offset + block.size]
                for node_id in block.locations:
                    self.namenode.datanode(node_id).store_block(block, chunk)
                offset += block.size
        return meta

    # -- read path ----------------------------------------------------------------
    def choose_replica(self, block: Block, reader: "Node") -> int:
        """Best replica for ``reader``: local wins, else first live one."""
        if not block.locations:
            raise HDFSError(f"block {block.block_id} has no live replicas")
        if reader.node_id in block.locations:
            return reader.node_id
        return block.locations[0]

    def read_block(self, block: Block, reader: "Node", length: Optional[int] = None) -> Generator:
        """Process: read one block (possibly truncated) to ``reader``.

        Returns the payload bytes when stored, else None.
        """
        yield from self.namenode.rpc()
        node_id = self.choose_replica(block, reader)
        dn = self.namenode.datanode(node_id)
        data = yield from dn.serve_block(block, reader, length)
        return data

    def read_file(self, path: str, reader: "Node") -> Generator:
        """Process: stream a whole file; returns concatenated payload or None."""
        meta = self.namenode.file_meta(path)
        parts: list[bytes] = []
        have_payload = True
        for block in meta.blocks:
            data = yield from self.read_block(block, reader)
            if data is None:
                have_payload = False
            else:
                parts.append(data)
        return b"".join(parts) if have_payload and parts else None
