"""Synthetic data generators.

The paper's working sets are synthetic (a "very large working set" to
encrypt; no input at all for Pi). These helpers produce seeded,
reproducible equivalents for the functional tests and examples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_bytes", "synthetic_text"]

_WORDS = (
    "map reduce split record block node cluster cell spu ppe dma hadoop "
    "jobtracker tasktracker namenode datanode encrypt sample estimate "
    "bandwidth latency loopback heartbeat accelerator kernel runtime"
).split()


def random_bytes(n: int, seed: int = 0) -> bytes:
    """``n`` reproducible pseudo-random bytes."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def synthetic_text(n_words: int, seed: int = 0, line_words: int = 12) -> str:
    """A reproducible corpus of domain words, one line per ``line_words``."""
    if n_words < 0:
        raise ValueError("n_words must be non-negative")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(_WORDS), size=n_words)
    lines = []
    for start in range(0, n_words, line_words):
        lines.append(" ".join(_WORDS[i] for i in picks[start : start + line_words]))
    return "\n".join(lines)
