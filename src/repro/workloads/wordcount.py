"""Word count: the canonical MapReduce example.

Used by the quickstart example and the local-executor tests; it is the
"hello world" the MapReduce literature (including the paper's §II-A
description of map()/reduce()) assumes.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

__all__ = ["tokenize", "wordcount_map", "wordcount_reduce"]

_WORD_RE = re.compile(r"[a-z0-9']+")


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens."""
    return _WORD_RE.findall(text.lower())


def wordcount_map(key: object, value: str, emit: Callable[[str, int], None]) -> None:
    """map(): emit (word, 1) per token of the input line/chunk."""
    for word in tokenize(value):
        emit(word, 1)


def wordcount_reduce(key: str, values: Iterable[int], emit: Callable[[str, int], None]) -> None:
    """reduce(): sum the counts for one word."""
    emit(key, sum(values))
