"""Monte-Carlo Pi estimation.

The paper's CPU-intensive workload: "a montecarlo program that estimates
the value of Pi ... The precision of Pi is proportional to the number of
samples calculated ... produces an expected error of O(1/sqrt(N))"
(§IV, §IV-B). Implemented as a chunked, vectorized sampler so a mapper
can compute its share independently (the distributed experiments give
each of the 100 mappers ``N/100`` samples and reduce the counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import pi as MATH_PI, sqrt

import numpy as np

__all__ = ["PiEstimate", "estimate_pi", "pi_error_bound", "sample_batch"]

DEFAULT_CHUNK = 1 << 20
"""Samples per vectorized batch (bounds the working set like an SPU
chunk bounds its local-store buffer)."""


@dataclass(frozen=True)
class PiEstimate:
    """Result of a Monte-Carlo run."""

    inside: int
    total: int

    @property
    def value(self) -> float:
        if self.total == 0:
            raise ValueError("no samples")
        return 4.0 * self.inside / self.total

    @property
    def error(self) -> float:
        """Absolute error against math.pi."""
        return abs(self.value - MATH_PI)

    def merge(self, other: "PiEstimate") -> "PiEstimate":
        """Combine two partial counts — the job's reduce() function."""
        return PiEstimate(self.inside + other.inside, self.total + other.total)


def sample_batch(n: int, rng: np.random.Generator) -> int:
    """Count how many of ``n`` uniform points fall inside the quarter
    circle — one vectorized 'SPU batch'."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0
    x = rng.random(n)
    y = rng.random(n)
    return int(np.count_nonzero(x * x + y * y <= 1.0))


def estimate_pi(samples: int, seed: int = 0, chunk: int = DEFAULT_CHUNK) -> PiEstimate:
    """Estimate Pi from ``samples`` points, in bounded-memory chunks."""
    if samples < 0:
        raise ValueError("samples must be non-negative")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    rng = np.random.default_rng(seed)
    inside = 0
    remaining = samples
    while remaining > 0:
        n = min(chunk, remaining)
        inside += sample_batch(n, rng)
        remaining -= n
    return PiEstimate(inside=inside, total=samples)


def pi_error_bound(samples: int, confidence_sigmas: float = 3.0) -> float:
    """The O(1/sqrt(N)) error bound the paper quotes.

    The per-sample indicator has variance p(1-p) with p = pi/4; the
    estimate 4*mean has standard error 4*sqrt(p(1-p)/N).
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    p = MATH_PI / 4.0
    return confidence_sigmas * 4.0 * sqrt(p * (1.0 - p) / samples)
