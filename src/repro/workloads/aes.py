"""AES-128, NumPy-vectorized across blocks.

The paper's data-intensive workload is "a 128 bits key AES encryption
algorithm ... The Cell accelerated AES encryption code is based on
[Siewior's SPU implementation]" (§IV-A). This is a complete from-scratch
implementation — S-box construction from GF(2^8) arithmetic, key
schedule, ECB and CTR modes — written the way an SPU kernel is: the
cipher state of *many* blocks advances in lockstep through vectorized
table lookups and XORs, one round at a time. Validated against FIPS-197
Appendix B and NIST AESAVS vectors in the test suite.

This is the *functional* kernel: it proves the reproduction encrypts
correctly. Throughput in the simulation comes from the calibrated models
(Python table lookups are obviously not 700 MB/s).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["AES128", "aes_ctr_keystream", "SBOX", "INV_SBOX"]

BLOCK_BYTES = 16
NROUNDS = 10
NK = 4  # 128-bit key words


# --------------------------------------------------------------------------- #
# GF(2^8) arithmetic and table construction                                   #
# --------------------------------------------------------------------------- #
def _xtime(a: np.ndarray) -> np.ndarray:
    """Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1 (vectorized)."""
    a = a.astype(np.uint16)
    out = (a << 1) ^ np.where(a & 0x80, 0x1B, 0)
    return (out & 0xFF).astype(np.uint8)


def _gf_mul(a: int, b: int) -> int:
    """Scalar GF(2^8) multiply (table construction only)."""
    p = 0
    for _ in range(8):
        if b & 1:
            p ^= a
        hi = a & 0x80
        a = (a << 1) & 0xFF
        if hi:
            a ^= 0x1B
        b >>= 1
    return p


def _build_sbox() -> tuple[np.ndarray, np.ndarray]:
    """Construct the S-box from first principles: multiplicative inverse
    in GF(2^8) followed by the affine transform (FIPS-197 §5.1.1)."""
    # Multiplicative inverses via brute force (runs once at import).
    inv = [0] * 256
    for a in range(1, 256):
        for b in range(1, 256):
            if _gf_mul(a, b) == 1:
                inv[a] = b
                break
    sbox = np.zeros(256, dtype=np.uint8)
    for a in range(256):
        x = inv[a]
        y = 0
        for bit in range(8):
            y |= (
                ((x >> bit) & 1)
                ^ ((x >> ((bit + 4) % 8)) & 1)
                ^ ((x >> ((bit + 5) % 8)) & 1)
                ^ ((x >> ((bit + 6) % 8)) & 1)
                ^ ((x >> ((bit + 7) % 8)) & 1)
                ^ ((0x63 >> bit) & 1)
            ) << bit
        sbox[a] = y
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

RCON = np.array([0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36], dtype=np.uint8)


# --------------------------------------------------------------------------- #
# Cipher                                                                       #
# --------------------------------------------------------------------------- #
class AES128:
    """AES with a 128-bit key; block-parallel ECB/CTR.

    Parameters
    ----------
    key: exactly 16 bytes.
    """

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self.key = bytes(key)
        self.round_keys = self._expand_key(np.frombuffer(key, dtype=np.uint8))

    # -- key schedule ---------------------------------------------------------
    @staticmethod
    def _expand_key(key: np.ndarray) -> np.ndarray:
        """FIPS-197 §5.2: 44 words → 11 round keys of 16 bytes.

        Returns shape (11, 16) with round key bytes in input order.
        """
        words = [key[4 * i : 4 * i + 4].copy() for i in range(NK)]
        for i in range(NK, 4 * (NROUNDS + 1)):
            temp = words[i - 1].copy()
            if i % NK == 0:
                temp = np.roll(temp, -1)           # RotWord
                temp = SBOX[temp]                  # SubWord
                temp[0] ^= RCON[i // NK - 1]       # Rcon
            words.append(words[i - NK] ^ temp)
        flat = np.concatenate(words)
        return flat.reshape(NROUNDS + 1, 16)

    # -- round primitives (vectorized over the block axis) ----------------------
    @staticmethod
    def _to_state(blocks: np.ndarray) -> np.ndarray:
        """(N, 16) input-order bytes → (N, 4, 4) state, column-major:
        state[:, r, c] = input[:, r + 4c] (FIPS-197 §3.4)."""
        return blocks.reshape(-1, 4, 4).transpose(0, 2, 1)

    @staticmethod
    def _from_state(state: np.ndarray) -> np.ndarray:
        return state.transpose(0, 2, 1).reshape(-1, 16)

    @staticmethod
    def _shift_rows(state: np.ndarray) -> np.ndarray:
        out = state.copy()
        for r in range(1, 4):
            out[:, r, :] = np.roll(state[:, r, :], -r, axis=1)
        return out

    @staticmethod
    def _inv_shift_rows(state: np.ndarray) -> np.ndarray:
        out = state.copy()
        for r in range(1, 4):
            out[:, r, :] = np.roll(state[:, r, :], r, axis=1)
        return out

    @staticmethod
    def _mix_columns(state: np.ndarray) -> np.ndarray:
        a0, a1, a2, a3 = state[:, 0], state[:, 1], state[:, 2], state[:, 3]
        x0, x1, x2, x3 = _xtime(a0), _xtime(a1), _xtime(a2), _xtime(a3)
        out = np.empty_like(state)
        out[:, 0] = x0 ^ (x1 ^ a1) ^ a2 ^ a3
        out[:, 1] = a0 ^ x1 ^ (x2 ^ a2) ^ a3
        out[:, 2] = a0 ^ a1 ^ x2 ^ (x3 ^ a3)
        out[:, 3] = (x0 ^ a0) ^ a1 ^ a2 ^ x3
        return out

    @staticmethod
    def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
        # Multiply columns by the inverse matrix {0e,0b,0d,09} using
        # xtime chains: 9=8+1, b=8+2+1, d=8+4+1, e=8+4+2.
        a = state
        x1 = np.empty_like(a)
        for r in range(4):
            x1[:, r] = _xtime(a[:, r])
        x2 = np.empty_like(a)
        for r in range(4):
            x2[:, r] = _xtime(x1[:, r])
        x4 = np.empty_like(a)
        for r in range(4):
            x4[:, r] = _xtime(x2[:, r])
        m9 = x4 ^ a
        mB = x4 ^ x1 ^ a
        mD = x4 ^ x2 ^ a
        mE = x4 ^ x2 ^ x1
        out = np.empty_like(a)
        out[:, 0] = mE[:, 0] ^ mB[:, 1] ^ mD[:, 2] ^ m9[:, 3]
        out[:, 1] = m9[:, 0] ^ mE[:, 1] ^ mB[:, 2] ^ mD[:, 3]
        out[:, 2] = mD[:, 0] ^ m9[:, 1] ^ mE[:, 2] ^ mB[:, 3]
        out[:, 3] = mB[:, 0] ^ mD[:, 1] ^ m9[:, 2] ^ mE[:, 3]
        return out

    def _round_key_state(self, rnd: int) -> np.ndarray:
        return self._to_state(self.round_keys[rnd].reshape(1, 16))[0]

    # -- block operations ---------------------------------------------------------
    def encrypt_blocks(self, data: bytes | np.ndarray) -> np.ndarray:
        """ECB-encrypt a multiple-of-16-byte buffer; returns uint8 array."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        if arr.size % BLOCK_BYTES != 0:
            raise ValueError(f"ECB input must be a multiple of 16 bytes, got {arr.size}")
        if arr.size == 0:
            return np.empty(0, dtype=np.uint8)
        state = self._to_state(arr.reshape(-1, 16))
        state = state ^ self._round_key_state(0)
        for rnd in range(1, NROUNDS):
            state = SBOX[state]
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = state ^ self._round_key_state(rnd)
        state = SBOX[state]
        state = self._shift_rows(state)
        state = state ^ self._round_key_state(NROUNDS)
        return self._from_state(state).reshape(-1)

    def decrypt_blocks(self, data: bytes | np.ndarray) -> np.ndarray:
        """ECB-decrypt a multiple-of-16-byte buffer; returns uint8 array."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        if arr.size % BLOCK_BYTES != 0:
            raise ValueError(f"ECB input must be a multiple of 16 bytes, got {arr.size}")
        if arr.size == 0:
            return np.empty(0, dtype=np.uint8)
        state = self._to_state(arr.reshape(-1, 16))
        state = state ^ self._round_key_state(NROUNDS)
        for rnd in range(NROUNDS - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = INV_SBOX[state]
            state = state ^ self._round_key_state(rnd)
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = INV_SBOX[state]
        state = state ^ self._round_key_state(0)
        return self._from_state(state).reshape(-1)

    # -- CTR mode --------------------------------------------------------------------
    def ctr_crypt(self, data: bytes | np.ndarray, nonce: bytes, initial_counter: int = 0) -> np.ndarray:
        """CTR encrypt/decrypt (self-inverse); handles any length.

        ``nonce`` is 8 bytes; the counter occupies the trailing 8 bytes
        big-endian, starting at ``initial_counter`` — which lets each
        4 KB SPU chunk be processed independently at its own counter
        offset, the property the Cell kernel depends on for parallelism.
        """
        if len(nonce) != 8:
            raise ValueError("nonce must be 8 bytes")
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        if arr.size == 0:
            return np.empty(0, dtype=np.uint8)
        nblocks = -(-arr.size // BLOCK_BYTES)
        stream = aes_ctr_keystream(self, nonce, initial_counter, nblocks)
        return arr ^ stream[: arr.size]


def aes_ctr_keystream(cipher: AES128, nonce: bytes, initial_counter: int, nblocks: int) -> np.ndarray:
    """Generate ``nblocks`` blocks of CTR keystream as a flat uint8 array."""
    if nblocks < 0:
        raise ValueError("nblocks must be non-negative")
    if nblocks == 0:
        return np.empty(0, dtype=np.uint8)
    counters = np.arange(initial_counter, initial_counter + nblocks, dtype=np.uint64)
    blocks = np.zeros((nblocks, 16), dtype=np.uint8)
    blocks[:, :8] = np.frombuffer(nonce, dtype=np.uint8)
    # Big-endian counter in bytes 8..15.
    for i in range(8):
        blocks[:, 8 + i] = ((counters >> np.uint64(8 * (7 - i))) & np.uint64(0xFF)).astype(np.uint8)
    return cipher.encrypt_blocks(blocks.reshape(-1))
