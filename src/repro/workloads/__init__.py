"""Functional workload kernels.

The paper's two applications, implemented for real:

- :mod:`repro.workloads.aes` — a complete AES-128 (key schedule, ECB,
  CTR), NumPy-vectorized across blocks the way the Cell SPU kernel
  vectorizes across its 4 KB chunks; validated against FIPS-197.
- :mod:`repro.workloads.pi` — the Monte-Carlo Pi estimator with the
  paper's O(1/sqrt(N)) error behaviour.

Plus the substrate workloads the evaluation discusses or the extensions
need: Terasort-style sorting (§IV-A's rate analysis) and word count
(quickstart example).
"""

from repro.workloads.aes import AES128, aes_ctr_keystream
from repro.workloads.pi import PiEstimate, estimate_pi, pi_error_bound, sample_batch
from repro.workloads.sort import make_sort_records, sort_records, sample_partitioner
from repro.workloads.wordcount import tokenize, wordcount_map, wordcount_reduce
from repro.workloads.generators import random_bytes, synthetic_text

__all__ = [
    "AES128",
    "PiEstimate",
    "aes_ctr_keystream",
    "estimate_pi",
    "make_sort_records",
    "pi_error_bound",
    "random_bytes",
    "sample_batch",
    "sample_partitioner",
    "sort_records",
    "synthetic_text",
    "tokenize",
    "wordcount_map",
    "wordcount_reduce",
]
