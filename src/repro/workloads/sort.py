"""Terasort-style sorting workload.

§IV-A closes with the Terasort rate analysis: the winning 2009 entry
sorted "5.5MB/s [per node] and each core does it at 0.6MB/s, what seems
to point out that the effective data bandwidth at which data can be sent
to the mappers was also the limiting factor". This module provides the
functional pieces (record generation, sampling partitioner, sort, merge)
used by the E7 bench and the local executor.

Records follow the gensort layout: 10-byte key + 90-byte value = 100
bytes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KEY_BYTES",
    "RECORD_BYTES",
    "make_sort_records",
    "merge_sorted_runs",
    "records_are_sorted",
    "sample_partitioner",
    "partition_records",
    "sort_records",
]

KEY_BYTES = 10
VALUE_BYTES = 90
RECORD_BYTES = KEY_BYTES + VALUE_BYTES


def make_sort_records(n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` gensort-style records as an (n, 100) uint8 array."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    recs = rng.integers(0, 256, size=(n, RECORD_BYTES), dtype=np.uint8)
    return recs


def _key_view(records: np.ndarray) -> np.ndarray:
    """Keys as a lexicographically comparable void view."""
    keys = np.ascontiguousarray(records[:, :KEY_BYTES])
    return keys.view([("k", f"S{KEY_BYTES}")]).reshape(-1)["k"]


def sort_records(records: np.ndarray) -> np.ndarray:
    """Stable sort by the 10-byte key."""
    if records.ndim != 2 or records.shape[1] != RECORD_BYTES:
        raise ValueError(f"expected (n, {RECORD_BYTES}) records")
    order = np.argsort(_key_view(records), kind="stable")
    return records[order]


def records_are_sorted(records: np.ndarray) -> bool:
    keys = _key_view(records)
    return bool(np.all(keys[:-1] <= keys[1:]))


def sample_partitioner(records: np.ndarray, num_partitions: int, sample: int = 1024, seed: int = 0) -> np.ndarray:
    """Choose partition split keys by sampling, like TeraSort's sampler.

    Returns (num_partitions - 1) boundary keys as an (k, 10) uint8 array.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if num_partitions == 1:
        return np.empty((0, KEY_BYTES), dtype=np.uint8)
    rng = np.random.default_rng(seed)
    n = len(records)
    take = min(sample, n)
    idx = rng.choice(n, size=take, replace=False) if take < n else np.arange(n)
    sampled = sort_records(records[idx])
    bounds = []
    for p in range(1, num_partitions):
        bounds.append(sampled[(p * take) // num_partitions, :KEY_BYTES])
    return np.stack(bounds)


def partition_records(records: np.ndarray, boundaries: np.ndarray) -> list[np.ndarray]:
    """Split records into len(boundaries)+1 partitions by key range."""
    nparts = len(boundaries) + 1
    if nparts == 1:
        return [records]
    keys = _key_view(records)
    bkeys = _key_view(np.hstack([boundaries, np.zeros((len(boundaries), VALUE_BYTES), dtype=np.uint8)]))
    part_of = np.searchsorted(bkeys, keys, side="right")
    return [records[part_of == p] for p in range(nparts)]


def merge_sorted_runs(runs: list[np.ndarray]) -> np.ndarray:
    """Merge pre-sorted runs into one sorted array.

    Concatenate + stable sort is O(n log n) rather than O(n log k), but
    functional equivalence is what the tests need.
    """
    runs = [r for r in runs if len(r)]
    if not runs:
        return np.empty((0, RECORD_BYTES), dtype=np.uint8)
    return sort_records(np.vstack(runs))
