"""Prometheus text exposition (version 0.0.4) for a MetricsRegistry.

Only the wire format lives here; nothing in this module mutates
metrics. Timeseries instruments are a simulation-side concept with no
Prometheus equivalent and are skipped (their last value would be
misleading scraped out of virtual time).
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _num(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _render_simple(metric: Counter | Gauge, lines: list[str]) -> None:
    for key, value in sorted(metric._values.items()):  # noqa: SLF001
        lines.append(f"{metric.name}{_labels(metric.label_names, key)} {_num(value)}")


def _render_histogram(metric: Histogram, lines: list[str]) -> None:
    for key, state in sorted(metric._states.items()):  # noqa: SLF001
        cumulative = 0
        for bound, count in zip(metric.buckets, state.counts):
            cumulative += count
            le = _labels(metric.label_names, key, f'le="{_num(bound)}"')
            lines.append(f"{metric.name}_bucket{le} {cumulative}")
        le = _labels(metric.label_names, key, 'le="+Inf"')
        lines.append(f"{metric.name}_bucket{le} {state.count}")
        plain = _labels(metric.label_names, key)
        lines.append(f"{metric.name}_sum{plain} {_num(state.sum)}")
        lines.append(f"{metric.name}_count{plain} {state.count}")


def render(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition, families sorted by name."""
    lines: list[str] = []
    for metric in registry.metrics():
        if not isinstance(metric, (Counter, Gauge, Histogram)):
            continue
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            _render_histogram(metric, lines)
        else:
            _render_simple(metric, lines)
    return "\n".join(lines) + "\n" if lines else ""
