"""Metric primitives and the process-wide registry.

Four instrument kinds, deliberately small:

- :class:`Counter` — monotonically increasing totals.
- :class:`Gauge` — last-write-wins point-in-time values.
- :class:`Histogram` — bucketed distributions (sum/count preserved),
  rendered cumulatively only at Prometheus exposition time.
- :class:`Timeseries` — (virtual_time, value) samples recorded inside a
  simulation, for the ``repro metrics`` virtual-time series report.

All instruments support optional labels declared at registration time;
``inc``/``set``/``observe`` take the label values as keyword arguments.
Unlabeled instruments pay no per-call label handling.

Mutation is guarded by a per-instrument lock so the serve daemon can
update metrics from its connection threads; single-threaded simulation
code pays one uncontended acquire per update, and only when telemetry
is enabled at all (disabled runs never reach these objects).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timeseries",
]

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the classic Prometheus client defaults).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, Any]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Metric:
    """Shared registration surface: name, help text, label schema."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if not labels and not self.label_names:
            return ()
        return _label_key(self.label_names, labels)


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "values": {",".join(k): v for k, v in sorted(self._values.items())},
        }


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "values": {",".join(k): v for k, v in sorted(self._values.items())},
        }


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # final slot: > last bound
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate histogram bucket bounds")
        self.buckets = bounds
        self._states: dict[tuple[str, ...], _HistogramState] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.buckets))
            state.counts[bisect_left(self.buckets, value)] += 1
            state.sum += value
            state.count += 1

    def state(self, **labels: Any) -> Optional[_HistogramState]:
        return self._states.get(self._key(labels))

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "buckets": list(self.buckets),
            "values": {
                ",".join(k): {
                    "counts": list(s.counts),
                    "sum": s.sum,
                    "count": s.count,
                }
                for k, s in sorted(self._states.items())
            },
        }


class Timeseries(_Metric):
    """(virtual_time, value) samples with a drop-newest cap.

    The cap bounds memory on very long simulations; ``dropped`` counts
    samples discarded once full (reported, never silent).
    """

    kind = "timeseries"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_points: int = 20000,
    ) -> None:
        super().__init__(name, help, labels)
        self.max_points = max_points
        self._points: dict[tuple[str, ...], list[tuple[float, float]]] = {}
        self.dropped = 0

    def observe(self, t: float, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            points = self._points.get(key)
            if points is None:
                points = self._points[key] = []
            if len(points) >= self.max_points:
                self.dropped += 1
                return
            points.append((float(t), float(value)))

    def points(self, **labels: Any) -> list[tuple[float, float]]:
        return list(self._points.get(self._key(labels), ()))

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "dropped": self.dropped,
            "values": {
                ",".join(k): [[t, v] for t, v in pts]
                for k, pts in sorted(self._points.items())
            },
        }


class MetricsRegistry:
    """Name → instrument map with get-or-create registration.

    Re-registering a name returns the existing instrument; registering
    the same name as a different kind raises (a config bug worth
    failing loudly on). ``snapshot()`` is a plain JSON-able dict —
    the interchange format between sweep workers and the driver, the
    ``repro metrics`` report, and the tests.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help=help, labels=labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help=help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, labels=labels, buckets=buckets
        )

    def timeseries(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        max_points: int = 20000,
    ) -> Timeseries:
        return self._get_or_create(
            Timeseries, name, help=help, labels=labels, max_points=max_points
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict[str, Any]:
        return {m.name: m.snapshot() for m in self.metrics()}

    def reset(self) -> None:
        """Drop every registered instrument.

        Callers that cached instrument handles must re-fetch them —
        the convention everywhere in the simulator is to fetch handles
        at object construction, so a reset between simulations is safe.
        """
        with self._lock:
            self._metrics.clear()
