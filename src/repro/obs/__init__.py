"""Process-wide telemetry: the ``repro.obs`` observability layer.

Mirrors the dual-reference-mode discipline (`repro.sim.engine`
reference mode, `repro.modelmode`): one module-level switch, sampled by
instrumented objects **at construction time**, with a
``set_obs(enabled) -> previous`` toggle for scoped flips. Hot paths
pre-sample the switch into a handle-or-``None`` attribute so the
disabled path costs one ``is None`` check — usually zero, because the
instrumented object is never even attached.

The contract that makes telemetry safe to leave wired in everywhere:
**observation never perturbs canonical bytes.** Samplers only read
simulation state and yield plain ``env.timeout`` delays (never pooled
timeouts, which could be shared with model events); counters are
flushed from already-maintained model tallies after ``env.run``
returns. Golden series and sweep sha256 parity hold byte-identical
with everything enabled — ``tests/obs/test_transparency.py`` pins it
in all four engine x model mode combinations.

Environment:

- ``REPRO_OBS=1`` enables metric collection process-wide.

Trace collection is orthogonal: install a
:class:`repro.obs.traceexport.TraceCollector` via
``set_trace_collector`` and every subsequently built cluster records
into an enabled, ring-capped tracer owned by the collector (the
``repro trace`` command does exactly this).
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timeseries",
    "enabled",
    "registry",
    "reset_registry",
    "set_obs",
    "set_trace_collector",
    "trace_collector",
]

#: Process-wide metrics switch; sampled at object construction, like
#: ``modelmode.REFERENCE_MODE``.
ENABLED = os.environ.get("REPRO_OBS", "0") not in ("", "0")

_REGISTRY = MetricsRegistry()

#: Optional TraceCollector consulted by ``Cluster.__init__``.
_COLLECTOR: Optional[Any] = None


def enabled() -> bool:
    """Is metric collection on for objects constructed now?"""
    return ENABLED


def set_obs(on: bool) -> bool:
    """Flip metric collection; returns the previous setting.

    Pair with a ``finally`` restore, exactly like
    ``engine.set_reference_mode`` / ``modelmode.set_model_reference``.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = bool(on)
    return previous


def registry() -> MetricsRegistry:
    """The process-wide registry (always importable; cheap when idle)."""
    return _REGISTRY


def reset_registry() -> None:
    """Clear the process registry (between sweep points in workers)."""
    _REGISTRY.reset()


def set_trace_collector(collector: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with ``None``) the cluster trace collector.

    Returns the previous collector for ``finally`` restoration.
    """
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = collector
    return previous


def trace_collector() -> Optional[Any]:
    return _COLLECTOR
