"""Virtual-time sampling and post-run metric flushing for simulations.

Two complementary mechanisms, both guaranteed not to perturb canonical
bytes:

- :func:`attach_sampler` spawns a **passive** process inside the
  simulation that wakes on plain ``env.timeout`` delays (never pooled
  timeouts, which could be shared with model events), reads cluster
  state, and records (virtual_time, value) samples into
  :class:`~repro.obs.metrics.Timeseries` instruments. It consumes no
  resources, uses no randomness, and schedules nothing but its own
  tick — event times of every model process are unchanged, only their
  tie-break sequence numbers shift uniformly.

- :func:`publish_cluster_metrics` runs *after* ``env.run`` returns and
  delta-flushes tallies the model already maintains (decision
  counters, job counters, HDFS datanode counters, engine event count,
  tracer drops) into registry counters — zero additional work on any
  hot path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simexec import SimulatedCluster

__all__ = ["attach_sampler", "publish_cluster_metrics"]


def attach_sampler(
    sim: "SimulatedCluster",
    reg: MetricsRegistry,
    interval_s: float | None = None,
) -> None:
    """Attach the virtual-time sampler process to a started cluster."""
    env = sim.env
    if interval_s is None:
        interval_s = float(sim.jobtracker.calib.heartbeat_interval_s)
    if interval_s <= 0:
        interval_s = 1.0

    ts_map_util = reg.timeseries(
        "sim_vt_map_slot_utilization",
        "Fraction of map slots busy, sampled each heartbeat interval",
    )
    ts_reduce_util = reg.timeseries(
        "sim_vt_reduce_slot_utilization",
        "Fraction of reduce slots busy, sampled each heartbeat interval",
    )
    ts_pending = reg.timeseries(
        "sim_vt_pending_tasks",
        "Pending (unassigned) map+reduce tasks across all jobs",
    )
    ts_parks = reg.timeseries(
        "sim_vt_heartbeat_parks",
        "Cumulative parked heartbeats across trackers (event-thin mode)",
    )
    jt = sim.jobtracker

    def _sampler():
        while True:
            now = env.now
            trackers = sim.trackers
            map_slots = used_maps = reduce_slots = used_reduces = 0
            parks = 0
            for tt in trackers:
                map_slots += tt.map_slots
                used_maps += tt._used_map_slots  # noqa: SLF001
                reduce_slots += tt.reduce_slots
                used_reduces += tt._used_reduce_slots  # noqa: SLF001
                parks += tt.heartbeat_parks
            ts_map_util.observe(now, used_maps / map_slots if map_slots else 0.0)
            ts_reduce_util.observe(
                now, used_reduces / reduce_slots if reduce_slots else 0.0
            )
            pending = sum(len(v) for v in jt._pending_maps.values())  # noqa: SLF001
            pending += sum(len(v) for v in jt._pending_reduces.values())  # noqa: SLF001
            ts_pending.observe(now, pending)
            ts_parks.observe(now, parks)
            yield env.timeout(interval_s)

    env.process(_sampler(), name="obs-sampler")


def _flush_delta(
    reg: MetricsRegistry,
    last: dict[str, float],
    key: str,
    metric_name: str,
    help: str,
    current: float,
    **labels: Any,
) -> None:
    delta = current - last.get(key, 0.0)
    last[key] = current
    if delta > 0:
        label_names = tuple(sorted(labels))
        reg.counter(metric_name, help, labels=label_names).inc(delta, **labels)


def publish_cluster_metrics(
    sim: "SimulatedCluster",
    reg: MetricsRegistry,
    last: dict[str, float],
) -> None:
    """Delta-flush model-maintained tallies into the registry.

    ``last`` is the caller-owned high-water-mark dict (one per
    SimulatedCluster) so repeated flushes — e.g. one per job in a
    multi-job workload — never double count.
    """
    jt = sim.jobtracker

    for key, value in jt.decision_counters().items():
        if key == "heartbeat_batch_hist" and isinstance(value, Mapping):
            for size, passes in value.items():
                _flush_delta(
                    reg, last, f"bh:{size}",
                    "sim_heartbeat_batch_passes_total",
                    "JobTracker service passes by number of drained heartbeats",
                    float(passes), size=str(size),
                )
            continue
        if isinstance(value, (int, float)):
            _flush_delta(
                reg, last, f"dc:{key}", f"sim_{key}_total",
                f"Model decision counter {key!r}", float(value),
            )

    for job in jt._jobs.values():  # noqa: SLF001
        for cname, cval in job.counters.items():
            key = f"jc:{job.job_id}:{cname}"
            _flush_delta(
                reg, last, key, f"sim_{cname}_total",
                f"Job counter {cname!r} summed across jobs", float(cval),
            )

    for dn in sim.namenode._datanodes.values():  # noqa: SLF001
        nid = dn.node_id
        _flush_delta(
            reg, last, f"dn:{nid}:bytes", "sim_hdfs_bytes_served_total",
            "Bytes served by all datanodes", float(dn.bytes_served),
        )
        _flush_delta(
            reg, last, f"dn:{nid}:local", "sim_hdfs_reads_local_total",
            "Node-local block reads", float(dn.reads_local),
        )
        _flush_delta(
            reg, last, f"dn:{nid}:remote", "sim_hdfs_reads_remote_total",
            "Remote (network) block reads", float(dn.reads_remote),
        )

    _flush_delta(
        reg, last, "env:events", "sim_events_total",
        "Engine events processed", float(sim.env.processed_events),
    )
    tracer = sim.cluster.tracer
    _flush_delta(
        reg, last, "trace:dropped", "sim_trace_dropped_total",
        "Trace records/spans evicted by the ring-buffer cap",
        float(tracer.dropped),
    )
