"""Chrome-trace / Perfetto JSON export for simulation tracers.

:class:`TraceCollector` is the bridge between a scenario run and the
exporter: install one via :func:`repro.obs.set_trace_collector` and
every cluster built afterwards records into an enabled, ring-capped
:class:`~repro.sim.trace.Tracer` the collector owns. After the run,
:func:`write_chrome_trace` serialises all collected tracers into the
Trace Event Format both ``chrome://tracing`` and https://ui.perfetto.dev
load directly.

Mapping:

- one *process* per collected tracer (per simulated cluster), named
  ``sim-<n>``;
- one *thread* (timeline row) per distinct span ``track`` — e.g.
  ``node2/slot0``, ``node2/slot0/kernel`` — so the paper's
  RecordReader-vs-kernel phase interleave is visible lane by lane;
- spans → phase ``"X"`` complete events (ts/dur in microseconds of
  virtual time);
- instantaneous :class:`~repro.sim.trace.TraceRecord`\\ s → phase
  ``"i"`` instant events on a per-category lane.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["TraceCollector", "chrome_trace", "write_chrome_trace"]

#: Default ring cap per tracer — generous for small scenarios, bounded
#: for big ones (satellite: 2048/4096-node runs must not grow unbounded
#: trace lists).
DEFAULT_MAX_RECORDS = 200_000


class TraceCollector:
    """Owns the tracers of every cluster built while installed."""

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS) -> None:
        self.max_records = max_records
        self.tracers: list[Tracer] = []

    def tracer(self, env: "Environment") -> Tracer:
        """Factory ``Cluster.__init__`` calls instead of its default."""
        tracer = Tracer(env, enabled=True, max_records=self.max_records)
        self.tracers.append(tracer)
        return tracer

    @property
    def dropped(self) -> int:
        return sum(t.dropped for t in self.tracers)

    def span_count(self) -> int:
        return sum(len(t.spans) for t in self.tracers)

    def record_count(self) -> int:
        return sum(len(t.records) for t in self.tracers)


def _us(t: float) -> float:
    return round(t * 1e6, 3)


def chrome_trace(tracers: Sequence[Tracer]) -> dict[str, Any]:
    """Build the Trace Event Format dict for the given tracers."""
    events: list[dict[str, Any]] = []
    for pid, tracer in enumerate(tracers, start=1):
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": f"sim-{pid}"},
        })
        tids: dict[str, int] = {}

        def tid_for(track: str, pid: int = pid, tids: dict[str, int] = tids) -> int:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
                events.append({
                    "ph": "M", "pid": pid, "tid": tid, "ts": 0,
                    "name": "thread_name", "args": {"name": track},
                })
            return tid

        for span in tracer.spans:
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": tid_for(span.track),
                "ts": _us(span.start),
                "dur": _us(span.duration),
                "name": span.name,
                "cat": span.category,
                "args": dict(span.attrs),
            })
        for rec in tracer.records:
            events.append({
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid_for(f"events/{rec.category}"),
                "ts": _us(rec.time),
                "name": rec.event,
                "cat": rec.category,
                "args": dict(rec.attrs),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro",
            "clock": "virtual-seconds-as-microseconds",
            "dropped_records": sum(t.dropped for t in tracers),
        },
    }


def write_chrome_trace(
    path: str | Path,
    tracers: Optional[Sequence[Tracer]] = None,
    collector: Optional[TraceCollector] = None,
) -> dict[str, Any]:
    """Serialise tracers (or a collector's tracers) to ``path``.

    Returns the trace dict for inspection/tests.
    """
    if tracers is None:
        if collector is None:
            raise ValueError("pass tracers or a collector")
        tracers = collector.tracers
    trace = chrome_trace(tracers)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace, separators=(",", ":"), sort_keys=True))
    return trace
