"""Model-layer protocol mode (the hadoop/cell *model*, not the engine).

PR 1 introduced ``REPRO_SIM_REFERENCE`` to switch the simulation
*kernel* between the optimized and the pre-overhaul event loop — both
trace-identical. This module is the same idea one layer up, for changes
that make the simulated *cluster protocol* event-thin and therefore
cannot be trace-identical:

- **event-thin heartbeats** — a TaskTracker with no free slots, no
  completions, and no local state change parks instead of emitting
  work-less fixed-interval heartbeats; it wakes on a per-tracker dirty
  signal (slot release, queued kill, new cluster demand) or on the
  liveness keepalive deadline.
- **analytic task segments** — per-SPE seed/compute/result DMA chains of
  a Monte-Carlo offload collapse into one composite event when nothing
  can observe the interleaving.
- **deadline-driven failure monitoring** — the JobTracker's liveness
  monitor sleeps to the next expiry deadline instead of ticking every
  heartbeat interval.

Reference mode (``REPRO_MODEL_REFERENCE=1`` or
:func:`set_model_reference`) retains the fixed-interval protocol and the
event-accurate offload exactly as frozen before this overhaul, so the
pre-overhaul makespans stay byte-reproducible (pinned by
``tests/model/test_event_thin.py``). The default, event-thin protocol
drifts makespans slightly (fewer queued work-less exchanges at the
serialized JobTracker, out-of-band wakeup heartbeats) and the golden
series are frozen under it; see ``docs/PERFORMANCE.md`` ("Model-layer
performance") for the elision contract and the measured drift.

Like the engine flag, this is a *default for new clusters*: the
JobTracker samples it at construction time, so a running simulation
never changes protocol mid-flight.
"""

from __future__ import annotations

import os

__all__ = ["REFERENCE_MODE", "set_model_reference", "model_reference"]

#: Default model-protocol mode for new clusters. True selects the
#: pre-overhaul fixed-interval protocol; settable via the
#: REPRO_MODEL_REFERENCE env var or :func:`set_model_reference`.
REFERENCE_MODE = os.environ.get("REPRO_MODEL_REFERENCE", "0") not in ("", "0")

#: Parked trackers still report in every ``heartbeat_timeout_s *
#: KEEPALIVE_FACTOR`` seconds. The keepalive serves two contracts: the
#: JobTracker's silence-based failure detector keeps working unchanged
#: (a live tracker is never silent for anywhere near the timeout), and
#: it is the starvation safety net — even if a demand poke were ever
#: missed, a parked tracker re-offers its free slots within one
#: keepalive period.
KEEPALIVE_FACTOR = 0.5


def set_model_reference(enabled: bool) -> bool:
    """Set the default model mode for *new* clusters.

    Returns the previous default, so callers can restore it.
    """
    global REFERENCE_MODE
    previous = REFERENCE_MODE
    REFERENCE_MODE = bool(enabled)
    return previous


def model_reference() -> bool:
    """The current default model mode."""
    return REFERENCE_MODE
