"""Hadoop-0.19-style MapReduce runtime.

Implements the cluster-level half of the paper's prototype (§III-A):

- :class:`~repro.hadoop.jobtracker.JobTracker` — split queue, heartbeat-
  driven locality-aware scheduling, failure detection, re-execution,
  optional speculative execution.
- :class:`~repro.hadoop.tasktracker.TaskTracker` — per-blade mapper
  slots (2, one per Cell socket), heartbeat loop, task launch.
- :class:`~repro.hadoop.recordreader.RecordReader` — the
  DataNode→TaskTracker record delivery path whose measured slowness is
  the paper's central finding.
- :class:`~repro.hadoop.tasks` — map/reduce task processes, including
  the kernel-backend bridge (the "JNI" boundary of the paper).
"""

from repro.hadoop.config import JobConf
from repro.hadoop.split import InputFormat, InputSplit
from repro.hadoop.recordreader import RecordReader
from repro.hadoop.job import Job, JobResult, JobState, TaskRecord
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.tasktracker import TaskTracker
from repro.hadoop.kernel_bridge import MapKernel
from repro.hadoop.faults import (
    ChurnEvent,
    ChurnPlan,
    FaultPlan,
    apply_churn,
    kill_node_at,
)

__all__ = [
    "ChurnEvent",
    "ChurnPlan",
    "FaultPlan",
    "InputFormat",
    "InputSplit",
    "Job",
    "JobConf",
    "JobResult",
    "JobState",
    "JobTracker",
    "MapKernel",
    "RecordReader",
    "TaskRecord",
    "TaskTracker",
    "apply_churn",
    "kill_node_at",
]
