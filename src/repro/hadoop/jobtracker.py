"""The JobTracker: split queue, heartbeat service, fault recovery.

"The process which distributes work among nodes is named JobTracker ...
If a node in the system becomes idle, the JobTracker picks a new job from
its queue to feed it ... Another consideration of the map tasks
scheduling is the location of the blocks, as it tries to minimize the
number of remote blocks accesses ... the JobTracker can detect a node
failure and reschedule the task to another TaskTracker" (§III-A).

The JobTracker is a single serialized service (it ran on the JS22 master
blade with the NameNode); every heartbeat and completion report costs
:attr:`CalibrationProfile.jobtracker_service_s` of its time. At large
node counts this serialization is the growing component of the runtime
floor — the mechanism behind the 10x-samples curve in Fig. 8 "stop[ping]
scaling its performance when increasing the number of TaskTrackers".

Task *placement* is delegated to a pluggable policy from
:mod:`repro.sched`: per heartbeat the active
:class:`~repro.sched.base.Scheduler` sees a read-only
:class:`~repro.sched.view.ClusterView` and returns the full batch of
:class:`~repro.sched.base.TaskChoice` decisions for that exchange in
one call; the JobTracker validates and applies them (queue removal,
locality/speculation counters, attempt records) and replies with the
matching wire :class:`~repro.hadoop.messages.Assignment` batch. The
default :class:`~repro.sched.fifo.FifoScheduler` reproduces the
pre-refactor inline logic decision for decision.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Generator, Optional, Union

import repro.modelmode as modelmode
from repro.hadoop.config import JobConf
from repro.hadoop.job import Job, JobState, TaskKind, TaskRecord
from repro.hadoop.messages import (
    Assignment,
    AssignmentReply,
    Heartbeat,
    KillDirective,
    TaskDone,
    TaskFailed,
)
from repro.hadoop.split import InputFormat
from repro.sched.base import (
    PreemptChoice,
    Scheduler,
    SchedulerError,
    TaskChoice,
    resolve_scheduler,
)
from repro.sched.view import ClusterView
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.hadoop.tasktracker import TaskTracker
    from repro.hdfs.client import HDFSClient

__all__ = ["JobTracker"]


class _MapOutputRegistry(dict):
    """``(job_id, task_id) → MapOutput`` with a by-node inverse index.

    Loss recovery must find every completed map output a dead node held;
    scanning all jobs × maps is O(cluster) per declaration, which
    dominates mass-loss instants at saturation scale. The index keeps
    that lookup O(owned). Only the mutation paths the simulator uses are
    indexed (``__setitem__``, ``pop``, ``__delitem__``).
    """

    __slots__ = ("by_node",)

    def __init__(self) -> None:
        super().__init__()
        self.by_node: dict[int, set[tuple[int, int]]] = {}

    def _unindex(self, key, out) -> None:
        owned = self.by_node.get(out.node_id)
        if owned is not None:
            owned.discard(key)
            if not owned:
                del self.by_node[out.node_id]

    def __setitem__(self, key, out) -> None:
        old = self.get(key)
        if old is not None:
            self._unindex(key, old)
        super().__setitem__(key, out)
        self.by_node.setdefault(out.node_id, set()).add(key)

    def __delitem__(self, key) -> None:
        self._unindex(key, self[key])
        super().__delitem__(key)

    def pop(self, key, *default):
        if key in self:
            out = super().pop(key)
            self._unindex(key, out)
            return out
        return super().pop(key, *default)


class JobTracker:
    """Cluster-level task coordinator bound to the master blade."""

    def __init__(
        self,
        cluster: "Cluster",
        client: "HDFSClient",
        scheduler: Union[None, str, Scheduler, type] = None,
    ):
        self.cluster = cluster
        self.client = client
        self.env = cluster.env
        self.calib = cluster.calib
        self.rng = cluster.rng
        self.tracer = cluster.tracer
        self.inbox = Store(self.env)
        self.map_outputs: _MapOutputRegistry = _MapOutputRegistry()
        self.cluster_nodes = {n.node_id: n for n in cluster.nodes}
        self.scheduler: Scheduler = resolve_scheduler(scheduler)

        self._trackers: dict[int, "TaskTracker"] = {}
        self._last_seen: dict[int, float] = {}
        self._jobs: dict[int, Job] = {}
        self._pending_maps: dict[int, list[int]] = {}
        self._pending_reduces: dict[int, list[int]] = {}
        self._running_attempts: dict[tuple[int, TaskKind, int], list[tuple[int, int, float]]] = {}
        """(job, kind, task) → [(tracker_id, attempt, start_time)]."""
        self._live_attempts: dict[int, int] = {}
        """job_id → live attempt count (the fair-share load measure)."""
        self._tracker_attempts: dict[int, int] = {}
        """tracker_id → live attempt count. Gates the loss-recovery scan
        of ``_running_attempts``: a starved-idle tracker (the common
        case in mass-loss instants at saturation) owes nothing, so its
        declaration skips the O(attempts) walk entirely."""
        self._kill_queue: dict[int, list[KillDirective]] = {}
        self._next_job_id = 0
        self._started = False
        #: Event-thin protocol (sampled once; see repro.modelmode).
        self.event_thin: bool = not modelmode.REFERENCE_MODE
        #: Lazy expiry heap for dead-tracker detection: one
        #: ``(last_seen + timeout, tracker_id)`` entry per live tracker,
        #: re-armed on pop when the stored deadline turned out stale.
        self._expiry: list[tuple[float, int]] = []
        #: Incremental ClusterView bookkeeping: the view caches its
        #: JobView/TrackerView structures against these epochs, so an
        #: ``assign`` call costs O(changed), not O(trackers x jobs).
        self._membership_epoch = 0
        self._jobs_epoch = 0
        self._queue_epochs: dict[int, int] = {}
        #: Jobs whose pending-map queue may have left ascending task-id
        #: order. ``_setup_job`` seeds the queue sorted and assignment
        #: removals preserve relative order; only a failure/loss requeue
        #: *append* can break it, and those sites add the job here. The
        #: view's pick fast path (per-node candidate index) is gated on
        #: absence from this set — conservative, hence always exact.
        self._queue_unsorted: set[int] = set()
        #: Mechanism-side decision tallies (policy-side ones live on the
        #: Scheduler; see :meth:`decision_counters`).
        self._decisions: dict[str, int] = {
            "heartbeats": 0,
            "assignments": 0,
            "speculative_assignments": 0,
            "kills_issued": 0,
            "preemptions": 0,
        }
        #: Heartbeats served per main-loop pass → pass count. Batch
        #: sizes above 1 mean several exchanges landed on the same
        #: (saturated) service instant and were drained in one wake.
        self._batch_hist: dict[int, int] = {}
        #: Open job spans for the trace exporter (enabled tracers only).
        self._job_spans: dict[int, Any] = {}
        self._view = ClusterView(self)

    # -- membership -------------------------------------------------------------
    def register_tracker(self, tracker: "TaskTracker") -> None:
        self._trackers[tracker.tracker_id] = tracker
        self._last_seen[tracker.tracker_id] = self.env.now
        heappush(
            self._expiry,
            (self.env.now + self.calib.heartbeat_timeout_s, tracker.tracker_id),
        )
        # Runtime joiners (elastic membership) must be reachable for the
        # reduce shuffle's node lookup; construction-time trackers are
        # already present, so this is a no-op for them.
        self.cluster_nodes[tracker.node.node_id] = tracker.node
        self._membership_epoch += 1
        self.scheduler.on_membership_change(
            self._view, joined=(tracker.tracker_id,)
        )

    @property
    def live_trackers(self) -> list[int]:
        return sorted(self._trackers)

    def job_by_id(self, job_id: int) -> Job:
        return self._jobs[job_id]

    # -- event-thin protocol support ---------------------------------------------
    def has_demand(self) -> bool:
        """True while an *idle* tracker's heartbeat could earn work.

        PREP jobs count (their queues fill within ``job_setup_s``, so
        idle trackers keep the fixed cadence instead of parking and
        waking moments later); a RUNNING job demands slots while it has
        pending tasks, or while speculation could still duplicate one of
        its running maps. Job counts are small (one dict scan), so this
        stays cheap on the per-heartbeat path.
        """
        for job_id, job in self._jobs.items():
            state = job.state
            if state is JobState.PREP:
                return True
            if state is JobState.RUNNING:
                if self._pending_maps.get(job_id) or self._pending_reduces.get(job_id):
                    return True
                if job.conf.speculative and not job.maps_all_done:
                    return True
        return False

    def _poke_trackers(self) -> None:
        """Demand signal: wake every parked tracker (event-thin mode).

        Registration order is ascending node id, so the wakeup order is
        deterministic. Trackers that cannot use the news (still full)
        simply re-park.
        """
        if not self.event_thin:
            return
        for tracker in self._trackers.values():
            tracker.poke()

    def _bump_queue(self, job_id: int) -> None:
        """Invalidate the view's cached pending-queue snapshot."""
        self._queue_epochs[job_id] = self._queue_epochs.get(job_id, 0) + 1

    # -- decision counters ---------------------------------------------------------
    def decision_counters(self) -> dict[str, object]:
        """Mechanism + policy decision tallies for reporting.

        Merges the JobTracker's apply-side counts (assignments,
        speculations, kills, heartbeats handled) with whatever the
        active policy tallied internally (e.g. delay-scheduling waits),
        the trackers' elision stats, and the heartbeat batch-size
        histogram (``heartbeat_batch_hist``: served-per-pass → passes).
        """
        out = dict(self._decisions)
        out["heartbeat_parks"] = sum(
            t.heartbeat_parks for t in self._trackers.values()
        )
        out["heartbeat_batches"] = sum(self._batch_hist.values())
        #: Batch-size histogram ({size: passes}, string keys so the
        #: counters dict stays JSON-serializable end to end).
        out["heartbeat_batch_hist"] = {
            str(size): count for size, count in sorted(self._batch_hist.items())
        }
        for key, value in sorted(self.scheduler.decision_counters().items()):
            out[key] = out.get(key, 0) + value
        return out

    # -- policy selection --------------------------------------------------------
    def set_scheduler(self, scheduler: Union[str, Scheduler, type]) -> Scheduler:
        """Swap the placement policy. Only valid before any job is
        submitted — policies may carry per-job internal state, and a
        mid-flight swap would silently drop it."""
        if self._jobs:
            raise RuntimeError(
                "cannot change the scheduler after jobs have been submitted"
            )
        self.scheduler = resolve_scheduler(scheduler)
        return self.scheduler

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler and failure-monitor processes."""
        if self._started:
            return
        self._started = True
        self.env.process(self._main_loop(), name="jobtracker")
        self.env.process(self._failure_monitor(), name="jt-monitor")

    # -- submission ----------------------------------------------------------------
    def submit_job(self, conf: JobConf) -> Job:
        """Create a job and start its setup; returns immediately.

        Wait on ``job.completion`` to get the :class:`JobResult`.
        """
        job = Job(conf=conf, env=self.env, job_id=self._next_job_id)
        job.submit_time = self.env.now
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self._jobs_epoch += 1
        self.env.process(self._setup_job(job), name=f"job-setup-{job.job_id}")
        # Demand appeared: parked trackers must resume the heartbeat
        # cadence (the PREP state keeps them from re-parking).
        self._poke_trackers()
        return job

    def _setup_job(self, job: Job) -> Generator:
        conf = job.conf
        yield self.env.timeout(self.calib.job_setup_s)
        if conf.is_data_driven:
            from repro.hdfs.namenode import HDFSError

            try:
                meta = self.client.namenode.file_meta(conf.input_path)
            except HDFSError as exc:
                job.mark_finished(JobState.FAILED, reason=f"job setup failed: {exc}")
                self._jobs_epoch += 1
                return
            splits = InputFormat.compute_splits(meta, num_splits=conf.num_map_tasks)
            for split in splits:
                job.maps[split.split_id] = TaskRecord(
                    kind=TaskKind.MAP, task_id=split.split_id, split=split
                )
        else:
            per_task = conf.samples / conf.num_map_tasks
            for i in range(conf.num_map_tasks):
                job.maps[i] = TaskRecord(kind=TaskKind.MAP, task_id=i, samples=per_task)
        for r in range(conf.num_reduce_tasks):
            job.reduces[r] = TaskRecord(kind=TaskKind.REDUCE, task_id=r)
        self._pending_maps[job.job_id] = sorted(job.maps)
        self._pending_reduces[job.job_id] = []
        self._bump_queue(job.job_id)
        job.state = JobState.RUNNING
        self._jobs_epoch += 1
        if not job.maps:
            yield from self._finish_job(job)
        if self.tracer.enabled:
            self.tracer.emit("jobtracker", "job_started", job=job.job_id, maps=len(job.maps))
            self._job_spans[job.job_id] = self.tracer.span(
                "job", f"job {job.job_id}", track="jobs",
                maps=len(job.maps), reduces=len(job.reduces),
            )

    # -- main service loop ------------------------------------------------------------
    def _main_loop(self) -> Generator:
        """Serve the inbox in batched passes.

        One ``get()`` wake opens a service pass that drains every message
        already queued (plus any that arrive while the pass is mid-
        service — exactly the messages the old get-per-message loop
        would have found queued). Each message still pays its own
        serialized ``jobtracker_service_s`` and is handled in arrival
        order, so the pass is byte-identical to the one-at-a-time loop:
        an immediately-satisfiable ``get()`` was already born-processed
        (no heap trip), making the drain a pure Python-overhead saving.
        The per-pass heartbeat count feeds the batch-size histogram
        surfaced through :meth:`decision_counters`.
        """
        inbox_items = self.inbox.items
        service_s = self.calib.jobtracker_service_s
        batch_hist = self._batch_hist
        while True:
            msg, reply_box = yield self.inbox.get()
            heartbeats = 0
            while True:
                # Serialized service time for every RPC the JobTracker
                # handles.
                yield self.env.pooled_timeout(service_s)
                if isinstance(msg, Heartbeat):
                    reply = self._handle_heartbeat(msg)
                    yield reply_box.put(reply)
                    heartbeats += 1
                elif isinstance(msg, TaskDone):
                    self._handle_done(msg)
                elif isinstance(msg, TaskFailed):
                    self._handle_failed(msg)
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown message {msg!r}")
                if not inbox_items:
                    break
                msg, reply_box = inbox_items.popleft()
            if heartbeats:
                batch_hist[heartbeats] = batch_hist.get(heartbeats, 0) + 1

    # -- heartbeat handling ------------------------------------------------------------
    def _handle_heartbeat(self, hb: Heartbeat) -> AssignmentReply:
        """One exchange: the policy decides the whole batch, we apply it.

        The active :class:`~repro.sched.base.Scheduler` gets exactly one
        ``assign`` call per heartbeat and returns every launch for this
        tracker's free slots at once — the batched-reply protocol. The
        apply step below owns all mutation and double-checks the policy
        against the queues (a bad choice is a policy bug, reported as
        :class:`~repro.sched.base.SchedulerError`, never silent state
        corruption).
        """
        self._last_seen[hb.tracker_id] = self.env.now
        self._decisions["heartbeats"] += 1
        choices = self.scheduler.assign(self._view, hb)
        preempts: Optional[list[PreemptChoice]] = None
        if any(type(c) is PreemptChoice for c in choices):
            preempts = [c for c in choices if type(c) is PreemptChoice]
            choices = [c for c in choices if type(c) is not PreemptChoice]
        maps = sum(1 for c in choices if c.kind is TaskKind.MAP)
        if maps > hb.free_map_slots or len(choices) - maps > hb.free_reduce_slots:
            raise SchedulerError(
                f"{self.scheduler.name}: {len(choices)} choices exceed the "
                f"tracker's free slots ({hb.free_map_slots} map, "
                f"{hb.free_reduce_slots} reduce)"
            )
        if preempts:
            # Preemptions first: a preempted task is requeued *before*
            # launches apply, so a policy that both preempts a task and
            # (buggily) speculates it in the same batch fails loudly in
            # ``_apply_choice`` instead of corrupting state.
            for preempt in preempts:
                self._apply_preempt(preempt)
        assignments = tuple(
            self._apply_choice(choice, hb.tracker_id) for choice in choices
        )
        # The kill queue drains after the apply steps so a preemption
        # aimed at the heartbeating tracker itself rides this very
        # reply. Nothing between the old pop site and here reads the
        # queue, so non-preempting policies are unaffected.
        kills = tuple(self._kill_queue.pop(hb.tracker_id, ()))
        return AssignmentReply(assignments=assignments, kills=kills)

    def _apply_preempt(self, choice: PreemptChoice) -> None:
        """Validate one preemption decision and issue the kill.

        Killed attempts die silently (the tracker swallows the interrupt
        and reports nothing — same path as speculation cleanup), so all
        bookkeeping retires here, at issue time. The task re-enters its
        pending queue exactly once: only when the preempted attempt was
        the last one live. ``task.attempts`` is *not* rolled back — a
        preemption is not a failure, and the attempt counter must keep
        producing unique attempt ids — and preemptions never count
        against ``max_attempts`` (only ``TaskFailed`` does).
        """
        job = self._jobs.get(choice.job_id)
        if job is None or job.state is not JobState.RUNNING:
            raise SchedulerError(
                f"{self.scheduler.name}: preempt target in non-running job "
                f"{choice.job_id}"
            )
        table = job.maps if choice.kind is TaskKind.MAP else job.reduces
        task = table.get(choice.task_id)
        if task is None or task.state != "running":
            raise SchedulerError(
                f"{self.scheduler.name}: preempt target {choice.kind.value} "
                f"task {choice.task_id} of job {choice.job_id} is not running"
            )
        key = (choice.job_id, choice.kind, choice.task_id)
        attempts = self._running_attempts.get(key, [])
        victims = [
            a for a in attempts
            if a[0] == choice.tracker_id and a[1] == choice.attempt
        ]
        if not victims:
            raise SchedulerError(
                f"{self.scheduler.name}: preempt target attempt "
                f"{choice.attempt} of {choice.kind.value} task "
                f"{choice.task_id} (job {choice.job_id}) is not live on "
                f"tracker {choice.tracker_id}"
            )
        remaining = [a for a in attempts if a not in victims]
        self._running_attempts[key] = remaining
        self._note_attempts_gone(choice.job_id, len(victims))
        self._note_tracker_attempts_gone(victims)
        self._kill_queue.setdefault(choice.tracker_id, []).append(
            KillDirective(choice.job_id, choice.kind, choice.task_id, choice.attempt)
        )
        self._decisions["kills_issued"] += 1
        self._decisions["preemptions"] += 1
        job.bump("preempted_attempts")
        if self.event_thin:
            target = self._trackers.get(choice.tracker_id)
            if target is not None:
                target.poke(dirty=True, urgent=True)
        if not remaining:
            task.state = "pending"
            pending = (
                self._pending_maps
                if choice.kind is TaskKind.MAP
                else self._pending_reduces
            ).setdefault(choice.job_id, [])
            if choice.task_id not in pending:
                pending.append(choice.task_id)
                if choice.kind is TaskKind.MAP:
                    self._queue_unsorted.add(choice.job_id)
                self._bump_queue(choice.job_id)
                self._poke_trackers()
        if self.tracer.enabled:
            self.tracer.emit(
                "jobtracker",
                "task_preempted",
                job=choice.job_id,
                kind=choice.kind.value,
                task=choice.task_id,
                tracker=choice.tracker_id,
                attempt=choice.attempt,
            )

    def _apply_choice(self, choice: TaskChoice, tracker_id: int) -> Assignment:
        """Validate one policy decision and turn it into a wire Assignment."""
        job = self._jobs.get(choice.job_id)
        if job is None or job.state is not JobState.RUNNING:
            raise SchedulerError(
                f"{self.scheduler.name}: chose task for non-running job "
                f"{choice.job_id}"
            )
        table = job.maps if choice.kind is TaskKind.MAP else job.reduces
        task = table.get(choice.task_id)
        if task is None:
            raise SchedulerError(
                f"{self.scheduler.name}: job {job.job_id} has no "
                f"{choice.kind.value} task {choice.task_id}"
            )
        if choice.speculative:
            if choice.kind is not TaskKind.MAP or task.state != "running":
                raise SchedulerError(
                    f"{self.scheduler.name}: invalid speculation target "
                    f"{choice.kind.value} task {choice.task_id} "
                    f"(state {task.state!r})"
                )
            job.bump("speculative_attempts")
            self._decisions["speculative_assignments"] += 1
        else:
            pending = (
                self._pending_maps
                if choice.kind is TaskKind.MAP
                else self._pending_reduces
            ).get(job.job_id, [])
            try:
                pending.remove(choice.task_id)
            except ValueError:
                raise SchedulerError(
                    f"{self.scheduler.name}: {choice.kind.value} task "
                    f"{choice.task_id} of job {job.job_id} is not pending"
                ) from None
            self._bump_queue(job.job_id)
            self._decisions["assignments"] += 1
            if choice.kind is TaskKind.MAP:
                job.bump(
                    "data_local_maps"
                    if task.split is not None and tracker_id in task.split.preferred_nodes
                    else "other_maps"
                )
        return self._issue(job, task, tracker_id)

    def _issue(self, job: Job, task: TaskRecord, tracker_id: int) -> Assignment:
        task.attempts += 1
        task.state = "running"
        task.tracker = tracker_id
        if task.start_time < 0:
            task.start_time = self.env.now
        if job.launch_time < 0:
            job.launch_time = self.env.now
        key = (job.job_id, task.kind, task.task_id)
        self._running_attempts.setdefault(key, []).append(
            (tracker_id, task.attempts, self.env.now)
        )
        self._live_attempts[job.job_id] = self._live_attempts.get(job.job_id, 0) + 1
        self._tracker_attempts[tracker_id] = self._tracker_attempts.get(tracker_id, 0) + 1
        if self.tracer.enabled:
            self.tracer.emit(
                "jobtracker",
                "task_assigned",
                job=job.job_id,
                kind=task.kind.value,
                task=task.task_id,
                tracker=tracker_id,
            )
        return Assignment(
            job_id=job.job_id,
            kind=task.kind,
            task_id=task.task_id,
            attempt=task.attempts,
            slot=0,
        )

    # -- completion handling ------------------------------------------------------------
    def _handle_done(self, msg: TaskDone) -> None:
        job = self._jobs.get(msg.job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        task = job.task(msg.kind, msg.task_id)
        key = (msg.job_id, msg.kind, msg.task_id)
        attempts = self._running_attempts.get(key, [])
        remaining = [a for a in attempts if a[1] != msg.attempt]
        self._running_attempts[key] = remaining
        self._note_attempts_gone(msg.job_id, len(attempts) - len(remaining))
        if len(remaining) != len(attempts):
            self._note_tracker_attempts_gone(
                a for a in attempts if a[1] == msg.attempt
            )
        if task.state == "done":
            return  # late duplicate
        task.state = "done"
        job.note_task_done(msg.kind)
        task.end_time = self.env.now
        task.tracker = msg.tracker_id
        stats = msg.stats
        task.records = int(stats.get("records", 0))
        task.output_bytes = float(stats.get("output_bytes", 0.0))
        task.kernel_busy_s = float(stats.get("kernel_busy_s", 0.0))
        task.remote_bytes = float(stats.get("remote_bytes", 0.0))
        if msg.kind is TaskKind.MAP:
            job.bump("map_input_bytes", float(stats.get("input_bytes", 0.0)))
            job.bump("remote_input_bytes", float(stats.get("remote_bytes", 0.0)))
            job.bump("map_output_bytes", task.output_bytes)
            job.bump("map_records", task.records)
        else:
            job.bump("reduce_shuffle_bytes", float(stats.get("shuffle_bytes", 0.0)))
        # Kill redundant attempts of this task (speculation cleanup).
        # Killed attempts die silently (the tracker swallows the
        # interrupt and reports nothing), so retire their bookkeeping
        # here — otherwise the per-job load tally stays inflated and
        # fair sharing starves speculating jobs.
        leftovers = self._running_attempts.get(key)
        if leftovers:
            for tracker_id, attempt, _t0 in leftovers:
                self._kill_queue.setdefault(tracker_id, []).append(
                    KillDirective(msg.job_id, msg.kind, msg.task_id, attempt)
                )
                self._decisions["kills_issued"] += 1
                # Kills ride on heartbeats; a sleeping target must
                # report in now, not at its keepalive deadline.
                if self.event_thin:
                    target = self._trackers.get(tracker_id)
                    if target is not None:
                        target.poke(dirty=True, urgent=True)
            self._note_attempts_gone(msg.job_id, len(leftovers))
            self._note_tracker_attempts_gone(leftovers)
            self._running_attempts[key] = []
        if msg.kind is TaskKind.MAP and job.maps_all_done and job.maps_done_time < 0:
            job.maps_done_time = self.env.now
            self._pending_reduces[job.job_id] = sorted(job.reduces)
            self._bump_queue(job.job_id)
            if self._pending_reduces[job.job_id]:
                self._poke_trackers()
        if job.is_complete:
            self.env.process(self._finish_job(job), name=f"job-finish-{job.job_id}")

    def _handle_failed(self, msg: TaskFailed) -> None:
        job = self._jobs.get(msg.job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        task = job.task(msg.kind, msg.task_id)
        key = (msg.job_id, msg.kind, msg.task_id)
        attempts = self._running_attempts.get(key, [])
        remaining = [a for a in attempts if a[1] != msg.attempt]
        self._running_attempts[key] = remaining
        self._note_attempts_gone(msg.job_id, len(attempts) - len(remaining))
        if len(remaining) != len(attempts):
            self._note_tracker_attempts_gone(
                a for a in attempts if a[1] == msg.attempt
            )
        if task.state == "done":
            return
        job.bump("failed_attempts")
        if task.attempts >= job.conf.max_attempts:
            job.mark_finished(
                JobState.FAILED,
                reason=f"{msg.kind.value} task {msg.task_id} failed {task.attempts} times: {msg.reason}",
            )
            self._jobs_epoch += 1
            return
        task.state = "pending"
        pending = (
            self._pending_maps if msg.kind is TaskKind.MAP else self._pending_reduces
        ).setdefault(msg.job_id, [])
        if msg.task_id not in pending:
            pending.append(msg.task_id)
            if msg.kind is TaskKind.MAP:
                self._queue_unsorted.add(msg.job_id)
            self._bump_queue(msg.job_id)
            self._poke_trackers()

    def _note_attempts_gone(self, job_id: int, count: int) -> None:
        """Keep the per-job live-attempt tally in step with
        ``_running_attempts`` removals."""
        if count > 0:
            self._live_attempts[job_id] = max(
                0, self._live_attempts.get(job_id, 0) - count
            )

    def _note_tracker_attempts_gone(self, removed) -> None:
        """Keep the per-tracker live-attempt tally in step with
        ``_running_attempts`` removals (``removed``: attempt tuples)."""
        counts = self._tracker_attempts
        for tracker_id, _attempt, _t0 in removed:
            n = counts.get(tracker_id, 0) - 1
            if n > 0:
                counts[tracker_id] = n
            else:
                counts.pop(tracker_id, None)

    def _finish_job(self, job: Job) -> Generator:
        yield self.env.timeout(self.calib.job_cleanup_s)
        if job.state is JobState.RUNNING or job.state is JobState.PREP:
            job.mark_finished(JobState.SUCCEEDED)
            self._jobs_epoch += 1
            if self.tracer.enabled:
                self.tracer.emit("jobtracker", "job_done", job=job.job_id)
                span = self._job_spans.pop(job.job_id, None)
                if span is not None:
                    span.end(state=job.state.name)

    # -- failure detection ---------------------------------------------------------------
    def _failure_monitor(self) -> Generator:
        """Dead-tracker detection against the lazy expiry heap.

        Reference model: tick every heartbeat interval (the pre-overhaul
        schedule; declarations land on the same ticks, since the heap
        check finds exactly the trackers the full ``_last_seen`` scan
        used to). Event-thin model: sleep to the earliest expiry
        deadline instead — O(1) wakeups per timeout window rather than
        one per interval, with the sleep clamped to
        ``[interval, timeout]`` so late joiners are still picked up.
        """
        interval = self.calib.heartbeat_interval_s
        timeout = self.calib.heartbeat_timeout_s
        thin = self.event_thin
        heap = self._expiry
        last_seen = self._last_seen
        while True:
            if thin and heap:
                # Re-arm stale heads eagerly: entries whose tracker has
                # heartbeat since their push carry an expired-looking
                # deadline that would wake the monitor early for
                # nothing. Advancing them here lets one sleep span a
                # whole keepalive window — and one wake then drains a
                # whole batched expiry instant instead of N stale ticks.
                while heap:
                    deadline, tracker_id = heap[0]
                    last = last_seen.get(tracker_id)
                    if last is None:
                        heappop(heap)  # tracker already declared lost
                        continue
                    true_deadline = last + timeout
                    if true_deadline > deadline:
                        heappop(heap)
                        heappush(heap, (true_deadline, tracker_id))
                        continue
                    break
            if thin and heap:
                delay = min(max(heap[0][0] - self.env.now, interval), timeout)
            else:
                delay = interval
            yield self.env.pooled_timeout(delay)
            self._check_liveness()

    def _check_liveness(self) -> None:
        """Declare every expired tracker lost — O(expired + re-armed).

        Heap entries carry the deadline implied by the ``_last_seen``
        value current when they were (re-)pushed; a popped entry whose
        tracker has heartbeat since is re-armed at its true deadline.
        Expiry keeps the pre-overhaul strict inequality
        (``now - last_seen > timeout``) in reference model mode; the
        event-thin monitor wakes exactly at deadlines, so it treats
        ``>=`` as expired (detection up to one interval earlier).
        """
        now = self.env.now
        timeout = self.calib.heartbeat_timeout_s
        heap = self._expiry
        thin = self.event_thin
        expired: list[int] = []
        while heap and (heap[0][0] <= now if thin else heap[0][0] < now):
            _deadline, tracker_id = heappop(heap)
            last = self._last_seen.get(tracker_id)
            if last is None:
                continue  # already declared lost (stale entry)
            true_deadline = last + timeout
            if (true_deadline <= now) if thin else (true_deadline < now):
                expired.append(tracker_id)
            else:
                heappush(heap, (true_deadline, tracker_id))
        # Ascending-id order == the registration order the pre-overhaul
        # full scan used, so multi-loss recovery stays deterministic.
        # One demand sweep covers the whole pass: the declarations are
        # synchronous (no yields between them), so every interrupt a
        # per-declaration poke would schedule lands at this same instant
        # anyway — minus redundant wakes for trackers that are themselves
        # mid-declaration in this pass.
        expired.sort()
        for tracker_id in expired:
            self._declare_lost(tracker_id, poke=False)
        if expired:
            self._poke_trackers()

    def _declare_lost(self, tracker_id: int, poke: bool = True) -> None:
        """Remove a dead tracker and reschedule everything it owed us.

        ``poke=False`` defers the demand wakeup to the caller so a
        multi-loss monitor pass (same-instant expiries at saturation)
        coalesces into a single ``_poke_trackers`` sweep instead of one
        per declaration.
        """
        self._trackers.pop(tracker_id, None)
        self._last_seen.pop(tracker_id, None)
        # Undelivered kills for a dead tracker would sit forever (its
        # heartbeats are the only drain); node ids are never reused, so
        # the entry is garbage the moment the tracker is gone.
        self._kill_queue.pop(tracker_id, None)
        self._membership_epoch += 1
        self.scheduler.on_membership_change(self._view, lost=(tracker_id,))
        if self.tracer.enabled:
            self.tracer.emit("jobtracker", "tracker_lost", tracker=tracker_id)
        # Running attempts: walk the table only if the tracker owed any
        # (per-tracker tally); a starved-idle tracker skips the O(attempts)
        # scan entirely, and the tally bounds the scan — once every owed
        # attempt is found the walk stops. Completed keys linger with
        # empty lists, so skip those without the per-entry filter. The
        # body only reassigns values (never inserts/deletes keys), so
        # iterating the live dict is safe.
        owed = self._tracker_attempts.pop(tracker_id, 0)
        if owed:
            for key, attempts in self._running_attempts.items():
                if not attempts:
                    continue
                removed = sum(1 for a in attempts if a[0] == tracker_id)
                if not removed:
                    continue
                remaining = [a for a in attempts if a[0] != tracker_id]
                job_id, kind, task_id = key
                self._running_attempts[key] = remaining
                self._note_attempts_gone(job_id, removed)
                owed -= removed
                job = self._jobs.get(job_id)
                if job is not None and job.state is JobState.RUNNING:
                    task = job.task(kind, task_id)
                    if task.state == "running" and not remaining:
                        task.state = "pending"
                        pending = (
                            self._pending_maps if kind is TaskKind.MAP else self._pending_reduces
                        ).setdefault(job_id, [])
                        if task_id not in pending:
                            pending.append(task_id)
                            if kind is TaskKind.MAP:
                                self._queue_unsorted.add(job_id)
                            self._bump_queue(job_id)
                        job.bump("rescheduled_tasks")
                if owed <= 0:
                    break
        # Completed map outputs on the dead node are gone; jobs with
        # reducers still shuffling must re-run those maps. The by-node
        # index yields exactly the outputs the node held; ascending
        # (job_id, task_id) order equals the old jobs-then-maps walk.
        owned = self.map_outputs.by_node.get(tracker_id)
        for job_id, task_id in sorted(owned) if owned else ():
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING or not job.reduces:
                continue
            if job.reduces_all_done:
                continue
            task = job.maps.get(task_id)
            if task is None or task.state != "done":
                continue
            task.state = "pending"
            job.note_task_undone(TaskKind.MAP)
            task.attempts = 0
            self.map_outputs.pop((job_id, task_id), None)
            pending = self._pending_maps.setdefault(job_id, [])
            if task_id not in pending:
                pending.append(task_id)
                self._queue_unsorted.add(job_id)
                self._bump_queue(job_id)
            if job.maps_done_time >= 0:
                job.maps_done_time = -1.0
            job.bump("rerun_completed_maps")
        # Requeued work is demand: wake every parked survivor.
        if poke:
            self._poke_trackers()
