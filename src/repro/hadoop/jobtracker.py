"""The JobTracker: split queue, heartbeat scheduling, fault recovery.

"The process which distributes work among nodes is named JobTracker ...
If a node in the system becomes idle, the JobTracker picks a new job from
its queue to feed it ... Another consideration of the map tasks
scheduling is the location of the blocks, as it tries to minimize the
number of remote blocks accesses ... the JobTracker can detect a node
failure and reschedule the task to another TaskTracker" (§III-A).

The JobTracker is a single serialized service (it ran on the JS22 master
blade with the NameNode); every heartbeat and completion report costs
:attr:`CalibrationProfile.jobtracker_service_s` of its time. At large
node counts this serialization is the growing component of the runtime
floor — the mechanism behind the 10x-samples curve in Fig. 8 "stop[ping]
scaling its performance when increasing the number of TaskTrackers".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.hadoop.config import JobConf
from repro.hadoop.job import Job, JobState, TaskKind, TaskRecord
from repro.hadoop.messages import (
    Assignment,
    AssignmentReply,
    Heartbeat,
    KillDirective,
    TaskDone,
    TaskFailed,
)
from repro.hadoop.split import InputFormat
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.hadoop.tasktracker import TaskTracker
    from repro.hdfs.client import HDFSClient

__all__ = ["JobTracker"]


class JobTracker:
    """Cluster-level scheduler bound to the master blade."""

    def __init__(self, cluster: "Cluster", client: "HDFSClient"):
        self.cluster = cluster
        self.client = client
        self.env = cluster.env
        self.calib = cluster.calib
        self.rng = cluster.rng
        self.tracer = cluster.tracer
        self.inbox = Store(self.env)
        self.map_outputs: dict = {}
        self.cluster_nodes = {n.node_id: n for n in cluster.nodes}

        self._trackers: dict[int, "TaskTracker"] = {}
        self._last_seen: dict[int, float] = {}
        self._jobs: dict[int, Job] = {}
        self._pending_maps: dict[int, list[int]] = {}
        self._pending_reduces: dict[int, list[int]] = {}
        self._running_attempts: dict[tuple[int, TaskKind, int], list[tuple[int, int, float]]] = {}
        """(job, kind, task) → [(tracker_id, attempt, start_time)]."""
        self._kill_queue: dict[int, list[KillDirective]] = {}
        self._next_job_id = 0
        self._started = False

    # -- membership -------------------------------------------------------------
    def register_tracker(self, tracker: "TaskTracker") -> None:
        self._trackers[tracker.tracker_id] = tracker
        self._last_seen[tracker.tracker_id] = self.env.now

    @property
    def live_trackers(self) -> list[int]:
        return sorted(self._trackers)

    def job_by_id(self, job_id: int) -> Job:
        return self._jobs[job_id]

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler and failure-monitor processes."""
        if self._started:
            return
        self._started = True
        self.env.process(self._main_loop(), name="jobtracker")
        self.env.process(self._failure_monitor(), name="jt-monitor")

    # -- submission ----------------------------------------------------------------
    def submit_job(self, conf: JobConf) -> Job:
        """Create a job and start its setup; returns immediately.

        Wait on ``job.completion`` to get the :class:`JobResult`.
        """
        job = Job(conf=conf, env=self.env, job_id=self._next_job_id)
        job.submit_time = self.env.now
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self.env.process(self._setup_job(job), name=f"job-setup-{job.job_id}")
        return job

    def _setup_job(self, job: Job) -> Generator:
        conf = job.conf
        yield self.env.timeout(self.calib.job_setup_s)
        if conf.is_data_driven:
            from repro.hdfs.namenode import HDFSError

            try:
                meta = self.client.namenode.file_meta(conf.input_path)
            except HDFSError as exc:
                job.mark_finished(JobState.FAILED, reason=f"job setup failed: {exc}")
                return
            splits = InputFormat.compute_splits(meta, num_splits=conf.num_map_tasks)
            for split in splits:
                job.maps[split.split_id] = TaskRecord(
                    kind=TaskKind.MAP, task_id=split.split_id, split=split
                )
        else:
            per_task = conf.samples / conf.num_map_tasks
            for i in range(conf.num_map_tasks):
                job.maps[i] = TaskRecord(kind=TaskKind.MAP, task_id=i, samples=per_task)
        for r in range(conf.num_reduce_tasks):
            job.reduces[r] = TaskRecord(kind=TaskKind.REDUCE, task_id=r)
        self._pending_maps[job.job_id] = sorted(job.maps)
        self._pending_reduces[job.job_id] = []
        job.state = JobState.RUNNING
        if not job.maps:
            yield from self._finish_job(job)
        if self.tracer.enabled:
            self.tracer.emit("jobtracker", "job_started", job=job.job_id, maps=len(job.maps))

    # -- main service loop ------------------------------------------------------------
    def _main_loop(self) -> Generator:
        while True:
            msg, reply_box = yield self.inbox.get()
            # Serialized service time for every RPC the JobTracker handles.
            yield self.env.pooled_timeout(self.calib.jobtracker_service_s)
            if isinstance(msg, Heartbeat):
                reply = self._handle_heartbeat(msg)
                yield reply_box.put(reply)
            elif isinstance(msg, TaskDone):
                self._handle_done(msg)
            elif isinstance(msg, TaskFailed):
                self._handle_failed(msg)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown message {msg!r}")

    # -- heartbeat handling ------------------------------------------------------------
    def _handle_heartbeat(self, hb: Heartbeat) -> AssignmentReply:
        self._last_seen[hb.tracker_id] = self.env.now
        kills = tuple(self._kill_queue.pop(hb.tracker_id, ()))
        assignments: list[Assignment] = []
        free_maps = hb.free_map_slots
        free_reduces = hb.free_reduce_slots
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if job.state is not JobState.RUNNING:
                continue
            while free_maps > 0:
                assignment = self._next_map_assignment(job, hb.tracker_id)
                if assignment is None:
                    break
                assignments.append(assignment)
                free_maps -= 1
            while free_reduces > 0:
                assignment = self._next_reduce_assignment(job, hb.tracker_id)
                if assignment is None:
                    break
                assignments.append(assignment)
                free_reduces -= 1
        return AssignmentReply(assignments=tuple(assignments), kills=kills)

    def _next_map_assignment(self, job: Job, tracker_id: int) -> Optional[Assignment]:
        pending = self._pending_maps.get(job.job_id, [])
        chosen: Optional[int] = None
        if pending:
            # Locality first: a split whose preferred nodes include this
            # tracker's blade; otherwise the head of the queue.
            for task_id in pending:
                split = job.maps[task_id].split
                if split is not None and tracker_id in split.preferred_nodes:
                    chosen = task_id
                    break
            if chosen is None:
                chosen = pending[0]
            pending.remove(chosen)
            task = job.maps[chosen]
            job.bump(
                "data_local_maps"
                if task.split is not None and tracker_id in task.split.preferred_nodes
                else "other_maps"
            )
        elif job.conf.speculative:
            chosen = self._pick_speculative(job, tracker_id)
            if chosen is None:
                return None
        else:
            return None
        task = job.maps[chosen]
        return self._issue(job, task, tracker_id)

    def _pick_speculative(self, job: Job, tracker_id: int) -> Optional[int]:
        """Duplicate the longest-running map that looks like a straggler."""
        done = [t.duration for t in job.maps.values() if t.state == "done"]
        if not done:
            return None
        import math

        mean = sum(done) / len(done)
        best_id, best_elapsed = None, 0.0
        for task in job.maps.values():
            if task.state != "running":
                continue
            attempts = self._running_attempts.get((job.job_id, TaskKind.MAP, task.task_id), [])
            if len(attempts) != 1:
                continue  # already duplicated (or lost)
            if attempts[0][0] == tracker_id:
                continue  # don't duplicate onto the same node
            elapsed = self.env.now - attempts[0][2]
            if elapsed > 1.5 * mean and elapsed > best_elapsed and not math.isnan(mean):
                best_id, best_elapsed = task.task_id, elapsed
        if best_id is not None:
            job.bump("speculative_attempts")
        return best_id

    def _next_reduce_assignment(self, job: Job, tracker_id: int) -> Optional[Assignment]:
        if not job.maps_all_done:
            return None
        pending = self._pending_reduces.get(job.job_id, [])
        if not pending:
            return None
        task_id = pending.pop(0)
        return self._issue(job, job.reduces[task_id], tracker_id)

    def _issue(self, job: Job, task: TaskRecord, tracker_id: int) -> Assignment:
        task.attempts += 1
        task.state = "running"
        task.tracker = tracker_id
        if task.start_time < 0:
            task.start_time = self.env.now
        if job.launch_time < 0:
            job.launch_time = self.env.now
        key = (job.job_id, task.kind, task.task_id)
        self._running_attempts.setdefault(key, []).append(
            (tracker_id, task.attempts, self.env.now)
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "jobtracker",
                "task_assigned",
                job=job.job_id,
                kind=task.kind.value,
                task=task.task_id,
                tracker=tracker_id,
            )
        return Assignment(
            job_id=job.job_id,
            kind=task.kind,
            task_id=task.task_id,
            attempt=task.attempts,
            slot=0,
        )

    # -- completion handling ------------------------------------------------------------
    def _handle_done(self, msg: TaskDone) -> None:
        job = self._jobs.get(msg.job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        task = job.task(msg.kind, msg.task_id)
        key = (msg.job_id, msg.kind, msg.task_id)
        attempts = self._running_attempts.get(key, [])
        self._running_attempts[key] = [a for a in attempts if a[1] != msg.attempt]
        if task.state == "done":
            return  # late duplicate
        task.state = "done"
        job.note_task_done(msg.kind)
        task.end_time = self.env.now
        task.tracker = msg.tracker_id
        stats = msg.stats
        task.records = int(stats.get("records", 0))
        task.output_bytes = float(stats.get("output_bytes", 0.0))
        task.kernel_busy_s = float(stats.get("kernel_busy_s", 0.0))
        task.remote_bytes = float(stats.get("remote_bytes", 0.0))
        if msg.kind is TaskKind.MAP:
            job.bump("map_input_bytes", float(stats.get("input_bytes", 0.0)))
            job.bump("remote_input_bytes", float(stats.get("remote_bytes", 0.0)))
            job.bump("map_output_bytes", task.output_bytes)
            job.bump("map_records", task.records)
        else:
            job.bump("reduce_shuffle_bytes", float(stats.get("shuffle_bytes", 0.0)))
        # Kill redundant attempts of this task (speculation cleanup).
        for tracker_id, attempt, _t0 in self._running_attempts.get(key, []):
            self._kill_queue.setdefault(tracker_id, []).append(
                KillDirective(msg.job_id, msg.kind, msg.task_id, attempt)
            )
        if msg.kind is TaskKind.MAP and job.maps_all_done and job.maps_done_time < 0:
            job.maps_done_time = self.env.now
            self._pending_reduces[job.job_id] = sorted(job.reduces)
        if job.is_complete:
            self.env.process(self._finish_job(job), name=f"job-finish-{job.job_id}")

    def _handle_failed(self, msg: TaskFailed) -> None:
        job = self._jobs.get(msg.job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        task = job.task(msg.kind, msg.task_id)
        key = (msg.job_id, msg.kind, msg.task_id)
        attempts = self._running_attempts.get(key, [])
        self._running_attempts[key] = [a for a in attempts if a[1] != msg.attempt]
        if task.state == "done":
            return
        job.bump("failed_attempts")
        if task.attempts >= job.conf.max_attempts:
            job.mark_finished(
                JobState.FAILED,
                reason=f"{msg.kind.value} task {msg.task_id} failed {task.attempts} times: {msg.reason}",
            )
            return
        task.state = "pending"
        pending = (
            self._pending_maps if msg.kind is TaskKind.MAP else self._pending_reduces
        ).setdefault(msg.job_id, [])
        if msg.task_id not in pending:
            pending.append(msg.task_id)

    def _finish_job(self, job: Job) -> Generator:
        yield self.env.timeout(self.calib.job_cleanup_s)
        if job.state is JobState.RUNNING or job.state is JobState.PREP:
            job.mark_finished(JobState.SUCCEEDED)
            if self.tracer.enabled:
                self.tracer.emit("jobtracker", "job_done", job=job.job_id)

    # -- failure detection ---------------------------------------------------------------
    def _failure_monitor(self) -> Generator:
        interval = self.calib.heartbeat_interval_s
        while True:
            yield self.env.pooled_timeout(interval)
            now = self.env.now
            for tracker_id in list(self._trackers):
                if now - self._last_seen.get(tracker_id, now) > self.calib.heartbeat_timeout_s:
                    self._declare_lost(tracker_id)

    def _declare_lost(self, tracker_id: int) -> None:
        """Remove a dead tracker and reschedule everything it owed us."""
        self._trackers.pop(tracker_id, None)
        self._last_seen.pop(tracker_id, None)
        if self.tracer.enabled:
            self.tracer.emit("jobtracker", "tracker_lost", tracker=tracker_id)
        for key, attempts in list(self._running_attempts.items()):
            job_id, kind, task_id = key
            remaining = [a for a in attempts if a[0] != tracker_id]
            if len(remaining) == len(attempts):
                continue
            self._running_attempts[key] = remaining
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                continue
            task = job.task(kind, task_id)
            if task.state == "running" and not remaining:
                task.state = "pending"
                pending = (
                    self._pending_maps if kind is TaskKind.MAP else self._pending_reduces
                ).setdefault(job_id, [])
                if task_id not in pending:
                    pending.append(task_id)
                job.bump("rescheduled_tasks")
        # Completed map outputs on the dead node are gone; jobs with
        # reducers still shuffling must re-run those maps.
        for job in self._jobs.values():
            if job.state is not JobState.RUNNING or not job.reduces:
                continue
            if job.reduces_all_done:
                continue
            for task in job.maps.values():
                out = self.map_outputs.get((job.job_id, task.task_id))
                if task.state == "done" and out is not None and out.node_id == tracker_id:
                    task.state = "pending"
                    job.note_task_undone(TaskKind.MAP)
                    task.attempts = 0
                    self.map_outputs.pop((job.job_id, task.task_id), None)
                    pending = self._pending_maps.setdefault(job.job_id, [])
                    if task.task_id not in pending:
                        pending.append(task.task_id)
                    if job.maps_done_time >= 0:
                        job.maps_done_time = -1.0
                    job.bump("rerun_completed_maps")
