"""Job configuration.

Mirrors the knobs the paper describes: "Hadoop allows the programmer to
have two different work partition levels: the first level defines the
work assignment unit of a node (which is named split) and the second
level defines the work unit of a map() function (which is named record)"
(§III-A); "the data was partitioned ... using an split size of
FileSize/NumMappers and a record size of 64MB" (§IV-A).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional

from repro.perf.calibration import Backend

__all__ = ["JobConf"]


@dataclass
class JobConf:
    """Configuration for one MapReduce job.

    Attributes
    ----------
    name: job identifier (appears in traces).
    workload: ``"aes"``, ``"pi"``, ``"sort"``, or ``"empty"`` — selects
        the kernel pair and whether the job is data- or compute-driven.
    backend: which kernel implementation the mappers invoke (the paper's
        Java vs. Cell-accelerated configurations).
    input_path: HDFS input file (data-driven workloads).
    num_map_tasks: number of splits. The paper sets this to the number
        of mapper slots (FileSize/NumMappers split size); leave None to
        derive one split per HDFS block instead.
    samples: total Monte-Carlo samples (Pi workload).
    record_bytes: map()-level work unit (paper: 64 MB).
    num_reduce_tasks: 0 for the paper's map-only encryption job; 1 for
        the Pi estimator's aggregation.
    output_replication: replication of job output files.
    speculative: enable speculative re-execution of stragglers.
    max_attempts: per-task attempt budget before the job fails.
    fallback_backend: kernel to use when a task lands on a node without
        the accelerator the primary backend needs (the §V heterogeneous-
        cluster scenario). None (default) makes such attempts fail.
    scheduler: placement policy this job expects the cluster to run
        (a :mod:`repro.sched` registry name, e.g. ``"fair"``). The
        policy is JobTracker-level; helpers apply the first submitted
        job's request when the cluster was not configured explicitly.
        None (default) accepts whatever policy is active.
    weight: fair-share weight under the ``fair`` scheduler (relative
        slot share in a multi-job workload; ignored elsewhere).
    """

    name: str = "job"
    workload: str = "aes"
    backend: Backend = Backend.JAVA_PPE
    input_path: Optional[str] = None
    num_map_tasks: Optional[int] = None
    samples: float = 0.0
    record_bytes: int = 64 * 1024 * 1024
    num_reduce_tasks: int = 0
    output_replication: int = 1
    speculative: bool = False
    max_attempts: int = 4
    fallback_backend: Optional[Backend] = None
    scheduler: Optional[str] = None
    weight: float = 1.0
    aes_key: Optional[bytes] = None
    """Functional-verification mode: when set (16 bytes) and the input
    carries real payload bytes, each mapper actually AES-128-CTR
    encrypts its records; the per-task ciphertext is exposed through the
    map-output registry so a test can verify the distributed result
    bit-for-bit against a single-pass reference."""
    aes_nonce: bytes = b"\x00" * 8

    def __post_init__(self) -> None:
        if self.workload not in ("aes", "pi", "sort", "empty", "wordcount"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.workload == "pi":
            if self.samples <= 0:
                raise ValueError("pi workload requires samples > 0")
            if self.num_map_tasks is None:
                raise ValueError("pi workload requires an explicit num_map_tasks")
        else:
            if self.input_path is None:
                raise ValueError(f"{self.workload} workload requires input_path")
        if self.record_bytes <= 0:
            raise ValueError("record_bytes must be positive")
        if self.num_reduce_tasks < 0:
            raise ValueError("num_reduce_tasks must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.scheduler is not None:
            # Deferred import: repro.sched depends on hadoop.job, which
            # imports this module.
            from repro.sched.base import resolve_scheduler

            try:
                resolve_scheduler(self.scheduler)
            except KeyError as exc:
                raise ValueError(exc.args[0]) from None
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.aes_key is not None and len(self.aes_key) != 16:
            raise ValueError("aes_key must be 16 bytes (AES-128)")
        if len(self.aes_nonce) != 8:
            raise ValueError("aes_nonce must be 8 bytes")

    @property
    def is_data_driven(self) -> bool:
        """True when mappers consume HDFS input (AES/sort/empty)."""
        return self.workload != "pi"

    def evolve(self, **changes) -> "JobConf":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe description of the job (sweep manifests, traces)."""
        d = asdict(self)
        d["backend"] = self.backend.value
        if self.fallback_backend is not None:
            d["fallback_backend"] = self.fallback_backend.value
        if self.aes_key is not None:
            d["aes_key"] = self.aes_key.hex()
        d["aes_nonce"] = self.aes_nonce.hex()
        return d
