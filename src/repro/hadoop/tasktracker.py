"""The TaskTracker: per-blade task execution agent.

"The process that controls the execution of the map tasks inside a node
is named TaskTracker. This process receives a split description, divides
the split data into records ... and launches the processes that will
execute the map tasks (Mappers). The programmer can also decide how many
simultaneous map() functions wants to execute on a node" (§III-A). The
paper runs two Mappers per blade — one per Cell socket.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import repro.modelmode as modelmode
import repro.obs as obs
from repro.hadoop.job import TaskKind
from repro.hadoop.messages import (
    Assignment,
    AssignmentReply,
    Heartbeat,
    KillDirective,
    TaskDone,
    TaskFailed,
)
from repro.hadoop.tasks import TaskContext, run_map_task, run_reduce_task
from repro.sim.events import Interrupt, Process
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.hadoop.jobtracker import JobTracker

__all__ = ["TaskTracker"]


def _is_assignment_reply(msg) -> bool:
    """Mailbox filter for heartbeat replies (module-level: the heartbeat
    loop runs thousands of rounds, so no per-round closure)."""
    return isinstance(msg, AssignmentReply)


class TaskTracker:
    """Heartbeat-driven task execution on one worker blade.

    Parameters
    ----------
    jobtracker: the cluster's JobTracker.
    node: the hosting blade.
    map_slots: simultaneous mappers (paper: 2).
    reduce_slots: simultaneous reducers.
    """

    def __init__(
        self,
        jobtracker: "JobTracker",
        node: "Node",
        map_slots: Optional[int] = None,
        reduce_slots: int = 1,
    ):
        self.jt = jobtracker
        self.node = node
        self.env = node.env
        self.calib = jobtracker.calib
        self.map_slots = map_slots if map_slots is not None else self.calib.mappers_per_node
        self.reduce_slots = reduce_slots
        self.mailbox = Store(self.env)
        self.alive = True
        self._running: dict[tuple[int, TaskKind, int, int], Process] = {}
        self._used_map_slots = 0
        self._used_reduce_slots = 0
        self._slot_in_use: list[bool] = [False] * self.map_slots
        self._proc: Optional[Process] = None
        # Event-thin heartbeat state (see repro.modelmode): a dirty flag
        # forces the next heartbeat out even when nothing else would;
        # while parked, the loop waits for a poke or the keepalive
        # deadline instead of emitting work-less fixed-interval rounds.
        self._event_thin = jobtracker.event_thin
        self._dirty = True
        self._wait_kind: Optional[str] = None  # None | "parked" | "resting"
        self._rejitter = False
        self._next_keepalive = 0.0
        self._keepalive_s = self.calib.heartbeat_timeout_s * modelmode.KEEPALIVE_FACTOR
        self.heartbeat_parks = 0
        """Work-less heartbeat rounds replaced by a park (diagnostics)."""
        # Telemetry handle, pre-sampled at construction: None keeps the
        # exchange loop at a single `is None` test per heartbeat.
        self._obs_hb_latency = (
            obs.registry().histogram(
                "sim_heartbeat_service_latency_seconds",
                "Virtual time from heartbeat send to assignment reply",
            )
            if obs.enabled()
            else None
        )
        jobtracker.register_tracker(self)

    @property
    def tracker_id(self) -> int:
        return self.node.node_id

    @property
    def free_map_slots(self) -> int:
        return self.map_slots - self._used_map_slots

    @property
    def free_reduce_slots(self) -> int:
        return self.reduce_slots - self._used_reduce_slots

    @property
    def running_count(self) -> int:
        return len(self._running)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> Process:
        """Begin the heartbeat loop."""
        self._proc = self.env.process(self._heartbeat_loop(), name=f"tt-{self.tracker_id}")
        return self._proc

    def kill(self) -> None:
        """Fail-stop this tracker (fault injection): heartbeats cease and
        all running task attempts die silently — exactly what the
        JobTracker's timeout machinery must recover from."""
        self.alive = False
        for proc in list(self._running.values()):
            if proc.is_alive:
                proc.interrupt("node failure")
        # Slot counters unwind through each attempt's finally block.

    # -- heartbeat protocol ----------------------------------------------------------
    def poke(self, dirty: bool = False, urgent: bool = False) -> None:
        """Wake a sleeping heartbeat loop early (event-thin mode).

        ``dirty=True`` marks local state changed (slot release), which
        forces the next heartbeat out even if the elision predicate
        would skip it. ``urgent=True`` (a kill waiting at the JobTracker)
        always wakes. A non-urgent poke wakes the loop only when an
        immediate heartbeat could accomplish something: this tracker has
        a free slot to offer *and* the cluster has work to hand out —
        otherwise the sleep (and the heartbeat phase) is left alone and
        the dirty flag simply makes the next scheduled round un-elidable.

        Clearing ``_wait_kind`` *before* interrupting makes a
        same-instant double poke a no-op instead of a stray Interrupt
        into the next protocol step.
        """
        if dirty:
            self._dirty = True
        if self._wait_kind is None:
            return
        if not urgent:
            if self._wait_kind == "resting":
                # Mid-cadence trackers keep their phase: the next
                # scheduled round is at most one interval away and the
                # dirty flag guarantees it goes out — exactly what the
                # fixed-interval protocol would deliver.
                return
            if self.free_map_slots == 0 and self.free_reduce_slots == 0:
                return  # nothing to offer; keepalive covers liveness
            if not self.jt.has_demand():
                return  # nothing to fetch; the dirty flag persists
            # A parked tracker lost its heartbeat phase; rather than
            # reporting instantly (which would synchronize every parked
            # tracker onto the demand event and compress the assignment
            # ramp the paper's JobTracker serialization spreads out), it
            # re-enters the cadence at a fresh jittered phase.
            self._rejitter = True
        self._wait_kind = None
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("poke")

    def _may_skip_heartbeat(self) -> bool:
        """The elision predicate: this round's heartbeat carries nothing.

        True when nothing changed locally since the last report
        (``_dirty`` clear) and either every slot is busy (the scheduler
        could not place work here) or the cluster has no demand for the
        free slots (nothing pending, nothing speculatable). Time-driven
        policy behaviour — straggler speculation, delay-scheduling
        patience — only needs heartbeats from trackers with free slots
        *while demand exists*, and those keep the fixed cadence.
        """
        if self._dirty:
            return False
        if self.free_map_slots == 0 and self.free_reduce_slots == 0:
            return True
        return not self.jt.has_demand()

    def _interruptible_sleep(self, duration: float, kind: str) -> Generator:
        """Sleep that a :meth:`poke` may cut short (event-thin mode)."""
        self._wait_kind = kind
        try:
            yield self.env.timeout(duration)
        except Interrupt:
            pass
        finally:
            self._wait_kind = None

    def _heartbeat_loop(self) -> Generator:
        jitter_rng = self.jt.rng.stream(f"tt-jitter-{self.tracker_id}")
        interval = self.calib.heartbeat_interval_s
        # Desynchronize tracker phases like real daemon start-up does.
        yield self.env.pooled_timeout(float(jitter_rng.uniform(0, interval)))
        while self.alive:
            if self._rejitter:
                # Woken from a park by a demand signal: rejoin the
                # heartbeat cadence at a fresh phase, like a restarted
                # daemon, instead of synchronizing on the wake instant.
                self._rejitter = False
                yield self.env.pooled_timeout(float(jitter_rng.uniform(0, interval)))
                continue
            if self._event_thin and self._may_skip_heartbeat():
                # Park until poked, but never past the keepalive
                # deadline — the failure detector must keep seeing us.
                wait = self._next_keepalive - self.env.now
                if wait > 0:
                    self.heartbeat_parks += 1
                    yield from self._interruptible_sleep(wait, "parked")
                    continue  # re-evaluate with fresh state
            hb = Heartbeat(
                tracker_id=self.tracker_id,
                free_map_slots=self.free_map_slots,
                free_reduce_slots=self.free_reduce_slots,
            )
            self._dirty = False
            self._next_keepalive = self.env.now + self._keepalive_s
            sent_at = self.env.now
            yield self.jt.inbox.put((hb, self.mailbox))
            reply = yield self.mailbox.get(_is_assignment_reply)
            if self._obs_hb_latency is not None:
                self._obs_hb_latency.observe(self.env.now - sent_at)
            for kill in reply.kills:
                self._kill_attempt(kill)
            # Launch every assignment from this reply in one batch: the
            # attempt processes are created deferred and their start
            # events are pushed with a single schedule_many pass.
            started = [proc for a in reply.assignments if (proc := self._launch(a)) is not None]
            if started:
                self.env.start_processes(started)
            sleep_s = interval * float(jitter_rng.uniform(0.95, 1.05))
            if self._event_thin:
                # The between-rounds rest is also wakeable: when demand
                # appears (job arrival, reduces unlocked, requeue) a
                # free-slotted tracker reports in immediately instead of
                # waiting out its interval.
                yield from self._interruptible_sleep(sleep_s, "resting")
            else:
                yield self.env.pooled_timeout(sleep_s)

    def _kill_attempt(self, kill: KillDirective) -> None:
        key = (kill.job_id, kill.kind, kill.task_id, kill.attempt)
        proc = self._running.get(key)
        if proc is not None and proc.is_alive:
            proc.interrupt("killed by jobtracker")

    def _launch(self, assignment: Assignment) -> Optional[Process]:
        """Create an attempt process, binding map attempts to a free
        slot/socket; returns it unstarted (the heartbeat loop batches the
        start events).

        Slot accounting happens here (synchronously) so two assignments
        arriving in one reply cannot race for the same Cell socket.
        """
        if not self.alive:
            return None
        is_map = assignment.kind is TaskKind.MAP
        if is_map:
            free = self.free_slot_indices()
            if not free:
                return None  # stale assignment; the JobTracker will reissue
            slot = free[0]
            self._used_map_slots += 1
            self._slot_in_use[slot] = True
        else:
            if self.free_reduce_slots <= 0:
                return None
            slot = 0
            self._used_reduce_slots += 1
        key = (assignment.job_id, assignment.kind, assignment.task_id, assignment.attempt)
        proc = self.env.process(
            self._run_attempt(assignment, slot),
            name=f"attempt-{assignment.kind.value}{assignment.task_id}.{assignment.attempt}@{self.tracker_id}",
            start=False,
        )
        self._running[key] = proc
        return proc

    def _run_attempt(self, assignment: Assignment, slot: int) -> Generator:
        key = (assignment.job_id, assignment.kind, assignment.task_id, assignment.attempt)
        job = self.jt.job_by_id(assignment.job_id)
        task = job.task(assignment.kind, assignment.task_id)
        is_map = assignment.kind is TaskKind.MAP
        ctx = TaskContext(
            env=self.env,
            node=self.node,
            client=self.jt.client,
            calib=self.calib,
            tracer=self.jt.tracer,
            map_outputs=self.jt.map_outputs,
            event_thin=self._event_thin,
        )
        try:
            if is_map:
                stats = yield from run_map_task(ctx, job, task, slot)
            else:
                stats = yield from run_reduce_task(ctx, job, task, slot, self.jt.cluster_nodes)
            if self.alive:
                yield self.jt.inbox.put(
                    (
                        TaskDone(
                            tracker_id=self.tracker_id,
                            job_id=assignment.job_id,
                            kind=assignment.kind,
                            task_id=assignment.task_id,
                            attempt=assignment.attempt,
                            stats=stats,
                        ),
                        self.mailbox,
                    )
                )
        except Interrupt:
            pass  # killed: the JobTracker already knows or will time us out
        except Exception as exc:  # noqa: BLE001 - converted to TaskFailed
            if self.alive:
                yield self.jt.inbox.put(
                    (
                        TaskFailed(
                            tracker_id=self.tracker_id,
                            job_id=assignment.job_id,
                            kind=assignment.kind,
                            task_id=assignment.task_id,
                            attempt=assignment.attempt,
                            reason=f"{type(exc).__name__}: {exc}",
                        ),
                        self.mailbox,
                    )
                )
        finally:
            self._running.pop(key, None)
            if is_map:
                self._used_map_slots = max(0, self._used_map_slots - 1)
                self._slot_in_use[slot] = False
            else:
                self._used_reduce_slots = max(0, self._used_reduce_slots - 1)
            if self._event_thin:
                # Slot released: local state changed, so the next
                # heartbeat must go out — and if the loop is parked,
                # right now (the demand-driven wakeup).
                self.poke(dirty=True)

    def free_slot_indices(self) -> list[int]:
        """Map slot indices currently idle (socket binding for the bridge)."""
        return [i for i, used in enumerate(self._slot_in_use) if not used]
