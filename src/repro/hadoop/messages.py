"""Wire messages between TaskTrackers and the JobTracker.

All coordination rides on heartbeats, as in Hadoop 0.19: "if a node in
the system becomes idle, the JobTracker picks a new job from its queue to
feed it ... during the process of a split the TaskTracker sends periodic
heartbeats to the JobTracker" (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.hadoop.job import TaskKind

__all__ = [
    "Assignment",
    "AssignmentReply",
    "Heartbeat",
    "KillDirective",
    "TaskDone",
    "TaskFailed",
]


@dataclass(frozen=True)
class Heartbeat:
    """TaskTracker → JobTracker liveness + capacity report."""

    tracker_id: int
    free_map_slots: int
    free_reduce_slots: int


@dataclass(frozen=True)
class Assignment:
    """JobTracker → TaskTracker: run one task attempt."""

    job_id: int
    kind: TaskKind
    task_id: int
    attempt: int
    slot: int


@dataclass(frozen=True)
class KillDirective:
    """JobTracker → TaskTracker: abort an obsolete attempt."""

    job_id: int
    kind: TaskKind
    task_id: int
    attempt: int


@dataclass(frozen=True)
class AssignmentReply:
    """Response to one heartbeat."""

    assignments: tuple[Assignment, ...] = ()
    kills: tuple[KillDirective, ...] = ()


@dataclass(frozen=True)
class TaskDone:
    """TaskTracker → JobTracker: attempt finished successfully."""

    tracker_id: int
    job_id: int
    kind: TaskKind
    task_id: int
    attempt: int
    stats: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TaskFailed:
    """TaskTracker → JobTracker: attempt failed."""

    tracker_id: int
    job_id: int
    kind: TaskKind
    task_id: int
    attempt: int
    reason: str = ""
