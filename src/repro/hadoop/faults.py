"""Fault and membership-churn injection helpers.

Two layers of disturbance, both riding the same heartbeat machinery:

- **Fail-stop crashes** (:class:`FaultPlan` / :func:`kill_node_at`):
  a TaskTracker's heartbeats cease, its running attempts die, and
  (optionally) its DataNode's replicas disappear — the scenario
  Hadoop's heartbeat-timeout machinery exists for (§III-A).
- **Membership churn** (:class:`ChurnPlan` / :func:`apply_churn`):
  scripted join/leave timelines — elastic grow/shrink, spot-instance
  revocation storms, leave-then-rejoin — against a *running* cluster.
  Leaves reuse the fail-stop path; joins go through
  ``SimulatedCluster.add_worker_now`` so the new blade heartbeats and
  receives work immediately (§V: dynamically variable environments).

A churn *leave* differs from a classic fault in its default blast
radius: spot revocation takes the compute away but is not a disk
failure, so ``kill_datanode`` defaults to ``False`` here (replicas
survive; only attempts are lost) while :class:`FaultPlan` keeps the
destructive default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simexec import SimulatedCluster
    from repro.hadoop.jobtracker import JobTracker
    from repro.hadoop.tasktracker import TaskTracker
    from repro.hdfs.namenode import NameNode
    from repro.sim.engine import Environment

__all__ = [
    "ChurnEvent",
    "ChurnPlan",
    "FaultPlan",
    "apply_churn",
    "kill_node_at",
]


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fail-stop crash."""

    node_id: int
    at_time: float
    kill_datanode: bool = True


def kill_node_at(
    env: "Environment",
    tracker: "TaskTracker",
    plan: FaultPlan,
    namenode: Optional["NameNode"] = None,
):
    """Schedule a fail-stop crash of ``tracker``'s node at ``plan.at_time``.

    Returns the injection process (joinable). When ``kill_datanode`` and a
    NameNode are given, the node's replicas are dropped too — with the
    paper's replication=1 this makes the affected blocks unrecoverable,
    which is exactly the failure mode the fault-tolerance tests probe.
    """

    def _inject() -> Generator:
        delay = plan.at_time - env.now
        if delay > 0:
            yield env.timeout(delay)
        tracker.kill()
        if plan.kill_datanode and namenode is not None:
            namenode.handle_datanode_failure(plan.node_id)

    return env.process(_inject(), name=f"fault-{plan.node_id}")


# --------------------------------------------------------------------------- #
# Membership churn                                                             #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at a simulation time.

    ``action`` is ``"join"`` (a fresh blade enters; ``node_id`` is
    ignored — ids are assigned by the cluster, never reused) or
    ``"leave"`` (a blade is revoked). A leave with ``node_id=None``
    takes the *youngest live* worker at event time — the natural victim
    order for spot revocation, and the only way a parse-time plan can
    name nodes it has not seen joined yet.
    """

    at_time: float
    action: str
    node_id: Optional[int] = None
    kill_datanode: bool = False
    accelerated: bool = True

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise ValueError(f"unknown churn action {self.action!r}")
        if self.at_time < 0:
            raise ValueError("churn events cannot be scheduled in the past")


@dataclass(frozen=True)
class ChurnPlan:
    """A scripted membership timeline: an ordered set of churn events.

    Events fire in ``(at_time, declaration order)`` — simultaneous
    events are applied in the order written, so a plan can deterministically
    express "replace node 3 at t=40" as a leave followed by a join.
    """

    events: tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- canned shapes -------------------------------------------------------
    @classmethod
    def spot_storm(
        cls,
        node_ids: Sequence[int],
        at_time: float,
        window_s: float = 0.0,
        replace_after_s: Optional[float] = None,
        kill_datanode: bool = False,
    ) -> "ChurnPlan":
        """A spot-revocation storm: the given nodes leave, spread evenly
        across ``[at_time, at_time + window_s]``. When ``replace_after_s``
        is set, one replacement blade joins that long after each
        revocation (the autoscaler winning the capacity back)."""
        ids = list(node_ids)
        if not ids:
            return cls()
        step = window_s / max(1, len(ids) - 1) if window_s > 0 else 0.0
        events: list[ChurnEvent] = []
        for i, node_id in enumerate(ids):
            t = at_time + i * step
            events.append(
                ChurnEvent(t, "leave", node_id, kill_datanode=kill_datanode)
            )
            if replace_after_s is not None:
                events.append(ChurnEvent(t + replace_after_s, "join"))
        return cls(tuple(events))

    @classmethod
    def elastic(
        cls,
        joins: Sequence[float] = (),
        leaves: Sequence[tuple[float, Optional[int]]] = (),
        kill_datanode: bool = False,
    ) -> "ChurnPlan":
        """Free-form grow/shrink: ``joins`` are join times, ``leaves``
        are ``(time, node_id)`` pairs (``node_id=None`` → youngest live
        worker at that moment)."""
        events = [ChurnEvent(t, "join") for t in joins]
        events += [
            ChurnEvent(t, "leave", node_id, kill_datanode=kill_datanode)
            for t, node_id in leaves
        ]
        return cls(tuple(events))

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "ChurnPlan":
        """Build a plan from CLI specs (repeatable ``--churn`` values):

        - ``join@T`` — one blade joins at time ``T``
        - ``leave@T`` / ``leave@T:NODE`` — a blade leaves at ``T``
          (youngest live worker when ``NODE`` is omitted)
        - ``storm@T:K`` / ``storm@T:K/W`` — ``K`` youngest-live blades
          revoked starting at ``T``, spread over window ``W`` seconds
        """
        events: list[ChurnEvent] = []
        for spec in specs:
            try:
                action, _, rest = spec.partition("@")
                if action == "join":
                    events.append(ChurnEvent(float(rest), "join"))
                elif action == "leave":
                    t_str, _, node_str = rest.partition(":")
                    node = int(node_str) if node_str else None
                    events.append(ChurnEvent(float(t_str), "leave", node))
                elif action == "storm":
                    t_str, _, k_str = rest.partition(":")
                    k_str, _, w_str = k_str.partition("/")
                    at, count = float(t_str), int(k_str)
                    window = float(w_str) if w_str else 0.0
                    if count <= 0:
                        raise ValueError("storm size must be positive")
                    step = window / max(1, count - 1) if window > 0 else 0.0
                    events += [
                        ChurnEvent(at + i * step, "leave", None)
                        for i in range(count)
                    ]
                else:
                    raise ValueError(f"unknown churn action {action!r}")
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad churn spec {spec!r} (want join@T, leave@T[:NODE], "
                    f"or storm@T:K[/W]): {exc}"
                ) from None
        return cls(tuple(events))


def _youngest_live(sim: "SimulatedCluster") -> Optional[int]:
    """Highest-id worker still heartbeating, or None if the storm has
    already taken everyone (node ids are assigned in join order and
    never reused, so highest id == most recently joined)."""
    live = [t.tracker_id for t in sim.trackers if t.alive]
    return max(live) if live else None


def apply_churn(env: "Environment", sim: "SimulatedCluster", plan: ChurnPlan):
    """Schedule ``plan`` against a running cluster; returns the driver
    process (joinable).

    Events are applied in ``(at_time, declaration order)``. A leave
    naming a node that is already dead — or a youngest-live leave when
    nothing is left alive — is a no-op rather than an error: revocation
    storms legitimately race fault injection and each other.
    """
    ordered = sorted(enumerate(plan.events), key=lambda p: (p[1].at_time, p[0]))

    def _drive() -> Generator:
        for _, ev in ordered:
            delay = ev.at_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            if ev.action == "join":
                sim.add_worker_now(accelerated=ev.accelerated)
                continue
            node_id = ev.node_id
            if node_id is None:
                node_id = _youngest_live(sim)
            if node_id is None:
                continue
            tracker = next(
                (t for t in sim.trackers if t.tracker_id == node_id), None
            )
            if tracker is None or not tracker.alive:
                continue
            sim.decommission(node_id, kill_datanode=ev.kill_datanode)

    return env.process(_drive(), name="churn-driver")
