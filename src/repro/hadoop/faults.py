"""Fault injection helpers.

Fail-stop node crashes: the TaskTracker's heartbeats cease, its running
attempts die, and (optionally) its DataNode's replicas disappear — the
scenario Hadoop's heartbeat-timeout machinery exists for (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.jobtracker import JobTracker
    from repro.hadoop.tasktracker import TaskTracker
    from repro.hdfs.namenode import NameNode
    from repro.sim.engine import Environment

__all__ = ["FaultPlan", "kill_node_at"]


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fail-stop crash."""

    node_id: int
    at_time: float
    kill_datanode: bool = True


def kill_node_at(
    env: "Environment",
    tracker: "TaskTracker",
    plan: FaultPlan,
    namenode: Optional["NameNode"] = None,
):
    """Schedule a fail-stop crash of ``tracker``'s node at ``plan.at_time``.

    Returns the injection process (joinable). When ``kill_datanode`` and a
    NameNode are given, the node's replicas are dropped too — with the
    paper's replication=1 this makes the affected blocks unrecoverable,
    which is exactly the failure mode the fault-tolerance tests probe.
    """

    def _inject() -> Generator:
        delay = plan.at_time - env.now
        if delay > 0:
            yield env.timeout(delay)
        tracker.kill()
        if plan.kill_datanode and namenode is not None:
            namenode.handle_datanode_failure(plan.node_id)

    return env.process(_inject(), name=f"fault-{plan.node_id}")
