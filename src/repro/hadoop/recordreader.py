"""The RecordReader: split → records, through the slow delivery path.

This class models the paper's central measurement: "the next method in
the application RecordReader class, what is used by the Hadoop runtime
to send data to the mappers, was spending several seconds to send the
data from the DataNode to the TaskTracker through the loopback
interface, at a much slower rate than the actual maximum rate that can
be delivered by such a virtual network interface, even in the case that
all the data was resident in the OS buffer cache" (§IV-A).

Each ``next()`` therefore charges, in series:

1. the DataNode block-serving path (disk + loopback/network transfer,
   both contended resources), and
2. the Hadoop software path — deserialization, buffer copies, key/value
   construction — at :attr:`CalibrationProfile.recordreader_stream_bw`
   plus a fixed per-record overhead.

Stage 2 is the dominant term (10 MB/s vs. 70/120 MB/s), which is
precisely the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.hadoop.split import InputSplit

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.hdfs.client import HDFSClient
    from repro.perf.calibration import CalibrationProfile
    from repro.sim.trace import Tracer

__all__ = ["RecordReader", "RecordBatch"]


@dataclass
class RecordBatch:
    """One record delivered to a mapper."""

    index: int
    nbytes: int
    remote_bytes: int
    payload: Optional[bytes] = None
    offset: int = 0
    """Absolute byte offset of the record within the input file."""


class RecordReader:
    """Iterates the records of one split on behalf of a mapper.

    Parameters
    ----------
    client: HDFS client for block reads.
    split: the split to read.
    node: the TaskTracker's node (destination of every transfer).
    calib: calibration profile (record size, delivery rates).
    tracer: optional tracer.
    """

    def __init__(
        self,
        client: "HDFSClient",
        split: InputSplit,
        node: "Node",
        calib: "CalibrationProfile",
        tracer: Optional["Tracer"] = None,
    ):
        self.client = client
        self.split = split
        self.node = node
        self.calib = calib
        self.tracer = tracer
        self.env = node.env
        self.records_read = 0
        self.bytes_read = 0
        self.remote_bytes = 0
        # Pre-sampled tracing flag: delivery spans cost nothing unless
        # the tracer is present *and* enabled.
        self._tracing = tracer is not None and tracer.enabled

    def record_ranges(self) -> list[tuple[int, int]]:
        """(offset, length) of each record in the split."""
        ranges = []
        off = self.split.offset
        end = self.split.end
        while off < end:
            length = min(self.calib.record_bytes, end - off)
            ranges.append((off, length))
            off += length
        return ranges

    @property
    def num_records(self) -> int:
        return len(self.record_ranges())

    def read_record(self, offset: int, length: int, index: int) -> Generator:
        """Process: deliver one record; returns a :class:`RecordBatch`."""
        span = (
            self.tracer.span(
                "recordreader",
                "deliver",
                track=f"node{self.node.node_id}/recordreader",
                split=self.split.split_id,
                index=index,
            )
            if self._tracing
            else None
        )
        meta = self.client.namenode.file_meta(self.split.path)
        blocks = meta.blocks_for_range(offset, length)
        remote = 0
        parts: list[bytes] = []
        have_payload = True
        for block in blocks:
            b_start = meta.block_offset(block.index)
            lo = max(offset, b_start)
            hi = min(offset + length, b_start + block.size)
            want = hi - lo
            if want <= 0:
                continue
            replica = self.client.choose_replica(block, self.node)
            if replica != self.node.node_id:
                remote += want
            dn = self.client.namenode.datanode(replica)
            data = yield from dn.serve_block(block, self.node, length=want)
            if data is None:
                have_payload = False
            else:
                # Functional path: slice the exact sub-range of the block.
                start_in_block = lo - b_start
                full = dn.payload(block.block_id)
                parts.append(full[start_in_block : start_in_block + want])
        # Hadoop software path: the slow stage the paper measured.
        software_s = (
            self.calib.recordreader_per_record_s
            + length / self.calib.recordreader_stream_bw
        )
        yield self.env.pooled_timeout(software_s)
        self.records_read += 1
        self.bytes_read += length
        self.remote_bytes += remote
        if span is not None:
            span.end(nbytes=length, remote=remote)
        if self.tracer is not None:
            self.tracer.emit(
                "recordreader",
                "record",
                split=self.split.split_id,
                index=index,
                nbytes=length,
                remote=remote,
            )
        payload = b"".join(parts) if have_payload and parts else None
        return RecordBatch(
            index=index, nbytes=length, remote_bytes=remote, payload=payload, offset=offset
        )
