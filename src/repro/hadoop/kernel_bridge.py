"""The "JNI" boundary: map() invokes a backend-specific kernel.

"The implementation of the map() function invokes the routine to execute
the distribution of both work and data inside one node, and waits until
the parallel computation inside the node is finished" (§III-A). This
module is that routine: given a backend it routes each record (or sample
batch) to the PPE, a Power6 core, or one of the node's Cell sockets
through the appropriate offload runtime, and accounts kernel-busy time
for the energy model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import repro.modelmode as modelmode
from repro.perf.calibration import Backend, CalibrationProfile
from repro.cell.runtime import CellMapReduceRuntime, DirectSPERuntime, OffloadRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["MapKernel"]


class MapKernel:
    """Per-task-attempt kernel executor.

    A fresh instance is created for every task attempt, so one-time
    startup costs (SPE context creation, JIT warm-up) are charged per
    attempt — exactly as the paper's per-task JNI invocation does.

    Parameters
    ----------
    node: the blade executing the task.
    slot: mapper slot index; slot *i* drives Cell socket *i* (the paper
        runs "1 Mapper ... in each of the two Cell processors").
    backend: kernel implementation to use.
    workload: ``"aes"``/``"pi"``/``"sort"``/``"empty"``.
    calib: calibration profile.
    """

    def __init__(
        self,
        node: "Node",
        slot: int,
        backend: Backend,
        workload: str,
        calib: CalibrationProfile,
        event_thin: Optional[bool] = None,
    ):
        self.node = node
        self.slot = slot
        self.backend = backend
        self.workload = workload
        self.calib = calib
        self.env = node.env
        self._started = False
        self._runtime: Optional[OffloadRuntime] = None
        # Model-protocol mode. A cluster-run kernel receives the
        # JobTracker's construction-time flag through the TaskContext,
        # so one simulation can never mix protocols even if the
        # repro.modelmode default flips mid-run; standalone construction
        # (raw single-node benches, unit tests) samples the default.
        self._thin = (not modelmode.REFERENCE_MODE) if event_thin is None else event_thin
        self.kernel_busy_s = 0.0

        if backend in (Backend.CELL_SPE_DIRECT, Backend.CELL_SPE_MAPREDUCE):
            if not node.cells:
                raise RuntimeError(
                    f"backend {backend.value} requires a Cell socket on {node.hostname}"
                )
            cell = node.cells[slot % len(node.cells)]
            cls = DirectSPERuntime if backend is Backend.CELL_SPE_DIRECT else CellMapReduceRuntime
            self._runtime = cls(
                cell,
                calib,
                startup_s=calib.kernel_startup_s(backend, workload),
                analytic_samples=self._thin,
            )
        elif backend is Backend.GPU_TESLA:
            if not node.gpus:
                raise RuntimeError(
                    f"backend {backend.value} requires a GPU on {node.hostname}"
                )
            from repro.gpu.runtime import GPUOffloadRuntime

            self._runtime = GPUOffloadRuntime(node.gpus[slot % len(node.gpus)])

    # -- internals ---------------------------------------------------------------
    def _java_startup_delay(self) -> float:
        """One-time JVM/JIT warm-up, folded into the first compute event."""
        if self._started:
            return 0.0
        self._started = True
        return self.calib.kernel_startup_s(self.backend, self.workload)

    def _record_busy(self, seconds: float) -> None:
        self.kernel_busy_s += seconds
        self.node.record_kernel_busy(seconds)

    def _wallclock_busy(self, result) -> float:
        """Convert an OffloadResult's busy metric to wall-clock device-
        active time: SPE busy is summed over 8 SPEs (divide), GPU busy
        is already single-device time."""
        if self.backend is Backend.GPU_TESLA:
            return result.spe_busy_s
        return result.spe_busy_s / self.calib.spes_per_cell

    # -- data-driven kernels --------------------------------------------------------
    def process_record(self, nbytes: int) -> Generator:
        """Process: run the streaming kernel over one record."""
        if self.backend is Backend.EMPTY or self.workload == "empty":
            return
        slow = self.node.speed_factor
        if self._runtime is not None:
            spe_bw = self.calib.aes_spe_bw / slow
            result = yield from self._runtime.offload_bytes(nbytes, spe_bw)
            self._record_busy(self._wallclock_busy(result))
            return
        # Java path: the mapper's own core streams through the kernel.
        # Startup (first record only) + stream time collapse into one
        # composite event.
        bw = self.calib.aes_backend_bw(self.backend)
        seconds = nbytes / bw * slow
        yield self.env.composite_timeout(self._java_startup_delay(), seconds)
        self._record_busy(seconds)

    # -- compute-driven kernels --------------------------------------------------------
    def run_samples(self, samples: float, lead_s: float = 0.0) -> Generator:
        """Process: run the Monte-Carlo kernel for ``samples`` samples.

        ``lead_s`` is a pure leading delay the caller wants folded into
        the kernel's first scheduled event (the task-launch cost — see
        ``hadoop.tasks.run_map_task``); nothing observable happens
        between it and the kernel wave, so merging it costs one event
        less per attempt while keeping the same total delay.
        """
        if self.backend is Backend.EMPTY:
            if lead_s > 0:
                yield self.env.pooled_timeout(lead_s)
            return
        slow = self.node.speed_factor
        if self._runtime is not None:
            rate = self.calib.pi_backend_rate(self.backend) / slow
            result = yield from self._runtime.offload_samples(samples, rate, lead_s=lead_s)
            self._record_busy(self._wallclock_busy(result))
            return
        rate = self.calib.pi_backend_rate(self.backend) / slow
        seconds = samples / rate
        if self._thin:
            yield self.env.composite_timeout(lead_s, self._java_startup_delay(), seconds)
        else:
            # Reference model: the launch delay stays its own event, so
            # the pre-overhaul timeline is reproduced byte for byte.
            if lead_s > 0:
                yield self.env.pooled_timeout(lead_s)
            yield self.env.composite_timeout(self._java_startup_delay(), seconds)
        self._record_busy(seconds)
