"""Map and reduce task processes.

A map task is the pipeline the paper describes and measures:

    RecordReader (DataNode → TaskTracker delivery)  →  bounded queue
      →  map() kernel via the backend bridge  →  output collection

Reading ahead of the kernel through a depth-2 queue reproduces Hadoop's
streaming behaviour; it is why the Java and Cell mappers tie in Fig. 4 —
both pipelines are bounded by the delivery stage, not the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.hadoop.config import JobConf
from repro.hadoop.job import Job, TaskKind, TaskRecord
from repro.hadoop.kernel_bridge import MapKernel
from repro.hadoop.recordreader import RecordReader
from repro.perf.calibration import Backend

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.hdfs.client import HDFSClient
    from repro.perf.calibration import CalibrationProfile
    from repro.sim.engine import Environment
    from repro.sim.trace import Tracer

from repro.sim.resources import Store

__all__ = ["TaskContext", "MapOutput", "run_map_task", "run_reduce_task"]

_SENTINEL = object()

PI_MAP_OUTPUT_BYTES = 128
"""A Pi mapper emits two longs (inside/outside counts) plus framing."""


@dataclass
class MapOutput:
    """Registry entry describing one completed map attempt's output."""

    node_id: int
    nbytes: float
    payload: Optional[bytes] = None
    """Real output bytes (functional-verification mode only)."""


@dataclass
class TaskContext:
    """Everything a task process needs from its host."""

    env: "Environment"
    node: "Node"
    client: "HDFSClient"
    calib: "CalibrationProfile"
    tracer: Optional["Tracer"] = None
    map_outputs: Optional[dict] = None
    """Shared registry: (job_id, map_task_id) → :class:`MapOutput`."""
    event_thin: Optional[bool] = None
    """The cluster's model-protocol mode (JobTracker-bound), threaded to
    kernels so a mid-run flip of the repro.modelmode default can never
    mix protocols inside one simulation. None falls back to the global
    default (engine-free unit-test / raw-bench construction)."""


def _map_output_bytes(conf: JobConf, input_bytes: float) -> float:
    """Output volume of one map task, by workload."""
    if conf.workload == "pi":
        return PI_MAP_OUTPUT_BYTES
    if conf.workload == "empty" or conf.backend is Backend.EMPTY:
        return 0.0
    # AES ciphertext and terasort records are size-preserving.
    return input_bytes


def run_map_task(
    ctx: TaskContext, job: Job, task: TaskRecord, slot: int
) -> Generator:
    """Process: one map task attempt. Returns a stats dict.

    Raises simulation-level exceptions (e.g. HDFSError for lost blocks)
    to the TaskTracker, which reports a TaskFailed.
    """
    env = ctx.env
    calib = ctx.calib
    conf = job.conf
    # Span plumbing is pre-sampled once per attempt: `tracing` is None
    # unless a tracer exists AND is enabled, so the per-record loop
    # below never pays for disabled tracing.
    tracing = ctx.tracer if (ctx.tracer is not None and ctx.tracer.enabled) else None
    lane = f"node{ctx.node.node_id}/slot{slot}"
    attempt_span = (
        tracing.span("task", f"map {task.task_id}", track=lane, job=job.job_id)
        if tracing is not None
        else None
    )
    if conf.workload == "pi":
        # Compute-driven attempts fold the launch delay into the kernel
        # wave (one composite event in event-thin model mode; the same
        # delay as a separate event otherwise) — nothing observable
        # happens between launch and the first kernel event.
        launch_lead = calib.task_launch_s
    else:
        launch_lead = 0.0
        yield env.pooled_timeout(calib.task_launch_s)

    backend = conf.backend
    needs_missing_accel = (
        backend in (Backend.CELL_SPE_DIRECT, Backend.CELL_SPE_MAPREDUCE)
        and not ctx.node.cells
    ) or (backend is Backend.GPU_TESLA and not ctx.node.gpus)
    if needs_missing_accel and conf.fallback_backend is not None:
        # §V heterogeneous clusters: a Cell-targeted task scheduled onto
        # a general-purpose node falls back to the portable kernel.
        backend = conf.fallback_backend
    kernel = MapKernel(
        ctx.node, slot, backend, conf.workload, calib, event_thin=ctx.event_thin
    )
    stats: dict[str, Any] = {
        "records": 0,
        "input_bytes": 0.0,
        "remote_bytes": 0.0,
        "output_bytes": 0.0,
        "kernel_busy_s": 0.0,
    }

    if conf.workload == "pi":
        kernel_span = (
            tracing.span("kernel", "run_samples", track=f"{lane}/kernel")
            if tracing is not None
            else None
        )
        yield from kernel.run_samples(task.samples, lead_s=launch_lead)
        if kernel_span is not None:
            kernel_span.end(busy_s=kernel.kernel_busy_s)
        stats["kernel_busy_s"] = kernel.kernel_busy_s
        stats["output_bytes"] = PI_MAP_OUTPUT_BYTES
        yield from ctx.node.disk.write(PI_MAP_OUTPUT_BYTES)
        _register_output(ctx, job, task, PI_MAP_OUTPUT_BYTES)
    else:
        assert task.split is not None
        reader = RecordReader(ctx.client, task.split, ctx.node, calib, ctx.tracer)
        depth = calib.record_pipeline_depth
        if depth > 0:
            # Streaming mode: the reader runs up to `depth` records ahead
            # of the kernel — Hadoop's normal behaviour, and the reason
            # kernel speed hides under delivery time in Figs. 4/5.
            queue = Store(env, capacity=depth)
            reader_proc = env.process(
                _reader_loop(reader, queue), name=f"reader-m{task.task_id}"
            )
        else:
            # Ablation mode: strictly serial read -> compute per record.
            queue = None
            reader_proc = None
        cipher = None
        if conf.aes_key is not None and conf.workload == "aes":
            from repro.workloads.aes import AES128

            cipher = AES128(conf.aes_key)
        ciphertext_parts: list[bytes] = []
        ranges = reader.record_ranges()
        serial_idx = 0
        try:
            while True:
                if queue is not None:
                    batch = yield queue.get()
                    if batch is _SENTINEL:
                        break
                    if isinstance(batch, BaseException):
                        raise batch
                else:
                    if serial_idx >= len(ranges):
                        break
                    off, length = ranges[serial_idx]
                    batch = yield from reader.read_record(off, length, serial_idx)
                    serial_idx += 1
                if tracing is not None:
                    kernel_span = tracing.span(
                        "kernel", "process_record", track=f"{lane}/kernel"
                    )
                    yield from kernel.process_record(batch.nbytes)
                    kernel_span.end(nbytes=batch.nbytes)
                else:
                    yield from kernel.process_record(batch.nbytes)
                if cipher is not None and batch.payload is not None:
                    # Functional-verification mode: really encrypt the
                    # record at its absolute CTR offset, like the Cell
                    # kernel encrypts each 4 KB chunk at its own offset.
                    ciphertext_parts.append(
                        bytes(
                            cipher.ctr_crypt(
                                batch.payload,
                                conf.aes_nonce,
                                initial_counter=batch.offset // 16,
                            )
                        )
                    )
                out = _map_output_bytes(conf, batch.nbytes)
                if out > 0:
                    # Spill the record's output to the local disk (map
                    # output semantics; map-only jobs commit from here).
                    yield from ctx.node.disk.write(out)
                    stats["output_bytes"] += out
                stats["records"] += 1
                stats["input_bytes"] += batch.nbytes
                stats["remote_bytes"] += batch.remote_bytes
        finally:
            if reader_proc is not None and reader_proc.is_alive:
                reader_proc.interrupt("map task aborted")
        stats["kernel_busy_s"] = kernel.kernel_busy_s
        _register_output(
            ctx, job, task, stats["output_bytes"],
            payload=b"".join(ciphertext_parts) if ciphertext_parts else None,
        )

    yield env.pooled_timeout(calib.task_cleanup_s)
    if attempt_span is not None:
        attempt_span.end(
            records=stats["records"], kernel_busy_s=stats["kernel_busy_s"]
        )
    if ctx.tracer is not None:
        ctx.tracer.emit(
            "task", "map_done", job=job.job_id, task=task.task_id, node=ctx.node.node_id
        )
    return stats


def _reader_loop(reader: RecordReader, queue: Store) -> Generator:
    """Feed records into the bounded queue; sentinel marks completion.

    On a read failure the exception is parked in the queue so the
    consumer re-raises it in task context (and the attempt fails).
    """
    try:
        for index, (offset, length) in enumerate(reader.record_ranges()):
            batch = yield from reader.read_record(offset, length, index)
            yield queue.put(batch)
        yield queue.put(_SENTINEL)
    except BaseException as exc:  # noqa: BLE001 - forwarded to consumer
        from repro.sim.events import Interrupt

        if isinstance(exc, Interrupt):
            return
        yield queue.put(exc)


def _register_output(
    ctx: TaskContext,
    job: Job,
    task: TaskRecord,
    nbytes: float,
    payload: Optional[bytes] = None,
) -> None:
    if ctx.map_outputs is not None:
        ctx.map_outputs[(job.job_id, task.task_id)] = MapOutput(
            node_id=ctx.node.node_id, nbytes=nbytes, payload=payload
        )


def run_reduce_task(
    ctx: TaskContext,
    job: Job,
    task: TaskRecord,
    slot: int,
    cluster_nodes: dict[int, "Node"],
) -> Generator:
    """Process: one reduce task attempt (shuffle → merge → reduce → write).

    "The JobTracker is also responsible for collecting and sorting the
    partial results produced by the Mappers in order to use them as the
    input for the reduce phase" (§III-A). Each reducer fetches its
    partition of every map output over the network, merge-sorts it at
    the calibrated CPU sort rate, applies the reduce function, and
    writes the result to HDFS.
    """
    env = ctx.env
    calib = ctx.calib
    conf = job.conf
    tracing = ctx.tracer if (ctx.tracer is not None and ctx.tracer.enabled) else None
    lane = f"node{ctx.node.node_id}/rslot{slot}"
    attempt_span = (
        tracing.span("task", f"reduce {task.task_id}", track=lane, job=job.job_id)
        if tracing is not None
        else None
    )
    yield env.pooled_timeout(calib.task_launch_s)
    stats: dict[str, Any] = {"shuffle_bytes": 0.0, "output_bytes": 0.0, "kernel_busy_s": 0.0}

    nreduce = max(1, conf.num_reduce_tasks)
    # Shuffle: this reducer's share of every map output.
    shuffle_span = (
        tracing.span("phase", "shuffle", track=lane) if tracing is not None else None
    )
    fetched = 0.0
    if ctx.map_outputs is not None:
        for map_id in sorted(job.maps):
            out = ctx.map_outputs.get((job.job_id, map_id))
            if out is None:
                continue
            share = out.nbytes / nreduce
            if share <= 0:
                continue
            src = cluster_nodes[out.node_id]
            yield from src.disk.read(share)
            yield from ctx.client.namenode.datanode(out.node_id).network.transfer(
                src, ctx.node, share
            )
            fetched += share
    if shuffle_span is not None:
        shuffle_span.end(nbytes=fetched)
    stats["shuffle_bytes"] = fetched

    # Merge sort at CPU sort bandwidth, then the reduce function: Pi's
    # aggregation is O(#maps) and effectively free; sort's reduce streams
    # the data once more. Both phases are pure deterministic compute with
    # nothing observing the boundary, so they collapse into one
    # composite event.
    if fetched > 0:
        merge_s = fetched / calib.sort_cpu_bw_per_core
        reduce_s = merge_s if conf.workload == "sort" else 0.0
        merge_span = (
            tracing.span("phase", "merge+reduce", track=lane)
            if tracing is not None
            else None
        )
        yield env.composite_timeout(merge_s, reduce_s)
        if merge_span is not None:
            merge_span.end(merge_s=merge_s, reduce_s=reduce_s)
        stats["kernel_busy_s"] += merge_s + reduce_s

    # Output commit to HDFS. Attempt-scoped path, as real Hadoop writes
    # per-attempt temporary outputs and promotes the winner on commit.
    out_bytes = fetched if conf.workload == "sort" else PI_MAP_OUTPUT_BYTES
    if out_bytes > 0:
        path = f"/out/{conf.name}-{job.job_id}/part-{task.task_id:05d}.a{task.attempts}"
        yield from ctx.client.write_file(
            path, int(out_bytes), ctx.node, replication=conf.output_replication
        )
        stats["output_bytes"] = out_bytes

    yield env.pooled_timeout(calib.task_cleanup_s)
    if attempt_span is not None:
        attempt_span.end(shuffle_bytes=stats["shuffle_bytes"])
    if ctx.tracer is not None:
        ctx.tracer.emit(
            "task", "reduce_done", job=job.job_id, task=task.task_id, node=ctx.node.node_id
        )
    return stats
