"""Input splits and the split computation.

"This process [the JobTracker] uses the method configured by the
programmer to partition the input data into splits ... the granularity
of the splits have a high influence on the balancing capability of the
scheduler" (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdfs.blocks import FileMeta

__all__ = ["InputSplit", "InputFormat"]


@dataclass(frozen=True)
class InputSplit:
    """A node-level work unit: a contiguous byte range of the input file.

    ``preferred_nodes`` lists the DataNodes holding the majority of the
    split's bytes, in descending coverage order — the JobTracker "tries
    to minimize the number of remote blocks accesses" using this.
    """

    split_id: int
    path: str
    offset: int
    length: int
    preferred_nodes: tuple[int, ...] = ()

    @property
    def end(self) -> int:
        return self.offset + self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Split {self.split_id} [{self.offset}, {self.end}) pref={self.preferred_nodes}>"


class InputFormat:
    """Computes splits for a file, mirroring FileInputFormat semantics."""

    @staticmethod
    def compute_splits(
        meta: FileMeta,
        num_splits: Optional[int] = None,
        split_bytes: Optional[int] = None,
    ) -> list[InputSplit]:
        """Partition ``meta`` into splits.

        Exactly one of ``num_splits`` / ``split_bytes`` may be given;
        with neither, one split per HDFS block (stock Hadoop). With
        ``num_splits`` the split size is ``ceil(FileSize/NumMappers)``,
        the paper's setting.
        """
        if num_splits is not None and split_bytes is not None:
            raise ValueError("give at most one of num_splits / split_bytes")
        if meta.size == 0:
            return []
        if num_splits is not None:
            if num_splits < 1:
                raise ValueError("num_splits must be >= 1")
            size = -(-meta.size // num_splits)
        elif split_bytes is not None:
            if split_bytes < 1:
                raise ValueError("split_bytes must be >= 1")
            size = split_bytes
        else:
            size = meta.block_size

        splits: list[InputSplit] = []
        offset = 0
        sid = 0
        while offset < meta.size:
            length = min(size, meta.size - offset)
            splits.append(
                InputSplit(
                    split_id=sid,
                    path=meta.path,
                    offset=offset,
                    length=length,
                    preferred_nodes=InputFormat.preferred_nodes(meta, offset, length),
                )
            )
            offset += length
            sid += 1
        return splits

    @staticmethod
    def preferred_nodes(meta: FileMeta, offset: int, length: int, top: int = 3) -> tuple[int, ...]:
        """Nodes ranked by how many of the split's bytes they hold."""
        coverage: dict[int, int] = {}
        for block in meta.blocks_for_range(offset, length):
            b_start = meta.block_offset(block.index)
            b_end = b_start + block.size
            overlap = min(b_end, offset + length) - max(b_start, offset)
            if overlap <= 0:
                continue
            for node_id in block.locations:
                coverage[node_id] = coverage.get(node_id, 0) + overlap
        ranked = sorted(coverage.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(node_id for node_id, _cov in ranked[:top])
