"""Job state, task bookkeeping, and results.

The :class:`Job` is the shared mutable record the JobTracker schedules
from; :class:`JobResult` is the immutable summary the harness consumes
(makespan, phase breakdown, counters) — the numbers behind Figs. 4–8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.hadoop.config import JobConf
from repro.hadoop.split import InputSplit

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment
    from repro.sim.events import Event

__all__ = ["Job", "JobResult", "JobState", "TaskRecord", "TaskKind"]


class JobState(enum.Enum):
    PREP = "prep"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class TaskKind(enum.Enum):
    MAP = "map"
    REDUCE = "reduce"


@dataclass
class TaskRecord:
    """Lifetime record of one logical task (across attempts)."""

    kind: TaskKind
    task_id: int
    split: Optional[InputSplit] = None
    samples: float = 0.0
    attempts: int = 0
    state: str = "pending"  # pending | running | done | failed
    tracker: Optional[int] = None
    """Node id of the tracker running (or having run) the task."""
    start_time: float = -1.0
    end_time: float = -1.0
    speculative_of: Optional[int] = None
    output_bytes: float = 0.0
    kernel_busy_s: float = 0.0
    records: int = 0
    remote_bytes: float = 0.0

    @property
    def duration(self) -> float:
        if self.start_time < 0 or self.end_time < 0:
            return float("nan")
        return self.end_time - self.start_time

    @property
    def key(self) -> tuple[TaskKind, int]:
        return (self.kind, self.task_id)


@dataclass
class Job:
    """One submitted MapReduce job."""

    conf: JobConf
    env: "Environment"
    job_id: int = 0
    state: JobState = JobState.PREP
    maps: dict[int, TaskRecord] = field(default_factory=dict)
    reduces: dict[int, TaskRecord] = field(default_factory=dict)
    submit_time: float = 0.0
    launch_time: float = -1.0
    """Time the first task attempt started."""
    maps_done_time: float = -1.0
    finish_time: float = -1.0
    counters: dict[str, float] = field(default_factory=dict)
    completion: Optional["Event"] = None
    failure_reason: Optional[str] = None
    _done_map_count: int = 0
    _done_reduce_count: int = 0
    """Completion tallies maintained by the JobTracker on task-state
    transitions, so the per-heartbeat completion predicates are O(1)
    instead of scanning every task."""

    def __post_init__(self) -> None:
        self.completion = self.env.event()

    # -- bookkeeping -------------------------------------------------------------
    def bump(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def note_task_done(self, kind: TaskKind) -> None:
        """Record a pending/running → done transition (JobTracker only)."""
        if kind is TaskKind.MAP:
            self._done_map_count += 1
        else:
            self._done_reduce_count += 1

    def note_task_undone(self, kind: TaskKind) -> None:
        """Record a done → pending transition (lost map output)."""
        if kind is TaskKind.MAP:
            self._done_map_count -= 1
        else:
            self._done_reduce_count -= 1

    def task(self, kind: TaskKind, task_id: int) -> TaskRecord:
        table = self.maps if kind is TaskKind.MAP else self.reduces
        return table[task_id]

    @property
    def all_tasks(self) -> list[TaskRecord]:
        return [*self.maps.values(), *self.reduces.values()]

    @property
    def maps_completed(self) -> int:
        return self._done_map_count

    @property
    def reduces_completed(self) -> int:
        return self._done_reduce_count

    @property
    def maps_all_done(self) -> bool:
        return self._done_map_count >= len(self.maps)

    @property
    def reduces_all_done(self) -> bool:
        return self._done_reduce_count >= len(self.reduces)

    @property
    def is_complete(self) -> bool:
        return self.maps_all_done and self.reduces_all_done

    def mark_finished(self, state: JobState, reason: Optional[str] = None) -> None:
        self.state = state
        self.finish_time = self.env.now
        self.failure_reason = reason
        if not self.completion.triggered:
            self.completion.succeed(self.result())

    # -- summary ------------------------------------------------------------------
    def result(self) -> "JobResult":
        return JobResult(
            job_id=self.job_id,
            name=self.conf.name,
            workload=self.conf.workload,
            backend=self.conf.backend.value,
            state=self.state,
            submit_time=self.submit_time,
            launch_time=self.launch_time,
            maps_done_time=self.maps_done_time,
            finish_time=self.finish_time,
            num_maps=len(self.maps),
            num_reduces=len(self.reduces),
            counters=dict(self.counters),
            tasks=[*self.maps.values(), *self.reduces.values()],
            failure_reason=self.failure_reason,
        )


@dataclass
class JobResult:
    """Immutable job summary."""

    job_id: int
    name: str
    workload: str
    backend: str
    state: JobState
    submit_time: float
    launch_time: float
    maps_done_time: float
    finish_time: float
    num_maps: int
    num_reduces: int
    counters: dict[str, float]
    tasks: list[TaskRecord]
    failure_reason: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.state is JobState.SUCCEEDED

    @property
    def makespan_s(self) -> float:
        """Submit-to-finish wall time — what the paper's figures plot."""
        return self.finish_time - self.submit_time

    @property
    def map_phase_s(self) -> float:
        if self.maps_done_time < 0:
            return float("nan")
        return self.maps_done_time - self.submit_time

    @property
    def kernel_busy_s(self) -> float:
        """Total kernel-active seconds across all task attempts."""
        return sum(t.kernel_busy_s for t in self.tasks)

    @property
    def total_records(self) -> int:
        return sum(t.records for t in self.tasks if t.kind is TaskKind.MAP)

    @property
    def remote_fraction(self) -> float:
        """Fraction of input bytes read from a remote DataNode."""
        total = self.counters.get("map_input_bytes", 0.0)
        if total <= 0:
            return 0.0
        return self.counters.get("remote_input_bytes", 0.0) / total

    def summary(self) -> dict[str, Any]:
        """Flat dict for table rendering."""
        return {
            "job": self.name,
            "workload": self.workload,
            "backend": self.backend,
            "state": self.state.value,
            "makespan_s": round(self.makespan_s, 3),
            "maps": self.num_maps,
            "reduces": self.num_reduces,
            "kernel_busy_s": round(self.kernel_busy_s, 3),
            "remote_fraction": round(self.remote_fraction, 4),
        }
