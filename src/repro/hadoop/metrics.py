"""Job post-mortem analysis: where did the time go?

The paper's argument is a time-accounting argument ("most of the
application time is spent on the Hadoop communication processes"). This
module reconstructs that accounting from a finished job: per-task and
per-job breakdowns of delivery time vs. kernel time vs. runtime
overhead, plus slot-utilization views — the numbers behind statements
like "the runtime is the main limiting factor".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.hadoop.job import JobResult, TaskKind
from repro.perf.calibration import Backend, CalibrationProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simexec import SimulatedCluster

__all__ = ["JobPhaseBreakdown", "analyze_job", "slot_utilization"]


@dataclass
class JobPhaseBreakdown:
    """Aggregate time accounting for one job (seconds, summed over tasks
    unless marked wall)."""

    makespan_wall_s: float
    setup_wall_s: float
    """Job submission → first task launch (setup + first heartbeat wave)."""
    tail_wall_s: float
    """Last task completion → job finish (completion report + cleanup)."""
    task_time_s: float
    """Sum of task attempt durations (launch → completion)."""
    delivery_s: float
    """Estimated RecordReader delivery time inside the tasks."""
    kernel_s: float
    """Kernel-busy time reported by the backends."""
    launch_overhead_s: float
    """Per-task launch + cleanup charges."""
    records: int
    input_bytes: float

    @property
    def delivery_fraction(self) -> float:
        """Share of total task time spent delivering records — the
        paper's 'communication' share. ~1.0 for data-intensive jobs."""
        if self.task_time_s <= 0:
            return 0.0
        return min(1.0, self.delivery_s / self.task_time_s)

    @property
    def kernel_fraction(self) -> float:
        if self.task_time_s <= 0:
            return 0.0
        return min(1.0, self.kernel_s / self.task_time_s)

    def summary(self) -> dict:
        return {
            "makespan_s": round(self.makespan_wall_s, 2),
            "setup_s": round(self.setup_wall_s, 2),
            "tail_s": round(self.tail_wall_s, 2),
            "task_time_s": round(self.task_time_s, 2),
            "delivery_s": round(self.delivery_s, 2),
            "kernel_s": round(self.kernel_s, 2),
            "delivery_fraction": round(self.delivery_fraction, 3),
            "kernel_fraction": round(self.kernel_fraction, 3),
        }


def analyze_job(result: JobResult, calib: CalibrationProfile) -> JobPhaseBreakdown:
    """Reconstruct the phase breakdown of a finished job.

    Delivery time is recomputed from the calibrated RecordReader model
    (records × per-record overhead + bytes / stream rate); kernel time
    comes from the per-task counters the backends maintained.
    """
    maps = [t for t in result.tasks if t.kind is TaskKind.MAP and t.state == "done"]
    task_time = sum(t.duration for t in result.tasks if t.state == "done")
    records = sum(t.records for t in maps)
    input_bytes = result.counters.get("map_input_bytes", 0.0)
    delivery = (
        records * calib.recordreader_per_record_s
        + input_bytes / calib.recordreader_stream_bw
    )
    kernel = result.kernel_busy_s
    n_attempts = sum(t.attempts for t in result.tasks)
    launch_overhead = n_attempts * (calib.task_launch_s + calib.task_cleanup_s)
    first_start = min((t.start_time for t in result.tasks if t.start_time >= 0), default=result.submit_time)
    last_end = max((t.end_time for t in result.tasks if t.end_time >= 0), default=result.finish_time)
    return JobPhaseBreakdown(
        makespan_wall_s=result.makespan_s,
        setup_wall_s=first_start - result.submit_time,
        tail_wall_s=result.finish_time - last_end,
        task_time_s=task_time,
        delivery_s=delivery,
        kernel_s=kernel,
        launch_overhead_s=launch_overhead,
        records=records,
        input_bytes=input_bytes,
    )


def slot_utilization(result: JobResult, total_slots: int) -> float:
    """Fraction of (slots × makespan) actually occupied by task attempts.

    Low utilization with a short job = heartbeat-wave dominated (the
    Fig. 7/8 runtime floor); high utilization = work-bound.
    """
    if total_slots < 1:
        raise ValueError("total_slots must be >= 1")
    if result.makespan_s <= 0:
        return 0.0
    busy = sum(t.duration for t in result.tasks if t.state == "done")
    return min(1.0, busy / (total_slots * result.makespan_s))
