"""The fleet coordinator: ``repro fleet serve`` behind one socket.

A thin, lock-serialized network shell over :class:`SweepTracker`. The
coordinator binds one listener (TCP or unix socket), accepts one
persistent connection per worker, and answers each worker frame with
exactly one reply — registration, heartbeat-driven lease handout,
result acceptance, failure reports. All failure-detection policy lives
in the tracker; all byte-producing assembly goes through the exact
:func:`~repro.experiments.driver.build_result` path serial sweeps use,
so a fleet-merged result is byte-identical to ``repro sweep`` by
construction.

Durability: every accepted point is appended to a :class:`Journal`
before the accepting frame is acknowledged, so a coordinator that
crashes mid-sweep restarts into a resume — prior points prefill the
tracker and only unfinished work re-dispatches. The journal is removed
only after the final result is assembled (and cached, when a cache is
configured).

Fail-fast: a fleet with no live workers for ``no_worker_timeout_s``
aborts with a clear :class:`FleetError` instead of waiting forever,
and a quarantined (poison) point aborts the sweep and tells every
worker to stop. Hangs are the one failure mode this module refuses to
have.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments.cache import (
    PointCache,
    load_cached,
    request_key,
    store_cached,
)
from repro.experiments.driver import SweepResult, build_result
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario
from repro.fabric import protocol
from repro.fabric.journal import Journal
from repro.fabric.protocol import FleetError
from repro.fabric.tracker import SweepTracker, TrackerConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import render as render_prometheus
from repro.serve.logs import log_event
from repro.wire import ProtocolError, decode, send_msg

__all__ = ["FleetCoordinator"]

logger = logging.getLogger("repro.fleet")

#: How often the monitor thread advances the tracker's failure
#: detectors and checks for completion. Real time, deliberately small:
#: it bounds how stale a detector can be, not how fast points finish.
_MONITOR_INTERVAL_S = 0.02


class FleetCoordinator:
    """One sweep's coordinator: listener + tracker + journal.

    Parameters
    ----------
    scenario: registry name or a bound :class:`Scenario`.
    overrides: grid/default replacements, as ``--grid`` parses them.
    seed: root seed override.
    port: TCP port (0 = OS-assigned); exclusive with ``socket_path``.
    socket_path: unix socket path to listen on.
    host: TCP bind address (loopback by default — the fleet protocol
        has no authentication).
    reference / model_reference: engine/model modes for the sweep;
        None pins the coordinator process's current modes.
    config: tracker tuning (:class:`TrackerConfig`).
    journal_path: where accepted points are journaled; an existing
        journal with a matching request key is resumed. None disables
        journaling (and therefore crash-resume).
    cache_dir: optional sweep/point cache directory, used exactly as
        ``repro sweep --cache`` does: whole-sweep hit answers without
        any fleet work, point hits prefill, fresh points are stored.
    no_worker_timeout_s: abort when no live worker exists for this
        long — the fully-dead-fleet fail-fast.
    linger_s: how long to keep answering ``done`` to heartbeats after
        the sweep completes, so workers exit cleanly.
    chaos: optional coordinator fault injection (duck-typed; see
        :mod:`repro.fabric.chaos`): ``crash_after_results=N`` crashes
        the coordinator after N accepted results, leaving the journal.
    clock: time source for the tracker (tests inject a fake one).
    """

    def __init__(
        self,
        scenario,
        overrides: Optional[Mapping[str, Any]] = None,
        *,
        seed: Optional[int] = None,
        port: Optional[int] = None,
        socket_path: Optional[Path] = None,
        host: str = "127.0.0.1",
        reference: Optional[bool] = None,
        model_reference: Optional[bool] = None,
        config: Optional[TrackerConfig] = None,
        journal_path: Optional[Path] = None,
        cache_dir: Optional[Path] = None,
        no_worker_timeout_s: float = 30.0,
        linger_s: float = 1.0,
        chaos=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if (port is None) == (socket_path is None):
            raise ValueError("exactly one of port= or socket_path= is required")
        sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
        self.scenario: Scenario = sc.with_overrides(
            dict(overrides) if overrides else None, seed=seed
        )
        self.reference = (engine.REFERENCE_MODE if reference is None
                          else bool(reference))
        self.model_reference = (modelmode.REFERENCE_MODE
                                if model_reference is None
                                else bool(model_reference))
        self.key = request_key(self.scenario, self.reference,
                               self.model_reference)
        self.points = self.scenario.points()
        self.total = len(self.points)
        self.host = host
        self.port = port
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.config = config or TrackerConfig()
        self.no_worker_timeout_s = no_worker_timeout_s
        self.linger_s = linger_s
        self.chaos = chaos
        self._clock = clock
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.point_cache = PointCache(self.cache_dir) if self.cache_dir else None
        self.journal: Optional[Journal] = None
        if journal_path is not None:
            self.journal = Journal(Path(journal_path), self.key,
                                   self.scenario.name, self.total)

        # Dispatch order: canonical order is already fine (cost-aware
        # ordering is a cache-side refinement the fleet can add later);
        # what matters is that revoked work re-enters at the front.
        self.tracker = SweepTracker(range(self.total), self.total,
                                    config=self.config, clock=clock)
        self._results: list[Optional[dict[str, float]]] = [None] * self.total
        self._elapsed: list[Optional[float]] = [None] * self.total

        self.result: Optional[SweepResult] = None
        self.error: Optional[str] = None
        self.crashed = False
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._conns: set[socket.socket] = set()
        self._threads: set[threading.Thread] = set()
        self._done = threading.Event()
        self._stopping = False
        self._finished_at: Optional[float] = None
        self._no_worker_since: Optional[float] = None
        self._t0: Optional[float] = None

        self.metrics = MetricsRegistry()
        self._m_frames = self.metrics.counter(
            "repro_fleet_frames_total", "Worker frames handled, by type",
            labels=("type",),
        )

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FleetCoordinator":
        if self._listener is not None:
            return self
        self._t0 = time.perf_counter()
        self._prefill()
        if self.result is not None:
            # Whole-sweep cache hit: nothing to coordinate. Still bind
            # briefly so eager workers get a clean "done" during linger.
            pass
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            sock.bind(str(self.socket_path))
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            self.port = sock.getsockname()[1]
        sock.listen(128)
        self._listener = sock
        resumed = self.journal.resumed if self.journal else {}
        log_event(logger, logging.INFO, "fleet_started",
                  endpoint=self.endpoint(), scenario=self.scenario.name,
                  request_key=self.key[:16], total=self.total,
                  resumed_points=len(resumed),
                  cache_prefilled=self.tracker.prefilled - len(resumed))
        self._spawn(self._accept_loop, name="repro-fleet-accept")
        self._spawn(self._monitor_loop, name="repro-fleet-monitor")
        return self

    def _prefill(self) -> None:
        """Seed the tracker from every durable source before any worker
        connects: whole-sweep cache, journal, then per-point cache."""
        if self.cache_dir is not None:
            cached = load_cached(self.cache_dir, self.scenario, self.key)
            if cached is not None:
                self.result = cached
                if self.journal is not None:
                    self.journal.remove()
                return
        if self.journal is not None:
            self.journal.open()
            for index, (values, elapsed) in self.journal.resumed.items():
                self.tracker.prefill(index, values, elapsed)
                self._results[index] = values
                self._elapsed[index] = elapsed
        if self.point_cache is not None:
            for index, cfg in enumerate(self.points):
                if self._results[index] is not None:
                    continue
                _, hit = self.point_cache.lookup(
                    self.scenario, cfg, reference=self.reference,
                    model_reference=self.model_reference)
                if hit is not None:
                    self.tracker.prefill(index, hit)
                    self._results[index] = hit

    def endpoint(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def run(self) -> SweepResult:
        """start + wait + unwrap: the blocking one-call entry point.
        Raises :class:`FleetError` on abort (poison, dead fleet) or
        coordinator chaos crash."""
        self.start()
        self.wait()
        if self.result is not None:
            return self.result
        raise FleetError(self.error or "fleet sweep did not complete")

    def shutdown(self) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        me = threading.current_thread()
        for t in list(self._threads):
            if t is not me:
                t.join(timeout=10)
        if self.journal is not None and self.result is not None:
            self.journal.remove()
        elif self.journal is not None:
            self.journal.close()  # crash/abort: keep the file for resume
        if (self.socket_path is not None and self.socket_path.exists()):
            try:
                self.socket_path.unlink()
            except OSError:
                pass
        log_event(logger, logging.INFO, "fleet_stopped",
                  scenario=self.scenario.name, crashed=self.crashed,
                  error=self.error, **self.tracker.accounting())
        self._done.set()

    def close(self) -> None:
        if self.error is None and self.result is None:
            self.error = "coordinator closed before the sweep completed"
        self.shutdown()

    def __enter__(self) -> "FleetCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn(self, target, *args, name: str) -> None:
        t = threading.Thread(target=target, args=args, name=name, daemon=True)
        t.start()  # before tracking: shutdown must never join an unstarted thread
        self._threads.add(t)

    # -- accept + per-worker connections --------------------------------------
    def _accept_loop(self) -> None:
        while True:
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            with self._lock:
                self._conns.add(conn)
            self._spawn(self._handle_conn, conn, name="repro-fleet-conn")

    def _handle_conn(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while True:
                line = stream.readline()
                if not line:
                    return  # worker went away; liveness timeout handles it
                try:
                    msg = protocol.parse_worker_msg(decode(line))
                except ProtocolError as exc:
                    send_msg(stream, {"type": "error", "message": str(exc)})
                    return
                reply = self._handle_frame(msg)
                if reply is None:
                    return  # chaos crash: die without acknowledging
                send_msg(stream, reply)
                if reply["type"] in ("done", "abort", "error"):
                    return
        except (BrokenPipeError, ConnectionResetError, OSError, ProtocolError):
            pass
        finally:
            with self._lock:
                self._conns.discard(conn)
            for closer in (stream.close, conn.close):
                try:
                    closer()
                except OSError:
                    pass

    # -- frame handling (lock-serialized onto the tracker) --------------------
    def _handle_frame(self, msg: dict[str, Any]) -> Optional[dict[str, Any]]:
        mtype = msg["type"]
        self._m_frames.inc(type=mtype)
        with self._lock:
            if self.crashed:
                return None
            if mtype == "register":
                return self._frame_register(msg)
            if mtype == "heartbeat":
                return self._frame_heartbeat(msg)
            if mtype == "result":
                return self._frame_result(msg)
            return self._frame_failure(msg)

    def _frame_register(self, msg: dict[str, Any]) -> dict[str, Any]:
        worker_key = msg.get("request_key")
        if worker_key is not None and worker_key != self.key:
            log_event(logger, logging.WARNING, "fleet_register_rejected",
                      worker=msg["worker"], reason="request key mismatch")
            return {
                "type": "error",
                "message": (
                    f"request key mismatch: coordinator {self.key[:16]} vs "
                    f"worker {worker_key[:16]} — the worker is running "
                    "different code, calibration, or request; refusing its "
                    "results"
                ),
            }
        self.tracker.register(msg["worker"], msg["capacity"])
        log_event(logger, logging.INFO, "fleet_worker_registered",
                  worker=msg["worker"], capacity=msg["capacity"])
        return protocol.registered_reply(
            msg["worker"], self.scenario, self.key,
            self.reference, self.model_reference, self.total,
        )

    def _frame_heartbeat(self, msg: dict[str, Any]) -> dict[str, Any]:
        if self.result is not None:
            return {"type": "done"}
        verdict, grant = self.tracker.heartbeat(msg["worker"], msg["free"])
        if verdict == "lease":
            assert grant is not None
            return protocol.lease_reply(
                [(i, self.points[i]) for i in grant])
        if verdict == "abort":
            return {"type": "abort", "message": self._poison_message()}
        return {"type": verdict}

    def _frame_result(self, msg: dict[str, Any]) -> Optional[dict[str, Any]]:
        index = msg["index"]
        accepted = self.tracker.report_result(
            msg["worker"], index, msg["values"], msg["elapsed_s"])
        if accepted:
            self._results[index] = msg["values"]
            self._elapsed[index] = msg["elapsed_s"]
            if self.journal is not None:
                self.journal.record(index, msg["values"], msg["elapsed_s"])
            if self._chaos_crash_due():
                return None
        return {"type": "ok", "accepted": accepted}

    def _frame_failure(self, msg: dict[str, Any]) -> dict[str, Any]:
        log_event(logger, logging.WARNING, "fleet_point_failed",
                  worker=msg["worker"], index=msg["index"],
                  error=msg["error"], attempt=msg["attempt"])
        self.tracker.report_failure(msg["worker"], msg["index"], msg["error"])
        return {"type": "ok"}

    def _chaos_crash_due(self) -> bool:
        crash_after = getattr(self.chaos, "crash_after_results", None)
        if crash_after is None or self.crashed:
            return self.crashed
        if self.tracker.counters["results_accepted"] >= crash_after:
            self.crashed = True
            self.error = (
                f"chaos: coordinator crashed after "
                f"{self.tracker.counters['results_accepted']} accepted "
                "results (journal preserved for resume)")
            log_event(logger, logging.WARNING, "fleet_chaos_crash",
                      accepted=self.tracker.counters["results_accepted"])
        return self.crashed

    def _poison_message(self) -> str:
        worst = sorted(self.tracker.poison.items())
        head = "; ".join(f"point {i}: {err}" for i, err in worst[:3])
        more = f" (+{len(worst) - 3} more)" if len(worst) > 3 else ""
        return (
            f"{len(worst)} point(s) quarantined after "
            f"{self.config.max_attempts} failed attempts — {head}{more}"
        )

    # -- monitor: detectors, completion, fail-fast ----------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(_MONITOR_INTERVAL_S)
            with self._lock:
                if self.crashed:
                    break
                self.tracker.tick()
                if self.result is None and self.tracker.finished:
                    self._assemble_locked()
                if self.result is not None:
                    if self._finished_at is None:
                        self._finished_at = self._clock()
                    if self._clock() - self._finished_at >= self.linger_s:
                        break
                    continue
                if self.tracker.poisoned:
                    self.error = self._poison_message()
                    log_event(logger, logging.ERROR, "fleet_poisoned",
                              error=self.error)
                    break
                if not self._check_fleet_alive_locked():
                    break
        self.shutdown()

    def _check_fleet_alive_locked(self) -> bool:
        now = self._clock()
        if self.tracker.live_workers():
            self._no_worker_since = None
            return True
        if self._no_worker_since is None:
            self._no_worker_since = now
            return True
        if now - self._no_worker_since <= self.no_worker_timeout_s:
            return True
        dead_for = now - self._no_worker_since
        verb = ("no worker ever registered"
                if not self.tracker.ever_registered
                else "every worker is dead")
        self.error = (
            f"fleet is fully dead: {verb} for {dead_for:.1f}s "
            f"(> no_worker_timeout_s={self.no_worker_timeout_s}); "
            f"{len(self.tracker.completed)}/{self.total} points completed"
            + (", journal preserved for resume" if self.journal else ""))
        log_event(logger, logging.ERROR, "fleet_dead", error=self.error)
        return False

    def _assemble_locked(self) -> None:
        result = build_result(
            self.scenario,
            self._results,
            self._elapsed,
            workers=max(1, len(self.tracker.live_workers())),
            elapsed_s=time.perf_counter() - (self._t0 or 0.0),
            start_method=None,
            executed_points=len(self.tracker.accepted),
            cached_points=self.tracker.prefilled,
        )
        if self.point_cache is not None:
            for index in self.tracker.accepted:
                key, hit = self.point_cache.lookup(
                    self.scenario, self.points[index],
                    reference=self.reference,
                    model_reference=self.model_reference)
                if hit is None:
                    self.point_cache.store(self.scenario.name, key,
                                           self._results[index])
        if self.cache_dir is not None:
            store_cached(result, self.cache_dir, self.key)
        self.result = result
        log_event(logger, logging.INFO, "fleet_done",
                  scenario=self.scenario.name, sha256=result.sha256(),
                  **self.tracker.accounting())

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "scenario": self.scenario.name,
                "request_key": self.key[:16],
                "endpoint": self.endpoint(),
                **self.tracker.stats(),
                **self.tracker.accounting(),
            }

    def render_metrics(self) -> str:
        """Prometheus text for the fleet: tracker counters/gauges are
        refreshed into the registry at render time."""
        stats = self.stats()
        gauges = (
            ("workers_live", "Workers currently considered alive"),
            ("pending", "Points waiting in the dispatch queue"),
            ("running", "Point attempts currently leased"),
            ("completed", "Points accepted (including prefilled)"),
            ("redispatched", "Leases revoked and re-enqueued"),
            ("retries", "Failed attempts scheduled for retry"),
            ("speculative", "Speculative attempts launched"),
            ("speculative_wins", "Speculative attempts that won"),
            ("duplicates", "Duplicate result deliveries dropped"),
            ("dead_workers", "Workers declared dead by the detector"),
            ("quarantined", "Points quarantined as poison"),
        )
        for name, help_text in gauges:
            self.metrics.gauge(f"repro_fleet_{name}", help_text).set(
                stats[name])
        return render_prometheus(self.metrics)
