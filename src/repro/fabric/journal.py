"""The coordinator's completion journal: crash → resume, not re-run.

One JSONL file per sweep: a header line binding the journal to its
request key, then one line per accepted point. The coordinator appends
(and flushes) a line the moment a point's result is accepted, so after
a coordinator crash the replacement process replays the journal and
re-enqueues only the points that never completed. On a successful
finish the journal is removed — a lingering journal always means an
unfinished sweep.

Resume safety rules:

- the header's ``request_key`` must match the resuming coordinator's
  key exactly; a mismatched journal is *stale* (code changed, grid
  changed, seed changed — any of which makes its values unusable) and
  is discarded, not merged;
- a torn final line (the crash landed mid-write) is dropped silently —
  at worst one point re-runs, and re-running a pure point is free of
  consequence;
- duplicate indices keep the first occurrence, mirroring the
  tracker's first-result-wins acceptance.

Values round-trip through JSON ``repr`` exactly, so a resumed sweep's
final bytes are identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Optional, TextIO

from repro.wire import encode

__all__ = ["Journal"]

_JOURNAL_FORMAT = 1


class Journal:
    """Append-only record of accepted points for one sweep."""

    def __init__(self, path: Path, request_key: str, scenario: str, total: int):
        self.path = Path(path)
        self.request_key = request_key
        self.scenario = scenario
        self.total = total
        self._fh: Optional[TextIO] = None
        #: Points recovered from a prior coordinator's journal.
        self.resumed: dict[int, tuple[dict[str, float], Optional[float]]] = {}
        #: True when a journal existed but belonged to a different
        #: request (stale) and was discarded.
        self.discarded_stale = False

    # -- lifecycle -----------------------------------------------------------
    def open(self) -> "Journal":
        """Load any prior journal at ``path`` (populating ``resumed``),
        then (re)open the file for appending — rewritten from the
        recovered state, so a resumed journal is always well-formed."""
        self._load_existing()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        self._write_line({
            "format": _JOURNAL_FORMAT,
            "request_key": self.request_key,
            "scenario": self.scenario,
            "total": self.total,
        })
        for index, (values, elapsed) in sorted(self.resumed.items()):
            self._write_line(self._point_line(index, values, elapsed))
        return self

    def _load_existing(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except ValueError:
            self.discarded_stale = True
            return
        if (not isinstance(header, dict)
                or header.get("format") != _JOURNAL_FORMAT
                or header.get("request_key") != self.request_key):
            self.discarded_stale = True
            return
        for line in lines[1:]:
            try:
                row = json.loads(line)
            except ValueError:
                continue  # torn tail from a mid-write crash
            if (not isinstance(row, dict) or "index" not in row
                    or not isinstance(row.get("values"), dict)):
                continue
            index = row["index"]
            if (isinstance(index, int) and 0 <= index < self.total
                    and index not in self.resumed):
                self.resumed[index] = (row["values"], row.get("elapsed_s"))

    def record(
        self, index: int, values: Mapping[str, float],
        elapsed_s: Optional[float],
    ) -> None:
        """Persist one accepted point. Flushed immediately: the journal
        exists precisely for the case where the next instruction never
        executes."""
        if self._fh is None:
            raise RuntimeError("journal is not open")
        self._write_line(self._point_line(index, dict(values), elapsed_s))
        os.fsync(self._fh.fileno())

    @staticmethod
    def _point_line(
        index: int, values: Mapping[str, float], elapsed_s: Optional[float]
    ) -> dict[str, Any]:
        line: dict[str, Any] = {"index": index, "values": dict(values)}
        if elapsed_s is not None:
            line["elapsed_s"] = elapsed_s
        return line

    def _write_line(self, obj: Mapping[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(encode(obj).decode("utf-8"))
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def remove(self) -> None:
        """The sweep finished and its result is safely assembled; a
        journal left behind would only invite a pointless resume."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
