"""The coordinator's sweep state machine: leases, failure detection,
retries, speculation — socket-free and fake-clock testable.

:class:`SweepTracker` owns everything interesting about the fleet's
fault tolerance; the network coordinator is a thin shell that feeds it
worker frames and a clock. That split mirrors the simulated liveness
monitor elsewhere in the repo: all timing logic runs against an
injected ``clock``, so every failure schedule is unit-testable in
microseconds without sockets, sleeps, or races.

Mechanisms, and why each exists:

- **Leases.** Points are handed to workers in cost-ordered batches
  (longest-estimated-first, the driver's straggler rule). A lease is a
  *claim*, not a transfer: the tracker keeps the point until a result
  is accepted, so no worker failure can lose work.
- **Lazy-expiry failure detection.** Every heartbeat pushes a
  ``(deadline, seq, worker)`` entry onto a heap; a worker whose newest
  entry expires without a fresher heartbeat is declared dead and its
  leases are revoked and re-enqueued at the front of the queue.
  Stale heap entries (superseded by later heartbeats) are recognized
  by sequence number and skipped — O(log n) per heartbeat, no timer
  threads, no per-worker state scans.
- **Lease timeouts.** Independent of worker liveness: a worker that
  heartbeats happily but never delivers a leased point (wedged
  executor) loses the lease after ``lease_timeout_s`` and the point
  re-dispatches. The same seq discipline invalidates expired-lease
  entries for points that completed or were re-leased meanwhile.
- **Speculative execution.** When the queue is empty and a worker has
  spare capacity, points still running longer than ``factor ×`` the
  ``quantile`` of accepted durations (with at least ``min_completed``
  samples) are replicated onto the idle worker, capped at
  ``max_replicas`` concurrent attempts. First result wins; the loser
  becomes a zombie whose eventual delivery is counted and dropped.
- **Retry with backoff + quarantine.** A point that *fails* (raises)
  is retried after ``retry_backoff_s × 2**(failures-1)``; at
  ``max_attempts`` failures it is quarantined as a poison point and
  the sweep aborts loudly — a deterministic failure must never grind
  through an infinite retry loop.
- **Exactly-once accounting.** Results are accepted first-wins by
  point index; duplicates (worker retransmits, zombie replicas,
  re-registered workers finishing pre-revocation leases) are counted
  and discarded. A result does not need a live lease to be accepted —
  a worker that finished a point while partitioned still contributes
  it — so no completed work is ever thrown away, and no point is ever
  accepted twice.

The tracker is **not** thread-safe; the coordinator serializes access
under one lock (frame handling is cheap — all heavy work happens in
workers).
"""

from __future__ import annotations

import heapq
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["SweepTracker", "TrackerConfig"]


@dataclass(frozen=True)
class TrackerConfig:
    """Failure-detector and retry tuning (see docs/FAULT_TOLERANCE.md).

    Defaults suit LAN fleets running sub-second points; chaos tests
    shrink every window to keep wall time low.
    """

    #: Heartbeat silence after which a worker is declared dead.
    worker_timeout_s: float = 5.0
    #: How long one leased point may run before being re-dispatched.
    lease_timeout_s: float = 60.0
    #: Max points granted per lease (also capped by worker capacity).
    batch_size: int = 4
    #: Failed attempts per point before quarantine aborts the sweep.
    max_attempts: int = 3
    #: Base retry delay; actual delay is base * 2**(failures-1).
    retry_backoff_s: float = 0.25
    #: Duration quantile of accepted points used as the straggler bar.
    speculation_quantile: float = 0.75
    #: A running point is speculated past factor * quantile duration.
    speculation_factor: float = 2.0
    #: Straggler bar never drops below this: when every point finishes
    #: in microseconds, factor * quantile rounds to ~0 and would flag
    #: any in-flight point — replicating work that costs less than the
    #: replication itself.
    speculation_floor_s: float = 0.5
    #: Accepted durations needed before speculation switches on.
    speculation_min_completed: int = 3
    #: Max concurrent attempts of one point (original + speculative).
    max_replicas: int = 2


@dataclass
class _Worker:
    name: str
    capacity: int
    last_seen: float
    seq: int = 0  # bumped per heartbeat; validates liveness-heap entries
    alive: bool = True
    leased: set[int] = field(default_factory=set)
    results: int = 0


class SweepTracker:
    """Lease/retry/speculation bookkeeping for one sweep's points."""

    def __init__(
        self,
        order: Iterable[int],
        total: int,
        config: Optional[TrackerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or TrackerConfig()
        self.total = total
        self._clock = clock
        self._queue: deque[int] = deque(order)
        self._queued: set[int] = set(self._queue)
        #: index -> (values, elapsed_s) for accepted points.
        self.completed: dict[int, tuple[dict[str, float], Optional[float]]] = {}
        #: index -> (worker, attempt, was_speculative): the ledger every
        #: exactly-once assertion checks — exactly one entry per point.
        self.accepted: dict[int, tuple[str, int, bool]] = {}
        #: index -> error message for quarantined points.
        self.poison: dict[int, str] = {}
        self._workers: dict[str, _Worker] = {}
        # index -> {worker: (lease_seq, started_at, speculative)}
        self._runners: dict[int, dict[str, tuple[int, float, bool]]] = {}
        self._attempts: dict[int, int] = {}
        self._failures: dict[int, int] = {}
        self._worker_heap: list[tuple[float, int, str]] = []
        self._lease_heap: list[tuple[float, int, int, str]] = []
        self._retry_heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._durations: list[float] = []
        self.prefilled = 0
        self.ever_registered = False
        self.counters: dict[str, int] = {
            "results_accepted": 0,
            "duplicates": 0,
            "redispatched": 0,
            "retries": 0,
            "speculative": 0,
            "speculative_wins": 0,
            "dead_workers": 0,
            "quarantined": 0,
        }

    # -- completion state ----------------------------------------------------
    @property
    def finished(self) -> bool:
        return len(self.completed) >= self.total

    @property
    def poisoned(self) -> bool:
        return bool(self.poison)

    def live_workers(self) -> list[str]:
        return [w.name for w in self._workers.values() if w.alive]

    def prefill(self, index: int, values: dict[str, float],
                elapsed_s: Optional[float] = None) -> None:
        """Mark a point complete from outside the fleet (journal resume
        or point cache) — it will never be leased."""
        if index in self.completed:
            return
        self.completed[index] = (values, elapsed_s)
        self._queued.discard(index)  # lazily skipped at grant time too
        self.prefilled += 1

    # -- worker lifecycle ----------------------------------------------------
    def register(self, name: str, capacity: int) -> None:
        """Admit (or re-admit) a worker. A re-register supersedes any
        earlier incarnation: its leases are revoked and re-enqueued —
        but results it still delivers remain acceptable, so work done
        across a reconnect is never wasted."""
        now = self._clock()
        old = self._workers.get(name)
        if old is not None:
            self._revoke_worker(old)
        worker = _Worker(name=name, capacity=capacity, last_seen=now)
        self._workers[name] = worker
        self.ever_registered = True
        self._beat(worker, now)

    def _beat(self, worker: _Worker, now: float) -> None:
        worker.last_seen = now
        worker.alive = True
        worker.seq += 1
        heapq.heappush(
            self._worker_heap,
            (now + self.config.worker_timeout_s, worker.seq, worker.name),
        )

    def heartbeat(
        self, name: str, free: int
    ) -> tuple[str, Optional[list[int]]]:
        """One worker heartbeat. Returns ``(verdict, lease)``:

        - ``("abort", None)`` — the sweep is poisoned; stop working;
        - ``("done", None)`` — every point is accepted; disconnect;
        - ``("reregister", None)`` — unknown (or previously declared
          dead) worker, typically after a coordinator restart;
        - ``("lease", [indices])`` — points granted to this worker;
        - ``("ok", None)`` — noted, nothing to hand out.
        """
        if self.poisoned:
            return "abort", None
        if self.finished:
            return "done", None
        worker = self._workers.get(name)
        if worker is None or not worker.alive:
            return "reregister", None
        now = self._clock()
        self._beat(worker, now)
        self.tick(now)
        grant = self._grant(worker, free, now)
        return ("lease", grant) if grant else ("ok", None)

    # -- leasing + speculation ----------------------------------------------
    def _grant(self, worker: _Worker, free: int, now: float) -> list[int]:
        budget = min(free, self.config.batch_size)
        grant: list[int] = []
        while budget > 0 and self._queue:
            index = self._queue.popleft()
            self._queued.discard(index)
            if index in self.completed or index in self.poison:
                continue
            self._lease(index, worker, now, speculative=False)
            grant.append(index)
            budget -= 1
        if budget > 0 and not self._queue:
            for index in self._speculation_candidates(worker, now):
                if budget <= 0:
                    break
                self._lease(index, worker, now, speculative=True)
                grant.append(index)
                budget -= 1
                self.counters["speculative"] += 1
        return grant

    def _lease(self, index: int, worker: _Worker, now: float,
               speculative: bool) -> None:
        self._seq += 1
        self._runners.setdefault(index, {})[worker.name] = (
            self._seq, now, speculative)
        worker.leased.add(index)
        self._attempts[index] = self._attempts.get(index, 0) + 1
        heapq.heappush(
            self._lease_heap,
            (now + self.config.lease_timeout_s, self._seq, index, worker.name),
        )

    def _speculation_candidates(self, worker: _Worker, now: float) -> list[int]:
        cfg = self.config
        if len(self._durations) < cfg.speculation_min_completed:
            return []
        ordered = sorted(self._durations)
        rank = min(len(ordered) - 1,
                   max(0, math.ceil(cfg.speculation_quantile * len(ordered)) - 1))
        threshold = max(cfg.speculation_factor * ordered[rank],
                        cfg.speculation_floor_s)
        candidates: list[tuple[float, int]] = []
        for index, runners in self._runners.items():
            if index in self.completed or not runners:
                continue
            if worker.name in runners or len(runners) >= cfg.max_replicas:
                continue
            oldest = min(started for _, started, _ in runners.values())
            running_for = now - oldest
            if running_for > threshold:
                candidates.append((-running_for, index))
        return [index for _, index in sorted(candidates)]

    # -- results -------------------------------------------------------------
    def report_result(
        self, name: str, index: int, values: dict[str, float],
        elapsed_s: Optional[float],
    ) -> bool:
        """Accept (or dedup) one delivered point; True when accepted.

        First result wins. Acceptance does not require a live lease:
        a point finished across a partition/reconnect still counts.
        """
        worker = self._workers.get(name)
        entry = self._runners.get(index, {}).pop(name, None)
        if not self._runners.get(index):
            self._runners.pop(index, None)
        if worker is not None:
            worker.leased.discard(index)
        if index in self.completed:
            self.counters["duplicates"] += 1
            return False
        if not 0 <= index < self.total:
            self.counters["duplicates"] += 1
            return False
        self.completed[index] = (values, elapsed_s)
        speculative = bool(entry and entry[2])
        self.accepted[index] = (name, self._attempts.get(index, 1), speculative)
        if speculative:
            self.counters["speculative_wins"] += 1
        if elapsed_s is not None:
            self._durations.append(elapsed_s)
        if worker is not None:
            worker.results += 1
        self.counters["results_accepted"] += 1
        self._queued.discard(index)
        return True

    def report_failure(self, name: str, index: int, error: str) -> None:
        """One failed attempt: schedule a backed-off retry, or
        quarantine the point once its attempt budget is spent."""
        worker = self._workers.get(name)
        entry = self._runners.get(index, {}).pop(name, None)
        if not self._runners.get(index):
            self._runners.pop(index, None)
        if worker is not None:
            worker.leased.discard(index)
        if index in self.completed or index in self.poison:
            return  # a zombie replica failing after the point settled
        del entry  # the lease is spent either way
        failures = self._failures.get(index, 0) + 1
        self._failures[index] = failures
        if failures >= self.config.max_attempts:
            self.poison[index] = error
            self.counters["quarantined"] += 1
            return
        delay = self.config.retry_backoff_s * (2 ** (failures - 1))
        self._seq += 1
        heapq.heappush(self._retry_heap,
                       (self._clock() + delay, self._seq, index))
        self.counters["retries"] += 1

    # -- time ----------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> None:
        """Advance the failure detectors: release due retries, declare
        silent workers dead (revoking + re-enqueuing their leases), and
        expire overdue leases. Safe to call as often as convenient —
        all heaps expire lazily with seq validation."""
        if now is None:
            now = self._clock()
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, index = heapq.heappop(self._retry_heap)
            self._requeue(index)
        while self._worker_heap and self._worker_heap[0][0] <= now:
            _, seq, name = heapq.heappop(self._worker_heap)
            worker = self._workers.get(name)
            if worker is None or not worker.alive or worker.seq != seq:
                continue  # superseded by a fresher heartbeat
            worker.alive = False
            self.counters["dead_workers"] += 1
            self._revoke_worker(worker)
        while self._lease_heap and self._lease_heap[0][0] <= now:
            _, seq, index, name = heapq.heappop(self._lease_heap)
            entry = self._runners.get(index, {}).get(name)
            if entry is None or entry[0] != seq:
                continue  # completed, revoked, or re-leased since
            self._runners[index].pop(name, None)
            if not self._runners.get(index):
                self._runners.pop(index, None)
            worker = self._workers.get(name)
            if worker is not None:
                worker.leased.discard(index)
            self.counters["redispatched"] += 1
            self._requeue(index)

    def _revoke_worker(self, worker: _Worker) -> None:
        # Reverse order: each point is pushed at the queue's front, so
        # walking high-to-low leaves the batch in canonical order.
        for index in sorted(worker.leased, reverse=True):
            runners = self._runners.get(index)
            if runners is not None:
                runners.pop(worker.name, None)
                if not runners:
                    self._runners.pop(index, None)
            self.counters["redispatched"] += 1
            self._requeue(index)
        worker.leased.clear()

    def _requeue(self, index: int) -> None:
        """Put a point back at the *front* of the queue — revoked work
        is the oldest work, and cost-ordered dispatch already put the
        longest points first. Skipped when the point settled meanwhile
        or another replica is still running it (that replica's own
        failure/expiry will requeue it if needed)."""
        if (index in self.completed or index in self.poison
                or index in self._queued or self._runners.get(index)):
            return
        self._queue.appendleft(index)
        self._queued.add(index)

    # -- reporting -----------------------------------------------------------
    def accounting(self) -> dict[str, Any]:
        """The exactly-once ledger, summarized for assertions and the
        coordinator's final log line."""
        return {
            "total": self.total,
            "accepted": len(self.accepted),
            "prefilled": self.prefilled,
            "completed": len(self.completed),
            **self.counters,
        }

    def stats(self) -> dict[str, Any]:
        return {
            "workers_live": len(self.live_workers()),
            "workers_known": len(self._workers),
            "pending": len(self._queue),
            "running": sum(len(r) for r in self._runners.values()),
            "completed": len(self.completed),
            "total": self.total,
            **self.counters,
        }
