"""The fleet worker: connect, register, heartbeat, execute, deliver.

A worker is a deliberately thin client around the repo's existing
point machinery: every leased point runs through the same
``_run_point_task`` the multiprocessing pool uses, with the
coordinator's engine/model reference modes applied around it — so the
values a worker produces are bit-identical to a serial sweep on the
same code.

The loop is strict request/reply over one persistent connection:

1. connect (with jittered backoff up to ``reconnect_timeout_s``);
2. ``register`` → ``registered`` reply carries the scenario spec and
   the coordinator's request key; the worker **rebuilds the scenario
   locally, recomputes the key, and refuses on mismatch** — the same
   consistency check shard merging runs, catching code drift before a
   wrong-but-plausible value can enter the sweep;
3. heartbeat on a jittered cadence; leases come back as fully-bound
   cfgs; each point executes inline and its result (or failure) is
   delivered and acknowledged immediately;
4. ``done`` → clean exit, ``abort``/``error`` → :class:`FleetError`,
   ``reregister`` or any socket error → reconnect and re-register.

Work is never wasted: a result computed across a partition is
delivered after reconnecting, and the coordinator accepts it (or
dedups it) under its exactly-once ledger.

Chaos hooks (duck-typed, see :mod:`repro.fabric.chaos`) simulate the
failure schedule the tests script: abrupt kills after N delivered
results, heartbeat-silence windows, delayed and duplicated deliveries.
"""

from __future__ import annotations

import logging
import os
import random
import socket as socket_mod
import threading
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.experiments.cache import PointCache, request_key
from repro.experiments.driver import _run_point_task
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import GridError, Scenario
from repro.fabric import protocol
from repro.fabric.protocol import FleetError
from repro.serve.client import Address, connect
from repro.serve.logs import log_event
from repro.wire import ProtocolError, recv_msg, send_msg

__all__ = ["FleetWorker"]

logger = logging.getLogger("repro.fleet.worker")


class _Killed(Exception):
    """Internal: the chaos schedule says this worker dies *now*."""


class FleetWorker:
    """One fleet worker process/thread.

    Parameters
    ----------
    address: coordinator endpoint (:class:`repro.serve.client.Address`).
    name: stable worker identity across reconnects; defaults to
        ``<hostname>-<pid>``. Re-registering under the same name
        supersedes the previous incarnation on the coordinator.
    capacity: concurrent points this worker advertises. Execution is
        inline (one at a time); capacity>1 simply batches leases.
    heartbeat_s: base heartbeat cadence; each sleep is jittered to
        ``[0.5, 1.5)×`` so a fleet started together does not thunder.
    cache_dir: optional point-cache directory consulted before
        executing and updated after — a worker on a warm cache answers
        leases without recomputing.
    reconnect_timeout_s: how long connection attempts may keep failing
        (from the last successful contact) before the worker gives up
        with a :class:`FleetError`.
    io_timeout_s: blocking-read limit per reply; a coordinator that
        goes silent longer looks like a dead connection → reconnect.
    chaos: optional scripted fault injection (duck-typed; see
        :class:`repro.fabric.chaos.WorkerChaos`).
    rng: jitter source, injectable for determinism in tests.
    """

    def __init__(
        self,
        address: Address,
        *,
        name: Optional[str] = None,
        capacity: int = 1,
        heartbeat_s: float = 0.2,
        cache_dir: Optional[Path] = None,
        reconnect_timeout_s: float = 10.0,
        io_timeout_s: float = 30.0,
        chaos=None,
        rng: Callable[[], float] = random.random,
    ):
        self.address = address
        self.name = name or f"{socket_mod.gethostname()}-{os.getpid()}"
        self.capacity = max(1, int(capacity))
        self.heartbeat_s = heartbeat_s
        self.reconnect_timeout_s = reconnect_timeout_s
        self.io_timeout_s = io_timeout_s
        self.chaos = chaos
        self._rng = rng
        self.point_cache = PointCache(Path(cache_dir)) if cache_dir else None
        self._sc: Optional[Scenario] = None
        self._reference = False
        self._model_reference = False
        self._key: Optional[str] = None
        self._silences_done: set[int] = set()
        self._stop = threading.Event()
        self.report: dict[str, Any] = {
            "worker": self.name,
            "results_sent": 0,
            "failures_sent": 0,
            "duplicates_sent": 0,
            "cache_hits": 0,
            "reconnects": 0,
            "reregisters": 0,
            "killed": False,
        }

    def stop(self) -> None:
        """Ask the worker to wind down at the next safe point (between
        points / frames / sleeps). Used by in-process harnesses; a
        standalone worker process just gets signalled instead."""
        self._stop.set()

    def _backoff_s(self, attempt: int) -> float:
        """Reconnect delay for the ``attempt``-th consecutive failure:
        exponential from 50 ms, capped at 0.5 s, jittered by ±50% so a
        fleet of workers orphaned together does not reconnect in
        lockstep. The exponent itself is clamped *before* ``2 **
        attempt`` is evaluated — during a long coordinator outage the
        attempt counter keeps climbing, and past ~1000 doublings the
        intermediate power no longer fits in a float (``OverflowError``)
        even though the result would just be clamped to 0.5 s anyway."""
        return min(0.5, 0.05 * 2.0 ** min(attempt, 16)) * (0.5 + self._rng())

    # -- top-level loop ------------------------------------------------------
    def run(self) -> dict[str, Any]:
        """Work until the coordinator says ``done`` (returns the
        worker's report), the chaos schedule kills this worker (report
        has ``killed=True``), or the fleet is unreachable/aborted
        (raises :class:`FleetError`)."""
        last_contact = time.monotonic()
        attempt = 0
        while not self._stop.is_set():
            try:
                sock = connect(self.address, timeout=2.0)
            except OSError as exc:
                if time.monotonic() - last_contact > self.reconnect_timeout_s:
                    raise FleetError(
                        f"worker {self.name}: coordinator at "
                        f"{self.address} unreachable for more than "
                        f"{self.reconnect_timeout_s}s: {exc}"
                    ) from exc
                self._stop.wait(self._backoff_s(attempt))
                attempt += 1
                continue
            attempt = 0
            sock.settimeout(self.io_timeout_s)
            stream = sock.makefile("rwb")
            try:
                self._session(stream)
                return self.report
            except _Killed:
                self.report["killed"] = True
                log_event(logger, logging.WARNING, "worker_chaos_killed",
                          worker=self.name,
                          results_sent=self.report["results_sent"])
                return self.report
            except (OSError, ProtocolError) as exc:
                last_contact = time.monotonic()  # we *had* a connection
                self.report["reconnects"] += 1
                log_event(logger, logging.INFO, "worker_reconnecting",
                          worker=self.name, error=str(exc))
            finally:
                for closer in (stream.close, sock.close):
                    try:
                        closer()
                    except OSError:
                        pass
        return self.report  # stop() mid-reconnect: wind down quietly

    # -- one connection ------------------------------------------------------
    def _session(self, stream) -> None:
        self._register(stream)
        while not self._stop.is_set():
            self._maybe_die()
            self._maybe_silence()
            reply = self._rpc(stream, protocol.heartbeat_msg(
                self.name, self.capacity))
            rtype = reply.get("type")
            if rtype == "lease":
                self._execute_lease(stream, reply.get("points", []))
            elif rtype == "ok":
                self._stop.wait(self.heartbeat_s * (0.5 + self._rng()))
            elif rtype == "done":
                log_event(logger, logging.INFO, "worker_done",
                          **self.report)
                return
            elif rtype == "reregister":
                self.report["reregisters"] += 1
                self._register(stream)
            elif rtype == "abort":
                raise FleetError(
                    f"worker {self.name}: sweep aborted by coordinator: "
                    f"{reply.get('message', 'no reason given')}")
            else:
                raise FleetError(
                    f"worker {self.name}: coordinator error: "
                    f"{reply.get('message', reply)}")

    def _register(self, stream) -> None:
        reply = self._rpc(stream, protocol.register_msg(
            self.name, self.capacity, self._key))
        if reply.get("type") == "error":
            raise FleetError(
                f"worker {self.name}: registration refused: "
                f"{reply.get('message')}")
        if reply.get("type") != "registered":
            raise ProtocolError(
                f"expected 'registered' reply, got {reply.get('type')!r}")
        spec = reply["scenario"]
        self._reference = bool(reply["reference"])
        self._model_reference = bool(reply["model_reference"])
        try:
            base = get_scenario(spec["name"])
            self._sc = base.with_overrides(
                {**spec["grid"], **spec["defaults"]}, seed=spec["seed"])
        except (KeyError, GridError) as exc:
            raise FleetError(
                f"worker {self.name}: cannot rebuild scenario "
                f"{spec.get('name')!r} from the coordinator's spec "
                f"({exc}); worker code is too old for this sweep"
            ) from exc
        self._key = request_key(self._sc, self._reference,
                                self._model_reference)
        if self._key != reply["request_key"]:
            raise FleetError(
                f"worker {self.name}: request key mismatch — coordinator "
                f"{reply['request_key'][:16]} vs locally recomputed "
                f"{self._key[:16]}. The worker is running different code "
                "or calibration than the coordinator; its values could "
                "silently diverge, so it refuses to participate."
            )
        log_event(logger, logging.INFO, "worker_registered",
                  worker=self.name, scenario=spec["name"],
                  request_key=self._key[:16], total=reply["total"])

    # -- lease execution -----------------------------------------------------
    def _execute_lease(self, stream, points: list[dict[str, Any]]) -> None:
        for point in points:
            if self._stop.is_set():
                return
            self._maybe_die()
            index, cfg = point["index"], point["cfg"]
            attempt = 1
            try:
                values, elapsed = self._execute_point(index, cfg)
            except _Killed:
                raise
            except Exception as exc:  # the point itself failed
                self._rpc(stream, protocol.failure_msg(
                    self.name, index, f"{type(exc).__name__}: {exc}",
                    attempt))
                self.report["failures_sent"] += 1
                continue
            self._chaos_delay()
            msg = protocol.result_msg(self.name, index, values, elapsed,
                                      attempt)
            self._rpc(stream, msg)
            self.report["results_sent"] += 1
            if self._chaos_duplicate():
                self._rpc(stream, msg)
                self.report["duplicates_sent"] += 1

    def _execute_point(
        self, index: int, cfg: dict[str, Any]
    ) -> tuple[dict[str, float], float]:
        assert self._sc is not None
        if self.point_cache is not None:
            key, hit = self.point_cache.lookup(
                self._sc, cfg, reference=self._reference,
                model_reference=self._model_reference)
            if hit is not None:
                self.report["cache_hits"] += 1
                return hit, 0.0
        _, values, elapsed, _ = _run_point_task((
            self._sc.name, index, cfg,
            self._reference, self._model_reference, False,
        ))
        if self.point_cache is not None:
            self.point_cache.store(self._sc.name, key, values)
        return values, elapsed

    # -- plumbing ------------------------------------------------------------
    def _rpc(self, stream, msg: dict[str, Any]) -> dict[str, Any]:
        send_msg(stream, msg)
        return recv_msg(stream)

    # -- chaos hooks ---------------------------------------------------------
    def _maybe_die(self) -> None:
        kill_after = getattr(self.chaos, "kill_after_results", None)
        if (kill_after is not None
                and self.report["results_sent"] >= kill_after):
            # Abrupt: no goodbye frame, no lease handback — exactly what
            # SIGKILL looks like from the coordinator's side.
            raise _Killed()

    def _maybe_silence(self) -> None:
        """Scripted heartbeat drops: after delivering N results, go
        silent for a window (a GC pause / network partition stand-in)
        and let the coordinator's failure detector do its worst."""
        for i, (after_results, duration) in enumerate(
                getattr(self.chaos, "silences", ()) or ()):
            if (i not in self._silences_done
                    and self.report["results_sent"] >= after_results):
                self._silences_done.add(i)
                log_event(logger, logging.INFO, "worker_chaos_silence",
                          worker=self.name, duration_s=duration)
                self._stop.wait(duration)

    def _chaos_delay(self) -> None:
        delay = getattr(self.chaos, "delay_results_s", None)
        if delay:
            self._stop.wait(delay)

    def _chaos_duplicate(self) -> bool:
        return bool(getattr(self.chaos, "duplicate_results", False))
