"""Deterministic fault injection for the fleet: scripted, not random.

The fabric's contract — any failure schedule merges byte-identical to
a serial sweep — is only testable if failure schedules can be
*scripted*: kill worker 0 after its second result, drop worker 1's
heartbeats for 300ms, crash the coordinator after five accepted
points, restart it, and demand the same bytes. This module provides
the two chaos descriptors the worker and coordinator consult
(duck-typed, so neither imports this module) and
:func:`run_chaos_fleet`, the in-process harness the tests and the CI
chaos-smoke job drive.

Everything runs in threads inside one process: workers execute points
inline, the coordinator serves its socket, and "kills" are abrupt
socket closes with leases still held — indistinguishable, from the
coordinator's side, from SIGKILL on a remote host.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments.driver import SweepResult
from repro.fabric.coordinator import FleetCoordinator
from repro.fabric.protocol import FleetError
from repro.fabric.tracker import TrackerConfig
from repro.fabric.worker import FleetWorker
from repro.serve.client import Address

__all__ = ["CoordinatorChaos", "WorkerChaos", "run_chaos_fleet"]


@dataclass(frozen=True)
class WorkerChaos:
    """One worker's scripted failure schedule.

    All triggers key off ``results_sent`` — a deterministic progress
    marker — never wall time, so a schedule means the same thing on a
    fast machine and a loaded CI runner.
    """

    #: Die abruptly (no goodbye, leases kept) after delivering N
    #: results. None: never.
    kill_after_results: Optional[int] = None
    #: ``(after_results, duration_s)`` heartbeat-silence windows — the
    #: worker stops heartbeating for ``duration_s`` once it has
    #: delivered ``after_results`` results (each window fires once).
    silences: tuple[tuple[int, float], ...] = ()
    #: Sleep this long between computing a result and delivering it
    #: (makes every point a straggler: speculation bait).
    delay_results_s: float = 0.0
    #: Deliver every result twice (exactly-once dedup exercise).
    duplicate_results: bool = False


@dataclass(frozen=True)
class CoordinatorChaos:
    """The coordinator's scripted failure schedule."""

    #: Crash (stop answering, leave the journal) after accepting N
    #: results. None: never.
    crash_after_results: Optional[int] = None


@dataclass
class _Fleet:
    """Mutable harness state shared between spawn helpers."""

    threads: list[threading.Thread] = field(default_factory=list)
    workers: list[FleetWorker] = field(default_factory=list)
    reports: list[dict[str, Any]] = field(default_factory=list)
    spawned: int = 0


def run_chaos_fleet(
    scenario,
    overrides: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    reference: Optional[bool] = None,
    model_reference: Optional[bool] = None,
    journal_path: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
    workers: int = 2,
    worker_chaos: Optional[Sequence[Optional[WorkerChaos]]] = None,
    coordinator_chaos: Optional[CoordinatorChaos] = None,
    respawn_killed: bool = True,
    max_restarts: int = 3,
    config: Optional[TrackerConfig] = None,
    heartbeat_s: float = 0.05,
    no_worker_timeout_s: float = 10.0,
    reconnect_timeout_s: float = 20.0,
    linger_s: float = 1.0,
    timeout_s: float = 120.0,
) -> tuple[SweepResult, dict[str, Any], list[dict[str, Any]]]:
    """Run one sweep through a localhost fleet under a failure script.

    Starts a TCP coordinator on an OS-assigned port and ``workers``
    worker threads (``worker_chaos[i]`` scripts worker i). Killed
    workers are replaced by fresh chaos-free workers when
    ``respawn_killed``; a chaos-crashed coordinator is restarted **on
    the same port with the same journal** (the resume path) up to
    ``max_restarts`` times, with chaos applied only to the first
    incarnation.

    Returns ``(result, stats, reports)``: the merged
    :class:`SweepResult`, the final coordinator stats augmented with
    ``restarts``, and one report dict per worker incarnation. Raises
    :class:`FleetError` when the sweep genuinely fails (poison points,
    fully dead fleet, restart budget exhausted).
    """
    if coordinator_chaos is not None and journal_path is None:
        raise ValueError(
            "coordinator_chaos without journal_path would lose every "
            "accepted point on crash; pass journal_path=")
    config = config or TrackerConfig(
        worker_timeout_s=1.0, lease_timeout_s=15.0, retry_backoff_s=0.1)
    schedules = list(worker_chaos or [])
    schedules += [None] * (workers - len(schedules))

    def make_coordinator(port: int, chaos) -> FleetCoordinator:
        return FleetCoordinator(
            scenario, overrides, seed=seed, port=port,
            reference=reference, model_reference=model_reference,
            config=config, journal_path=journal_path, cache_dir=cache_dir,
            no_worker_timeout_s=no_worker_timeout_s, linger_s=linger_s,
            chaos=chaos,
        ).start()

    coord = make_coordinator(0, coordinator_chaos)
    port = coord.port
    address = Address.parse(f"127.0.0.1:{port}", None)
    fleet = _Fleet()

    def spawn(chaos: Optional[WorkerChaos]) -> None:
        name = f"w{fleet.spawned}"
        fleet.spawned += 1
        worker = FleetWorker(
            address, name=name, chaos=chaos, heartbeat_s=heartbeat_s,
            reconnect_timeout_s=reconnect_timeout_s)

        def target() -> None:
            try:
                fleet.reports.append(worker.run())
            except FleetError as exc:
                fleet.reports.append({**worker.report, "error": str(exc)})

        t = threading.Thread(target=target, daemon=True,
                             name=f"repro-fleet-{name}")
        fleet.threads.append(t)
        fleet.workers.append(worker)
        t.start()

    for chaos in schedules:
        spawn(chaos)

    deadline = threading.Event()
    timer = threading.Timer(timeout_s, deadline.set)
    timer.start()
    restarts = 0
    # Worker threads run points in-process, and _run_point_task's
    # save/set/restore of the process-global reference modes races
    # between threads — harmless during the run (every worker sets the
    # same values) but able to *leak* the fleet's modes past it. Pin
    # the entry state and force-restore once every thread is joined.
    prev_reference = engine.REFERENCE_MODE
    prev_model_reference = modelmode.REFERENCE_MODE
    try:
        while True:
            if coord.wait(0.05):
                if coord.result is not None:
                    break
                if coord.crashed and restarts < max_restarts:
                    restarts += 1
                    # Same port, same journal: the genuine resume path.
                    coord = make_coordinator(port, None)
                    continue
                raise FleetError(coord.error or "fleet sweep failed")
            if deadline.is_set():
                coord.close()
                raise FleetError(
                    f"chaos fleet did not converge within {timeout_s}s; "
                    f"stats: {coord.stats()}")
            if respawn_killed:
                for t in list(fleet.threads):
                    if not t.is_alive():
                        fleet.threads.remove(t)
            # A replacement is owed for every reported kill that has
            # not been replaced yet.
            if respawn_killed:
                kills = sum(1 for r in fleet.reports if r.get("killed"))
                owed = workers + kills - fleet.spawned
                for _ in range(max(0, owed)):
                    spawn(None)
    finally:
        timer.cancel()
        coord.close()
        for worker in fleet.workers:
            worker.stop()
        for t in fleet.threads:
            t.join(timeout=10.0)
        leaked = [t.name for t in fleet.threads if t.is_alive()]
        engine.set_reference_mode(prev_reference)
        modelmode.set_model_reference(prev_model_reference)
        if leaked and sys.exc_info()[0] is None:
            # Never mask a real failure in flight; but a quiet leak
            # would let worker threads outlive the test that spawned
            # them (and pollute whatever runs next), so it is an error.
            raise FleetError(
                f"chaos fleet leaked worker threads past stop(): {leaked}")
    stats = {**coord.stats(), "restarts": restarts,
             "workers_spawned": fleet.spawned}
    return coord.result, stats, fleet.reports
