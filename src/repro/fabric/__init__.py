"""Fault-tolerant distributed sweep fabric: coordinator + worker fleet.

The third execution tier for scenario sweeps, after in-process
(``repro sweep``) and daemon-served (``repro serve``): a
**coordinator** (``repro fleet serve``) holds the canonical point list
for one sweep and hands out point *leases* to a fleet of **workers**
(``repro fleet worker``) that register over the same line-JSON wire
format the serving layer uses, heartbeat on a jittered cadence, execute
points through the existing scenario machinery, and stream values back.

What makes it a fabric rather than a job queue is the failure model —
everything on the coordinator side assumes workers lie, stall, die,
and resurrect:

- a lazy-expiry failure detector revokes leases from silent workers
  and re-enqueues their points;
- leases themselves time out, so a wedged worker cannot strand a point;
- stragglers past a configurable duration quantile are speculatively
  re-executed on idle workers, first result wins;
- failing points retry with exponential backoff up to a budget, then
  quarantine (the sweep aborts loudly rather than hangs);
- completed points are journaled to disk, so a crashed coordinator
  restarts into a resume, not a re-run.

The hard contract is inherited from the rest of the repo: any worker
count, failure schedule, and completion order merges to bytes
**identical** to a serial ``repro sweep`` (sha256-equal), with
exactly-once accounting — duplicated deliveries are deduplicated, late
results from zombie replicas are dropped, every accepted point is
accepted exactly once. ``fabric/chaos.py`` is the deterministic
fault-injection harness the tests drive that contract with.

Layering (socket-free core first, so the interesting logic is
fake-clock unit-testable):

- :mod:`repro.fabric.protocol` — fleet wire messages on
  :mod:`repro.wire`;
- :mod:`repro.fabric.journal` — the coordinator's completion journal;
- :mod:`repro.fabric.tracker` — lease/retry/speculation state machine;
- :mod:`repro.fabric.coordinator` — the network coordinator;
- :mod:`repro.fabric.worker` — the worker client;
- :mod:`repro.fabric.chaos` — scripted fault injection + fleet harness.

See ``docs/FAULT_TOLERANCE.md`` for semantics and tuning.
"""

from repro.fabric.chaos import CoordinatorChaos, WorkerChaos, run_chaos_fleet
from repro.fabric.coordinator import FleetCoordinator
from repro.fabric.journal import Journal
from repro.fabric.protocol import FLEET_PROTOCOL_VERSION, FleetError
from repro.fabric.tracker import SweepTracker, TrackerConfig
from repro.fabric.worker import FleetWorker

__all__ = [
    "CoordinatorChaos",
    "FLEET_PROTOCOL_VERSION",
    "FleetCoordinator",
    "FleetError",
    "FleetWorker",
    "Journal",
    "SweepTracker",
    "TrackerConfig",
    "WorkerChaos",
    "run_chaos_fleet",
]
