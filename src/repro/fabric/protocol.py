"""Fleet wire protocol: worker↔coordinator messages on line-JSON.

One persistent connection per worker, strict request/reply: the worker
sends one frame, the coordinator answers with exactly one frame. That
discipline keeps both sides trivially restartable — there is never an
unsolicited server push to lose, so a worker that reconnects after
either end died just registers again and carries on.

Worker → coordinator frames (``type`` selects)::

    {"type": "register", "worker": "w0", "capacity": 1,
     "request_key": "..." | null}     # null: worker can't compute one
    {"type": "heartbeat", "worker": "w0", "free": 1}
    {"type": "result", "worker": "w0", "index": 3,
     "values": {...}, "elapsed_s": 0.01, "attempt": 1}
    {"type": "point_failed", "worker": "w0", "index": 3,
     "error": "...", "attempt": 1}

Coordinator → worker replies::

    {"type": "registered", "worker": "w0", "scenario": {...spec...},
     "request_key": "...", "reference": bool, "model_reference": bool,
     "total": N}
    {"type": "lease", "points": [{"index": 3, "cfg": {...}}, ...]}
    {"type": "ok"}                     # heartbeat noted, nothing to run
    {"type": "ok", "accepted": bool}   # result acknowledged
    {"type": "done"}                   # sweep complete: disconnect
    {"type": "reregister"}             # coordinator restarted: re-register
    {"type": "abort", "message": ...}  # sweep failed: stop working
    {"type": "error", "message": ...}  # malformed frame / bad register

The lease carries each point's **fully-bound cfg** so a worker never
re-derives grid order, and the ``registered`` reply carries the full
scenario spec (grid, defaults, seed) plus the coordinator's request
key — the worker rebuilds the scenario locally, recomputes the key,
and refuses to participate on a mismatch. That is the same
consistency check the shard merger runs: it catches a worker running
different code (different git HEAD, different calibration) before it
can contribute a single wrong-but-plausible value.

Values travel as JSON floats; ``repr`` round-tripping preserves them
bit for bit, so fleet results are byte-identical to serial sweeps.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.wire import ProtocolError, decode, encode, read_events, recv_msg, send_msg

__all__ = [
    "FLEET_PROTOCOL_VERSION",
    "FleetError",
    "ProtocolError",
    "WORKER_TYPES",
    "decode",
    "encode",
    "parse_worker_msg",
    "read_events",
    "recv_msg",
    "send_msg",
]

FLEET_PROTOCOL_VERSION = 1

#: Frame types a worker may send; anything else is a protocol error.
WORKER_TYPES = ("register", "heartbeat", "result", "point_failed")


class FleetError(RuntimeError):
    """A fleet-level failure: dead fleet, poisoned point, key mismatch.

    Deliberately loud — the fabric's failure philosophy is that every
    unrecoverable condition surfaces as a clear error instead of a
    hang, because a distributed sweep that silently stalls is the
    worst possible diagnostic experience.
    """


def _require(msg: Mapping[str, Any], field: str, kind, desc: str):
    value = msg.get(field)
    if not isinstance(value, kind) or (kind is str and not value):
        raise ProtocolError(
            f"{msg.get('type')}: {field!r} must be {desc}"
        )
    return value


def parse_worker_msg(msg: Mapping[str, Any]) -> dict[str, Any]:
    """Validate one worker frame's shape; semantics are the tracker's
    job. Returns a normalized copy."""
    mtype = msg.get("type")
    if mtype not in WORKER_TYPES:
        raise ProtocolError(
            f"unknown fleet frame type {mtype!r}; expected one of: "
            f"{', '.join(WORKER_TYPES)}"
        )
    out: dict[str, Any] = {"type": mtype}
    out["worker"] = _require(msg, "worker", str, "a non-empty string")
    if mtype == "register":
        capacity = msg.get("capacity", 1)
        if not isinstance(capacity, int) or capacity < 1:
            raise ProtocolError("register: 'capacity' must be an int >= 1")
        out["capacity"] = capacity
        key = msg.get("request_key")
        if key is not None and not isinstance(key, str):
            raise ProtocolError("register: 'request_key' must be a string or null")
        out["request_key"] = key
    elif mtype == "heartbeat":
        free = msg.get("free", 0)
        if not isinstance(free, int) or free < 0:
            raise ProtocolError("heartbeat: 'free' must be an int >= 0")
        out["free"] = free
    elif mtype == "result":
        out["index"] = _require(msg, "index", int, "an integer")
        values = msg.get("values")
        if not isinstance(values, dict):
            raise ProtocolError("result: 'values' must be an object")
        out["values"] = values
        elapsed = msg.get("elapsed_s", 0.0)
        if not isinstance(elapsed, (int, float)):
            raise ProtocolError("result: 'elapsed_s' must be a number")
        out["elapsed_s"] = float(elapsed)
        attempt = msg.get("attempt", 1)
        if not isinstance(attempt, int) or attempt < 1:
            raise ProtocolError("result: 'attempt' must be an int >= 1")
        out["attempt"] = attempt
    elif mtype == "point_failed":
        out["index"] = _require(msg, "index", int, "an integer")
        out["error"] = _require(msg, "error", str, "a non-empty string")
        attempt = msg.get("attempt", 1)
        if not isinstance(attempt, int) or attempt < 1:
            raise ProtocolError("point_failed: 'attempt' must be an int >= 1")
        out["attempt"] = attempt
    return out


def scenario_spec(sc) -> dict[str, Any]:
    """The portable description of a bound scenario a worker needs to
    rebuild it: registry name + grid + defaults + seed. Everything else
    (point function, curves, labels) comes from the worker's own
    registry — which is exactly the point: if the worker's code would
    define the sweep differently, the request-key check catches it."""
    return {
        "name": sc.name,
        "grid": {k: list(v) for k, v in sc.grid.items()},
        "defaults": dict(sc.defaults),
        "seed": sc.seed,
    }


def registered_reply(
    worker: str,
    sc,
    request_key: str,
    reference: bool,
    model_reference: bool,
    total: int,
) -> dict[str, Any]:
    return {
        "type": "registered",
        "version": FLEET_PROTOCOL_VERSION,
        "worker": worker,
        "scenario": scenario_spec(sc),
        "request_key": request_key,
        "reference": bool(reference),
        "model_reference": bool(model_reference),
        "total": total,
    }


def lease_reply(points: list[tuple[int, Mapping[str, Any]]]) -> dict[str, Any]:
    return {
        "type": "lease",
        "points": [{"index": i, "cfg": dict(cfg)} for i, cfg in points],
    }


def register_msg(
    worker: str, capacity: int, request_key: Optional[str]
) -> dict[str, Any]:
    return {
        "type": "register",
        "version": FLEET_PROTOCOL_VERSION,
        "worker": worker,
        "capacity": capacity,
        "request_key": request_key,
    }


def heartbeat_msg(worker: str, free: int) -> dict[str, Any]:
    return {"type": "heartbeat", "worker": worker, "free": free}


def result_msg(
    worker: str, index: int, values: Mapping[str, float],
    elapsed_s: float, attempt: int,
) -> dict[str, Any]:
    return {
        "type": "result",
        "worker": worker,
        "index": index,
        "values": dict(values),
        "elapsed_s": elapsed_s,
        "attempt": attempt,
    }


def failure_msg(worker: str, index: int, error: str, attempt: int) -> dict[str, Any]:
    return {
        "type": "point_failed",
        "worker": worker,
        "index": index,
        "error": error,
        "attempt": attempt,
    }
