"""Tabular reporting for the benchmark harness.

Formats the rows each bench prints (the "same rows/series the paper
reports") and the paper-vs-measured comparison blocks that feed
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence

from repro.analysis.series import Series

__all__ = [
    "decision_counters_table",
    "format_table",
    "metrics_snapshot_table",
    "paper_comparison_rows",
    "percentile",
    "serve_jobs_table",
    "series_table",
    "sweep_metrics_table",
    "sweep_summary",
    "sweep_timing_table",
    "tenant_latency_table",
    "timeseries_summary_table",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Deterministic and dependency-free (no numpy in the reporting path):
    sorts the values and interpolates between the two nearest order
    statistics — numpy's default ``linear`` method, so tables match what
    a notebook would compute. Raises on an empty sample.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))) for row in cells)
    return f"{header}\n{sep}\n{body}"


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def series_table(series: Sequence[Series], x_name: str = "x") -> str:
    """All curves of one figure on a shared-x table."""
    if not series:
        return "(no series)"
    xs = series[0].xs
    rows = []
    for i, x in enumerate(xs):
        row: dict[str, Any] = {x_name: x}
        for s in series:
            row[s.label] = s.ys[i] if i < len(s.ys) else ""
        rows.append(row)
    return format_table(rows)


def sweep_summary(series: Sequence[Series], x_name: str = "x") -> str:
    """Per-curve sweep digest: extremes, span ratio, end-to-end log-log
    slope — the quick who-wins/how-it-scales read of a finished sweep."""
    if not series:
        return "(no series)"
    rows = []
    for s in series:
        if len(s) == 0:
            continue
        ymin, ymax = min(s.ys), max(s.ys)
        row: dict[str, Any] = {
            "curve": s.label,
            "points": len(s),
            f"{x_name} range": f"{_fmt(min(s.xs))}..{_fmt(max(s.xs))}",
            "y min": ymin,
            "y max": ymax,
        }
        x0, x1 = s.xs[0], s.xs[-1]
        y0, y1 = s.ys[0], s.ys[-1]
        if min(x0, x1, y0, y1) > 0 and x0 != x1:
            slope = (math.log10(y1) - math.log10(y0)) / (math.log10(x1) - math.log10(x0))
            row["loglog slope"] = round(slope, 3)
        else:
            row["loglog slope"] = ""
        rows.append(row)
    return format_table(rows)


#: decision_counters key → column heading, in display order. Unknown
#: keys (future policies) are appended alphabetically.
_DECISION_COLUMNS = (
    ("assignments", "assignments"),
    ("speculative_assignments", "speculations"),
    ("kills_issued", "kills"),
    ("preemptions", "preemptions"),
    ("delay_waits", "delay waits"),
    ("heartbeats", "heartbeats"),
    ("heartbeat_parks", "parks"),
    ("heartbeat_batches", "hb batches"),
    ("heartbeat_batch_hist", "hb batch hist"),
)


def _fmt_batch_hist(hist: Mapping[str, int]) -> str:
    """Compact ``size:passes`` rendering of the heartbeat batch-size
    histogram (``{"1": 523, "8": 3}`` → ``"1:523 8:3"``)."""
    if not hist:
        return "-"
    return " ".join(
        f"{size}:{hist[size]}" for size in sorted(hist, key=int)
    )


def decision_counters_table(
    per_policy: Mapping[str, Mapping[str, float]],
) -> str:
    """Per-policy scheduling-decision tallies as a table.

    ``per_policy`` maps a policy label (usually the scheduler name) to
    its merged decision counters — the dict
    :meth:`repro.hadoop.jobtracker.JobTracker.decision_counters`
    returns. One row per policy, known counters in a fixed column
    order so policies can be compared side by side.
    """
    if not per_policy:
        return "(no decision counters)"
    known = [k for k, _ in _DECISION_COLUMNS]
    extras = sorted(
        {k for counters in per_policy.values() for k in counters} - set(known)
    )
    rows = []
    for label, counters in per_policy.items():
        row: dict[str, Any] = {"scheduler": label}
        for key, heading in _DECISION_COLUMNS:
            value = counters.get(key, 0)
            if key == "heartbeat_batch_hist":
                value = _fmt_batch_hist(value if isinstance(value, Mapping) else {})
            row[heading] = value
        for key in extras:
            row[key] = counters.get(key, 0)
        rows.append(row)
    return format_table(rows)


def tenant_latency_table(
    per_tenant: Mapping[str, Sequence[float]],
    weights: Optional[Mapping[str, float]] = None,
) -> str:
    """Per-tenant job-latency percentiles as a table.

    ``per_tenant`` maps a tenant/workload label to its jobs' submit-to-
    finish latencies (seconds); ``weights`` optionally carries the
    tenant's scheduler weight for context. One row per tenant in label
    order: job count, mean, p50, p95, max — the SLA view of a
    multi-tenant mix (p95 is what a latency SLO is written against,
    and the number preemptive fair sharing exists to protect for
    high-weight tenants).
    """
    rows = []
    for tenant in sorted(per_tenant):
        lats = list(per_tenant[tenant])
        if not lats:
            continue
        row: dict[str, Any] = {"tenant": tenant}
        if weights is not None:
            row["weight"] = weights.get(tenant, 1.0)
        row.update({
            "jobs": len(lats),
            "mean_s": sum(lats) / len(lats),
            "p50_s": percentile(lats, 50),
            "p95_s": percentile(lats, 95),
            "max_s": max(lats),
        })
        rows.append(row)
    if not rows:
        return "(no tenant latencies)"
    return format_table(rows)


def sweep_timing_table(points: Sequence[Mapping[str, Any]], top: int = 0) -> str:
    """Per-point wall-clock table for a finished sweep, slowest first.

    ``points`` is ``SweepResult.points``: executed rows carry a
    non-canonical ``elapsed_s``, cache-assembled rows a ``cached``
    marker. Executed points sort by elapsed time descending (the
    stragglers the cost-aware dispatcher exists to front-load), cached
    points trail. ``top`` > 0 truncates to the slowest N executed
    points plus a one-line cached summary.
    """
    if not points:
        return "(no points)"
    executed = [p for p in points if p.get("elapsed_s") is not None]
    cached = len(points) - len(executed)
    executed.sort(key=lambda p: p["elapsed_s"], reverse=True)
    shown = executed[:top] if top > 0 else executed
    total = sum(p["elapsed_s"] for p in executed)
    rows = [
        {
            "point": ", ".join(f"{k}={_fmt(v)}" for k, v in p["params"].items()),
            "elapsed_s": p["elapsed_s"],
            "share": f"{100 * p['elapsed_s'] / total:.1f}%" if total else "-",
        }
        for p in shown
    ]
    if not rows:
        return f"(all {cached} point(s) assembled from cache)"
    table = format_table(rows, columns=["point", "elapsed_s", "share"])
    trailer = []
    if top > 0 and len(executed) > top:
        trailer.append(f"(+{len(executed) - top} faster executed point(s))")
    if cached:
        trailer.append(f"(+{cached} point(s) assembled from cache)")
    return "\n".join([table, *trailer])


def _metric_label_rows(snap: Mapping[str, Any]):
    """Yield ``(labels_str, value)`` per labelled value of one metric's
    snapshot dict (label keys are comma-joined label values)."""
    label_names = snap.get("labels") or []
    for key, value in snap.get("values", {}).items():
        if label_names:
            labels = " ".join(
                f"{n}={v}" for n, v in zip(label_names, key.split(","))
            )
        else:
            labels = "-"
        yield labels, value


def metrics_snapshot_table(snapshot: Mapping[str, Any]) -> str:
    """Counters, gauges, and histograms of one registry snapshot
    (:meth:`repro.obs.MetricsRegistry.snapshot`) as a table — the body
    of ``repro metrics <scenario>``. Histogram rows compress to
    ``n/sum/mean``; the full bucket layout lives in the Prometheus
    exposition."""
    rows = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        for labels, value in _metric_label_rows(snap):
            if kind == "histogram":
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                shown = (f"n={value['count']} sum={_fmt(float(value['sum']))} "
                         f"mean={_fmt(mean)}")
            else:
                shown = _fmt(float(value))
            rows.append({"metric": name, "kind": kind,
                         "labels": labels, "value": shown})
    if not rows:
        return "(no metrics recorded)"
    return format_table(rows, columns=["metric", "kind", "labels", "value"])


def timeseries_summary_table(snapshot: Mapping[str, Any]) -> str:
    """Virtual-time series digest: samples, time range, min/mean/max/
    last — the inside-the-simulation view ``repro metrics`` prints
    under the counter table."""
    rows = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        if snap.get("kind") != "timeseries":
            continue
        for labels, pts in _metric_label_rows(snap):
            if not pts:
                continue
            vals = [float(v) for _, v in pts]
            rows.append({
                "series": name,
                "labels": labels,
                "samples": len(pts),
                "t range": f"{_fmt(float(pts[0][0]))}..{_fmt(float(pts[-1][0]))}",
                "min": min(vals),
                "mean": sum(vals) / len(vals),
                "max": max(vals),
                "last": vals[-1],
            })
    if not rows:
        return "(no virtual-time series)"
    return format_table(rows, columns=["series", "labels", "samples",
                                       "t range", "min", "mean", "max", "last"])


def sweep_metrics_table(points: Sequence[Mapping[str, Any]]) -> str:
    """Counter totals aggregated across a sweep's per-point metrics
    snapshots (rows carry a non-canonical ``metrics`` entry when the
    sweep ran with ``collect_metrics=True``, i.e. ``repro sweep -v``).
    Returns ``""`` when no point carried a snapshot."""
    totals: dict[tuple[str, str], float] = {}
    instrumented = 0
    for p in points:
        snapshot = p.get("metrics")
        if not snapshot:
            continue
        instrumented += 1
        for name in snapshot:
            snap = snapshot[name]
            if snap.get("kind") != "counter":
                continue
            for labels, value in _metric_label_rows(snap):
                key = (name, labels)
                totals[key] = totals.get(key, 0.0) + float(value)
    if not totals:
        return ""
    rows = [{"metric": name, "labels": labels, "total": total}
            for (name, labels), total in sorted(totals.items())]
    table = format_table(rows, columns=["metric", "labels", "total"])
    return f"metrics over {instrumented} instrumented point(s):\n{table}"


def paper_comparison_rows(
    figure: str,
    claims: Sequence[tuple[str, str, str, bool]],
) -> str:
    """Render (claim, paper_value, measured_value, holds) rows."""
    rows = [
        {
            "figure": figure,
            "claim": claim,
            "paper": paper,
            "measured": measured,
            "holds": "YES" if holds else "NO",
        }
        for claim, paper, measured, holds in claims
    ]
    return format_table(rows, columns=["figure", "claim", "paper", "measured", "holds"])


def serve_jobs_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """The daemon's job table as `repro submit --status` prints it.

    One row per job (admission order), from the snapshot dicts the
    status verb returns. Optional per-state fields (runtime, sha,
    error) render as "-" where absent so the table stays rectangular.
    """
    if not rows:
        return "(no jobs)"
    display = [
        {
            "job": r.get("job", "-"),
            "scenario": r.get("scenario", "-"),
            "state": r.get("state", "-"),
            "progress": f"{r.get('done', 0)}/{r.get('total', 0)}",
            "clients": r.get("clients", 0),
            "key": r.get("request_key", "-"),
            "age_s": r.get("age_s", "-"),
            "runtime_s": r.get("runtime_s", "-"),
            "sha256": (r["sha256"][:16] if r.get("sha256") else "-"),
            "error": r.get("error", "-"),
        }
        for r in rows
    ]
    return format_table(
        display,
        columns=["job", "scenario", "state", "progress", "clients", "key",
                 "age_s", "runtime_s", "sha256", "error"],
    )
