"""Result analysis: series, shape checks, ASCII plots, report tables."""

from repro.analysis.series import Series, ascii_chart
from repro.analysis.shapes import (
    crossover_x,
    is_monotonic,
    log_slope,
    ratio_between,
    scaling_efficiency,
)
from repro.analysis.report import (
    decision_counters_table,
    format_table,
    metrics_snapshot_table,
    paper_comparison_rows,
    percentile,
    serve_jobs_table,
    sweep_metrics_table,
    sweep_summary,
    sweep_timing_table,
    tenant_latency_table,
    timeseries_summary_table,
)

__all__ = [
    "Series",
    "ascii_chart",
    "crossover_x",
    "decision_counters_table",
    "format_table",
    "is_monotonic",
    "log_slope",
    "metrics_snapshot_table",
    "paper_comparison_rows",
    "percentile",
    "ratio_between",
    "scaling_efficiency",
    "serve_jobs_table",
    "sweep_metrics_table",
    "sweep_summary",
    "sweep_timing_table",
    "tenant_latency_table",
    "timeseries_summary_table",
]
