"""Series containers and terminal plotting.

Every benchmark produces :class:`Series` objects — one per figure curve —
and renders them with :func:`ascii_chart` so a reproduction run shows the
same log-log shapes the paper's gnuplot figures do, directly in the
terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["Series", "ascii_chart"]


@dataclass
class Series:
    """One labelled curve: parallel x/y vectors plus free metadata."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)
    backend: Any = None

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")

    def append(self, x: float, y: float) -> None:
        self.xs.append(float(x))
        self.ys.append(float(y))

    def y_at(self, x: float) -> float:
        """Exact-x lookup (benchmark grids are shared across curves)."""
        for xi, yi in zip(self.xs, self.ys):
            if xi == x:
                return yi
        raise KeyError(f"x={x} not in series {self.label!r}")

    def __len__(self) -> int:
        return len(self.xs)

    def rows(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.ys))


def ascii_chart(
    series: Sequence[Series],
    width: int = 72,
    height: int = 20,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render curves as a log-log (by default) ASCII scatter chart."""
    pts = [(s, x, y) for s in series for x, y in zip(s.xs, s.ys) if y > 0 and x > 0]
    if not pts:
        return f"{title}\n(no data)"

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [tx(x) for _s, x, _y in pts]
    ys = [ty(y) for _s, _x, y in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "o+x*#@%&"
    for si, s in enumerate(series):
        m = markers[si % len(markers)]
        for x, y in zip(s.xs, s.ys):
            if x <= 0 or y <= 0:
                continue
            col = int((tx(x) - xmin) / xspan * (width - 1))
            row = int((ty(y) - ymin) / yspan * (height - 1))
            grid[height - 1 - row][col] = m

    lines = []
    if title:
        lines.append(title)
    top = 10 ** ymax if logy else ymax
    bot = 10 ** ymin if logy else ymin
    lines.append(f"{ylabel} (top={top:.4g}, bottom={bot:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    left = 10 ** xmin if logx else xmin
    right = 10 ** xmax if logx else xmax
    lines.append(f" {xlabel}: {left:.4g} .. {right:.4g}")
    legend = "  ".join(f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(series))
    lines.append(" legend: " + legend)
    return "\n".join(lines)
