"""Shape assertions for reproduced figures.

The reproduction's claims are about *shapes* — who wins, by what factor,
where crossovers fall, how curves scale. These helpers turn each claim
into a checkable predicate used by both the benchmark harness and the
test suite.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.series import Series

__all__ = [
    "crossover_x",
    "is_monotonic",
    "log_slope",
    "ratio_between",
    "scaling_efficiency",
]


def ratio_between(a: Series, b: Series, x: float) -> float:
    """a(x) / b(x) on a shared grid point."""
    return a.y_at(x) / b.y_at(x)


def crossover_x(a: Series, b: Series) -> Optional[float]:
    """First shared x where a's y overtakes b's (a >= b), or None.

    Both series must share their x grid in order.
    """
    if a.xs != b.xs:
        raise ValueError("series must share the same x grid")
    prev_sign = None
    for x, ya, yb in zip(a.xs, a.ys, b.ys):
        sign = ya >= yb
        if sign and prev_sign is False:
            return x
        if prev_sign is None and sign:
            return x
        prev_sign = sign
    return None


def is_monotonic(values: Sequence[float], increasing: bool = True, tol: float = 0.0) -> bool:
    """Monotonicity with an absolute slack ``tol`` per step."""
    for a, b in zip(values, values[1:]):
        if increasing and b < a - tol:
            return False
        if not increasing and b > a + tol:
            return False
    return True


def log_slope(series: Series, x0: float, x1: float) -> float:
    """Slope of the curve between two grid points in log-log space.

    A perfectly scaling time-vs-nodes curve has slope -1; a flat
    (runtime-floor-bound) region has slope ~0.
    """
    y0, y1 = series.y_at(x0), series.y_at(x1)
    if min(x0, x1, y0, y1) <= 0:
        raise ValueError("log_slope requires positive coordinates")
    return (math.log10(y1) - math.log10(y0)) / (math.log10(x1) - math.log10(x0))


def scaling_efficiency(series: Series, base_x: Optional[float] = None) -> list[float]:
    """Speedup(x)/x relative to the smallest (or given) configuration,
    for time-vs-nodes curves. 1.0 = perfect linear scaling."""
    if len(series) == 0:
        return []
    bx = base_x if base_x is not None else series.xs[0]
    bt = series.y_at(bx)
    out = []
    for x, t in zip(series.xs, series.ys):
        speedup = bt / t if t > 0 else float("inf")
        out.append(speedup / (x / bx))
    return out
