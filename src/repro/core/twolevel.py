"""Functional two-level encryption pipeline.

Mirrors Figure 1/3 of the paper with real bytes: the *cluster* level
partitions the file into records (Hadoop's map() work unit); the *node*
level chunks each record into 4 KB blocks and runs them through a Cell
offload runtime's functional path, where local-store capacity and SIMD
alignment are enforced.

AES runs in CTR mode so every chunk encrypts independently at its own
counter offset — the property that makes the kernel embarrassingly
parallel across SPEs (and what the paper's ECB-style SPU kernel gets by
construction). A test proves the pipeline output is bit-identical to a
single whole-buffer encryption.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.perf.calibration import CalibrationProfile, PAPER_CALIBRATION
from repro.cell.processor import CellProcessor
from repro.cell.runtime import DirectSPERuntime
from repro.sim.engine import Environment
from repro.workloads.aes import AES128, BLOCK_BYTES

__all__ = ["TwoLevelEncryptor"]


class TwoLevelEncryptor:
    """Encrypt a byte buffer through the full two-level decomposition.

    Parameters
    ----------
    key: AES-128 key (16 bytes).
    nonce: CTR nonce (8 bytes).
    record_bytes: cluster-level work unit (the paper's 64 MB; tests use
        smaller records).
    chunk_bytes: node-level SPU chunk (the paper's 4 KB).
    calib: calibration profile for the Cell model.
    """

    def __init__(
        self,
        key: bytes,
        nonce: bytes = b"\x00" * 8,
        record_bytes: int = 64 * 1024,
        chunk_bytes: Optional[int] = None,
        calib: CalibrationProfile = PAPER_CALIBRATION,
    ):
        if record_bytes <= 0 or record_bytes % BLOCK_BYTES:
            raise ValueError("record_bytes must be a positive multiple of 16")
        self.cipher = AES128(key)
        self.nonce = bytes(nonce)
        self.record_bytes = record_bytes
        self.calib = calib
        # A bare simulated Cell socket: only the functional machinery
        # (chunking, local-store checks, alignment) is used here.
        env = Environment()
        self.cell = CellProcessor(env, 0, calib)
        self.runtime = DirectSPERuntime(self.cell, calib, chunk_bytes=chunk_bytes)

    @property
    def chunk_bytes(self) -> int:
        return self.runtime.chunk_bytes

    def _record_kernel(self, record_offset: int):
        """Build the per-chunk kernel for a record starting at
        ``record_offset`` bytes into the file: each chunk encrypts at
        its own absolute CTR block offset."""
        chunk_counter = {"pos": record_offset}

        def kernel(chunk: np.ndarray) -> np.ndarray:
            offset = chunk_counter["pos"]
            assert offset % BLOCK_BYTES == 0
            out = self.cipher.ctr_crypt(chunk, self.nonce, initial_counter=offset // BLOCK_BYTES)
            chunk_counter["pos"] = offset + chunk.size
            return out

        return kernel

    def encrypt(self, data: bytes) -> bytes:
        """Run the two-level pipeline over ``data``.

        Level 1: split into records. Level 2: per record, the Cell
        runtime chunks to 4 KB and applies the kernel per chunk.
        """
        if len(data) % BLOCK_BYTES:
            raise ValueError("input must be a multiple of 16 bytes (CTR framing unit)")
        out = bytearray()
        for off in range(0, len(data), self.record_bytes):
            record = data[off : off + self.record_bytes]
            kernel = self._record_kernel(off)
            encrypted = self.runtime.execute_bytes(record, kernel)
            out.extend(encrypted.tobytes())
        return bytes(out)

    def decrypt(self, data: bytes) -> bytes:
        """CTR is self-inverse, so decryption is the same pipeline."""
        return self.encrypt(data)

    def reference_encrypt(self, data: bytes) -> bytes:
        """Whole-buffer single-level encryption (the test oracle)."""
        return self.cipher.ctr_crypt(data, self.nonce).tobytes()
