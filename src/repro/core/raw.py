"""Single-node raw kernel experiments (Figs. 2 and 6).

"In our first experiment ... we use one single Cell blade to evaluate
the raw potential of the Cell acceleration when the workload is no[t]
subject to the communication and synchronization requirements that are
present in distributed systems ... Notice that Hadoop is not involved in
this experiment" (§IV-A).

Cell configurations run through the simulated offload runtimes (a fresh
runtime per measurement, so SPE startup is included, exactly as each
benchmarked kernel invocation paid it); Java configurations use the
calibrated analytic models directly (a JVM loop has no interesting
internal structure to simulate).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.perf.calibration import Backend, CalibrationProfile, MB, PAPER_CALIBRATION
from repro.perf.kernels import make_aes_model, make_pi_model
from repro.cell.processor import CellProcessor
from repro.cell.runtime import CellMapReduceRuntime, DirectSPERuntime
from repro.sim.engine import Environment
from repro.analysis.series import Series

__all__ = ["raw_encryption_bandwidth", "raw_pi_rates", "FIG2_CONFIGS", "FIG6_CONFIGS"]

FIG2_CONFIGS: tuple[Backend, ...] = (
    Backend.CELL_SPE_DIRECT,
    Backend.CELL_SPE_MAPREDUCE,
    Backend.JAVA_PPE,
    Backend.JAVA_POWER6,
)
"""Fig. 2's four curves: "Cell BE", "MapReduce Cell", "PPC", "Power 6"."""

FIG6_CONFIGS: tuple[Backend, ...] = (
    Backend.CELL_SPE_DIRECT,
    Backend.JAVA_PPE,
    Backend.JAVA_POWER6,
)
"""Fig. 6's three curves: "Cell BE", "PPC", "Power 6"."""

_LABELS = {
    Backend.CELL_SPE_DIRECT: "Cell BE",
    Backend.CELL_SPE_MAPREDUCE: "MapReduce Cell",
    Backend.JAVA_PPE: "PPC",
    Backend.JAVA_POWER6: "Power 6",
}


def _cell_offload_time(
    backend: Backend, nbytes: float, calib: CalibrationProfile
) -> float:
    """Simulate one fresh-runtime offload of ``nbytes``; returns seconds."""
    env = Environment()
    cell = CellProcessor(env, 0, calib)
    cls = DirectSPERuntime if backend is Backend.CELL_SPE_DIRECT else CellMapReduceRuntime
    runtime = cls(cell, calib, startup_s=calib.kernel_startup_s(backend, "aes"))
    spe_bw = calib.aes_spe_bw

    def run():
        result = yield from runtime.offload_bytes(nbytes, spe_bw)
        return result

    proc = env.process(run())
    result = env.run(proc)
    return result.elapsed_s


def raw_encryption_bandwidth(
    sizes_mb: Sequence[float] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    configs: Iterable[Backend] = FIG2_CONFIGS,
    calib: CalibrationProfile = PAPER_CALIBRATION,
) -> list[Series]:
    """Fig. 2: encryption bandwidth (MB/s) vs. working-set size (MB)."""
    out: list[Series] = []
    for backend in configs:
        xs = [float(size_mb) for size_mb in sizes_mb]
        byte_counts = [size_mb * MB for size_mb in sizes_mb]
        if backend in (Backend.CELL_SPE_DIRECT, Backend.CELL_SPE_MAPREDUCE):
            elapsed_per_size = [
                _cell_offload_time(backend, nbytes, calib) for nbytes in byte_counts
            ]
        else:
            # Whole Java curve in one vectorized evaluation (bit-identical
            # per point to the scalar time_for).
            elapsed_per_size = make_aes_model(calib, backend).time_for_batch(byte_counts)
        ys = [
            float(nbytes / elapsed / MB)
            for nbytes, elapsed in zip(byte_counts, elapsed_per_size)
        ]
        out.append(Series(label=_LABELS[backend], xs=xs, ys=ys, backend=backend))
    return out


def _cell_pi_time(samples: float, calib: CalibrationProfile) -> float:
    env = Environment()
    cell = CellProcessor(env, 0, calib)
    runtime = DirectSPERuntime(cell, calib, startup_s=calib.pi_spu_init_s)

    def run():
        result = yield from runtime.offload_samples(samples, calib.pi_cell_rate)
        return result

    proc = env.process(run())
    result = env.run(proc)
    return result.elapsed_s


def raw_pi_rates(
    sample_counts: Sequence[float] = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9),
    configs: Iterable[Backend] = FIG6_CONFIGS,
    calib: CalibrationProfile = PAPER_CALIBRATION,
) -> list[Series]:
    """Fig. 6: Pi estimation rate (samples/s) vs. problem size (samples)."""
    out: list[Series] = []
    for backend in configs:
        xs = [float(samples) for samples in sample_counts]
        if backend is Backend.CELL_SPE_DIRECT:
            elapsed_per_count = [_cell_pi_time(s, calib) for s in sample_counts]
        else:
            elapsed_per_count = make_pi_model(calib, backend).time_for_batch(sample_counts)
        ys = [float(s / elapsed) for s, elapsed in zip(sample_counts, elapsed_per_count)]
        out.append(Series(label=_LABELS[backend], xs=xs, ys=ys, backend=backend))
    return out
