"""A functional, in-process MapReduce engine.

Executes real map()/reduce() functions over real data with Hadoop
semantics: map emits key/value pairs, an optional combiner folds them
per-mapper, pairs are hash-partitioned, sorted by key within each
partition, grouped, and reduced. Deterministic: the same input always
produces the same output in the same order.

This is the semantic reference the simulated runtime is tested against,
and the engine behind the quickstart/wordcount examples.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Any, Callable, Iterable, Optional

__all__ = ["LocalExecutor"]

MapFn = Callable[[Any, Any, Callable[[Any, Any], None]], None]
ReduceFn = Callable[[Any, list, Callable[[Any, Any], None]], None]


def _stable_hash(key: Any) -> int:
    """Deterministic across processes (unlike built-in ``hash`` for str)."""
    data = key if isinstance(key, bytes) else repr(key).encode("utf-8")
    return zlib.crc32(data)


class LocalExecutor:
    """Run MapReduce jobs in-process.

    Parameters
    ----------
    num_reducers:
        Number of reduce partitions (parallelism is simulated only in
        partitioning semantics; execution is serial and deterministic).
    """

    def __init__(self, num_reducers: int = 1):
        if num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        self.num_reducers = num_reducers
        self.counters: dict[str, int] = defaultdict(int)

    # -- phases -----------------------------------------------------------------
    def map_phase(self, inputs: Iterable[tuple[Any, Any]], map_fn: MapFn,
                  combiner: Optional[ReduceFn] = None) -> list[list[tuple[Any, Any]]]:
        """Run map() over all inputs; returns per-partition pair lists."""
        partitions: list[list[tuple[Any, Any]]] = [[] for _ in range(self.num_reducers)]
        staged: list[tuple[Any, Any]] = []

        def emit(k: Any, v: Any) -> None:
            staged.append((k, v))
            self.counters["map_output_records"] += 1

        for key, value in inputs:
            self.counters["map_input_records"] += 1
            map_fn(key, value, emit)

        if combiner is not None:
            staged = self._combine(staged, combiner)

        for k, v in staged:
            partitions[_stable_hash(k) % self.num_reducers].append((k, v))
        return partitions

    def _combine(self, pairs: list[tuple[Any, Any]], combiner: ReduceFn) -> list[tuple[Any, Any]]:
        grouped: dict[Any, list] = defaultdict(list)
        for k, v in pairs:
            grouped[k].append(v)
        out: list[tuple[Any, Any]] = []

        def emit(k: Any, v: Any) -> None:
            out.append((k, v))
            self.counters["combine_output_records"] += 1

        for k in sorted(grouped, key=repr):
            combiner(k, grouped[k], emit)
        return out

    def reduce_phase(self, partitions: list[list[tuple[Any, Any]]],
                     reduce_fn: ReduceFn) -> list[tuple[Any, Any]]:
        """Sort/group each partition and reduce; returns all output pairs."""
        output: list[tuple[Any, Any]] = []

        def emit(k: Any, v: Any) -> None:
            output.append((k, v))
            self.counters["reduce_output_records"] += 1

        for part in partitions:
            grouped: dict[Any, list] = defaultdict(list)
            for k, v in sorted(part, key=lambda kv: repr(kv[0])):
                grouped[k].append(v)
            for k in sorted(grouped, key=repr):
                self.counters["reduce_input_groups"] += 1
                reduce_fn(k, grouped[k], emit)
        return output

    # -- entry point ------------------------------------------------------------------
    def run(
        self,
        inputs: Iterable[tuple[Any, Any]],
        map_fn: MapFn,
        reduce_fn: Optional[ReduceFn] = None,
        combiner: Optional[ReduceFn] = None,
    ) -> list[tuple[Any, Any]]:
        """Execute a full job; map-only when ``reduce_fn`` is None."""
        partitions = self.map_phase(inputs, map_fn, combiner)
        if reduce_fn is None:
            flat = [kv for part in partitions for kv in part]
            return sorted(flat, key=lambda kv: repr(kv[0]))
        return self.reduce_phase(partitions, reduce_fn)
