"""The paper's contribution: a two-level MapReduce execution environment.

Public API:

- :func:`~repro.core.simexec.run_encryption_job`,
  :func:`~repro.core.simexec.run_pi_job`,
  :func:`~repro.core.simexec.run_empty_job`,
  :func:`~repro.core.simexec.run_sort_job` — full-stack simulated jobs
  (cluster + HDFS + Hadoop runtime + node-level accelerator offload),
  the engines behind Figs. 4, 5, 7, 8.
- :func:`~repro.core.raw.raw_encryption_bandwidth`,
  :func:`~repro.core.raw.raw_pi_rates` — single-node raw kernel
  experiments with no distributed middleware (Figs. 2 and 6).
- :class:`~repro.core.local.LocalExecutor` — a functional, in-process
  MapReduce engine over real data (map → shuffle → sort → reduce).
- :class:`~repro.core.twolevel.TwoLevelEncryptor` — the functional
  two-level pipeline: Hadoop-style records, Cell-style 4 KB chunks,
  real AES bytes end to end.
"""

from repro.core.local import LocalExecutor
from repro.core.raw import raw_encryption_bandwidth, raw_pi_rates
from repro.core.simexec import (
    SimulatedCluster,
    WorkloadMixResult,
    run_empty_job,
    run_encryption_job,
    run_pi_job,
    run_sort_job,
    run_workload_mix,
)
from repro.core.twolevel import TwoLevelEncryptor

__all__ = [
    "LocalExecutor",
    "SimulatedCluster",
    "TwoLevelEncryptor",
    "WorkloadMixResult",
    "raw_encryption_bandwidth",
    "raw_pi_rates",
    "run_empty_job",
    "run_encryption_job",
    "run_pi_job",
    "run_sort_job",
    "run_workload_mix",
]
