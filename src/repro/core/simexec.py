"""Full-stack simulated job execution.

Wires the complete prototype: cluster hardware → HDFS (NameNode on the
master, a DataNode per worker) → Hadoop runtime (JobTracker on the
master, a TaskTracker per worker) → per-node kernel backends. These are
the engines behind every distributed figure (4, 5, 7, 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import repro.obs as obs
from repro.obs.sampler import attach_sampler, publish_cluster_metrics
from repro.perf.calibration import Backend, CalibrationProfile, GB, PAPER_CALIBRATION
from repro.perf.energy import EnergyModel
from repro.cluster.topology import Cluster, ClusterSpec
from repro.hadoop.config import JobConf
from repro.hadoop.faults import ChurnPlan, apply_churn
from repro.hadoop.job import Job, JobResult
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.tasktracker import TaskTracker
from repro.hdfs.client import HDFSClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.replication import ReplicationManager
from repro.sim.engine import Environment

__all__ = [
    "SimulatedCluster",
    "WorkloadMixResult",
    "run_empty_job",
    "run_encryption_job",
    "run_pi_job",
    "run_sort_job",
    "run_workload_mix",
]


class SimulatedCluster:
    """A ready-to-use cluster: hardware + HDFS + Hadoop daemons.

    Parameters
    ----------
    worker_nodes: number of QS22 worker blades.
    calib: calibration profile.
    seed: root seed for all stochastic elements.
    trace: retain trace records (costly at scale).
    accelerated_fraction: fraction of workers with Cell sockets (§V
        heterogeneity ablation).
    scheduler: task-placement policy (a :mod:`repro.sched` registry
        name, instance, or None for the stock FIFO). When left None, the
        first job conf that names a policy selects it (see
        :meth:`run_job` / :meth:`run_jobs`).
    """

    def __init__(
        self,
        worker_nodes: int,
        calib: CalibrationProfile = PAPER_CALIBRATION,
        seed: int = 1234,
        trace: bool = False,
        accelerated_fraction: float = 1.0,
        gpu_fraction: float = 0.0,
        slow_nodes: Optional[dict[int, float]] = None,
        replication_manager: bool = False,
        scheduler=None,
    ):
        self.env = Environment()
        self.calib = calib
        spec = ClusterSpec(
            worker_nodes=worker_nodes,
            seed=seed,
            trace=trace,
            accelerated_fraction=accelerated_fraction,
            gpu_fraction=gpu_fraction,
        )
        self.cluster = Cluster(self.env, spec, calib)
        # HDFS: NameNode on the master blade, one DataNode per worker.
        self.namenode = NameNode(
            self.env,
            block_size=calib.hdfs_block_bytes,
            replication=calib.hdfs_replication,
            rng=self.cluster.rng,
        )
        for worker in self.cluster.workers:
            self.namenode.register_datanode(DataNode(worker, self.cluster.network))
        self.client = HDFSClient(self.namenode)
        # Hadoop: JobTracker on the master, TaskTracker per worker.
        self.jobtracker = JobTracker(self.cluster, self.client, scheduler=scheduler)
        self._scheduler_explicit = scheduler is not None
        self.trackers = [TaskTracker(self.jobtracker, w) for w in self.cluster.workers]
        # Straggler injection: {node_id: slowdown_factor}.
        for node_id, factor in (slow_nodes or {}).items():
            if factor <= 0:
                raise ValueError("slowdown factor must be positive")
            self.cluster.node_by_id(node_id).speed_factor = factor
        self.replication_manager = (
            ReplicationManager(self.namenode) if replication_manager else None
        )
        # Telemetry: sampled once at construction (reference-mode
        # discipline). None means every obs branch below is one
        # `is None` check — the canonical disabled path.
        self._obs = obs.registry() if obs.enabled() else None
        self._obs_flushed: dict[str, float] = {}
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.jobtracker.start()
        for tt in self.trackers:
            tt.start()
        if self.replication_manager is not None:
            self.replication_manager.start()
        if self._obs is not None:
            attach_sampler(self, self._obs)

    def publish_metrics(self) -> None:
        """Delta-flush model tallies into the obs registry (no-op when
        telemetry is disabled); called after every ``env.run`` leg."""
        if self._obs is not None:
            publish_cluster_metrics(self, self._obs, self._obs_flushed)

    # -- dynamic membership (§V: dynamically variable environments) -----------
    def add_worker_now(self, accelerated: bool = True) -> TaskTracker:
        """Join a fresh worker blade to the running cluster: hardware,
        DataNode, TaskTracker — it starts heartbeating immediately and
        the JobTracker will feed it on its first report."""
        node = self.cluster.add_worker(accelerated=accelerated)
        self.namenode.register_datanode(DataNode(node, self.cluster.network))
        tracker = TaskTracker(self.jobtracker, node)
        self.trackers.append(tracker)
        if self._started:
            tracker.start()
        return tracker

    def add_worker_at(self, at_time: float, accelerated: bool = True) -> None:
        """Schedule a worker join at a future simulation time."""

        def _join():
            delay = at_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.add_worker_now(accelerated=accelerated)

        self.env.process(_join(), name=f"join@{at_time}")

    def decommission(self, node_id: int, kill_datanode: bool = True) -> None:
        """Remove a worker: heartbeats stop, running attempts die, and
        (optionally) its replicas disappear — the JobTracker's timeout
        machinery takes it from there."""
        tracker = next(t for t in self.trackers if t.tracker_id == node_id)
        tracker.kill()
        if kill_datanode:
            self.namenode.handle_datanode_failure(node_id)

    # -- data --------------------------------------------------------------------
    def ingest(
        self, path: str, size: int, payload: Optional[bytes] = None, placement: str = "contiguous"
    ) -> None:
        """Pre-load a dataset (no simulated time; see HDFSClient.ingest_file)."""
        self.client.ingest_file(path, size, payload=payload, placement=placement)

    # -- jobs --------------------------------------------------------------------
    def _adopt_requested_scheduler(self, confs: list[JobConf]) -> None:
        """Honor ``JobConf.scheduler`` requests when the cluster was not
        configured with an explicit policy. All requesting confs in one
        workload must agree — a mixed-policy batch is a usage error."""
        requested = {c.scheduler for c in confs if c.scheduler is not None}
        if not requested:
            return
        if len(requested) > 1:
            raise ValueError(
                f"jobs request conflicting schedulers: {sorted(requested)}"
            )
        (name,) = requested
        if self._scheduler_explicit:
            if name != self.jobtracker.scheduler.name:
                raise ValueError(
                    f"job requests scheduler {name!r} but the cluster runs "
                    f"{self.jobtracker.scheduler.name!r}"
                )
            return
        if self.jobtracker.scheduler.name != name:
            self.jobtracker.set_scheduler(name)
        self._scheduler_explicit = True

    def run_job(self, conf: JobConf) -> JobResult:
        """Submit ``conf`` and run the simulation to job completion."""
        self._adopt_requested_scheduler([conf])
        self.start()
        job = self.jobtracker.submit_job(conf)
        result = self.env.run(job.completion)
        self.publish_metrics()
        return result

    def run_jobs(
        self,
        confs: list[JobConf],
        arrivals: Optional[list[float]] = None,
    ) -> list[JobResult]:
        """Run a multi-job workload to completion of every job.

        ``arrivals`` staggers submissions: job *i* is submitted at
        simulation time ``arrivals[i]`` (seconds from now; default all
        zero — a burst). Results come back in submission (``confs``)
        order. This is the surface the ``fair``/``locality``/``accel``
        policies exist for: with the stock FIFO a burst degenerates to
        serial job execution, while fair sharing interleaves the jobs'
        tasks across the cluster.
        """
        if not confs:
            return []
        arrivals = list(arrivals) if arrivals is not None else [0.0] * len(confs)
        if len(arrivals) != len(confs):
            raise ValueError(
                f"{len(arrivals)} arrivals for {len(confs)} jobs"
            )
        if any(a < 0 for a in arrivals):
            raise ValueError("arrival times must be >= 0")
        self._adopt_requested_scheduler(confs)
        self.start()
        results: list[Optional[JobResult]] = [None] * len(confs)

        def _driver():
            jobs: list[tuple[int, Job]] = []
            base = self.env.now
            for i in sorted(range(len(confs)), key=lambda i: (arrivals[i], i)):
                delay = base + arrivals[i] - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                jobs.append((i, self.jobtracker.submit_job(confs[i])))
            for i, job in jobs:
                results[i] = yield job.completion

        done = self.env.process(_driver(), name="multijob-driver")
        self.env.run(done)
        self.publish_metrics()
        return list(results)  # type: ignore[arg-type]

    # -- reporting -----------------------------------------------------------------
    def job_energy_j(self, result: JobResult, backend: Backend) -> float:
        """Cluster energy for a finished job (paper §V energy question)."""
        model = EnergyModel(self.calib)
        makespan = result.makespan_s
        total = 0.0
        for worker in self.cluster.workers:
            total += model.node_energy(backend, worker.kernel_busy_s, makespan).total_j
        return total


def _default_maps(nodes: int, calib: CalibrationProfile) -> int:
    """The paper's setting: one split per mapper slot (2 per blade)."""
    return nodes * calib.mappers_per_node


def run_encryption_job(
    nodes: int,
    data_bytes: float,
    backend: Backend,
    calib: CalibrationProfile = PAPER_CALIBRATION,
    num_map_tasks: Optional[int] = None,
    seed: int = 1234,
    trace: bool = False,
    accelerated_fraction: float = 1.0,
    gpu_fraction: float = 0.0,
    slow_nodes: Optional[dict[int, float]] = None,
    speculative: bool = False,
    fallback_backend: Optional[Backend] = None,
    scheduler=None,
    return_cluster: bool = False,
):
    """One distributed AES job (Figs. 4 and 5).

    ``data_bytes`` of input are pre-loaded into HDFS, split across
    ``num_map_tasks`` mappers (default: every slot), and encrypted with
    the chosen kernel backend. The extension knobs (heterogeneous node
    mixes, stragglers, speculative re-execution, backend fallback) feed
    the §V scenarios in the experiment registry.
    """
    sim = SimulatedCluster(
        nodes,
        calib,
        seed=seed,
        trace=trace,
        accelerated_fraction=accelerated_fraction,
        gpu_fraction=gpu_fraction,
        slow_nodes=slow_nodes,
        scheduler=scheduler,
    )
    sim.ingest("/data/plaintext", int(data_bytes))
    conf = JobConf(
        name=f"encrypt-{backend.value}",
        workload="aes" if backend is not Backend.EMPTY else "empty",
        backend=backend,
        input_path="/data/plaintext",
        num_map_tasks=num_map_tasks or _default_maps(nodes, calib),
        record_bytes=calib.record_bytes,
        num_reduce_tasks=0,
        speculative=speculative,
        fallback_backend=fallback_backend,
    )
    result = sim.run_job(conf)
    return (result, sim) if return_cluster else result


def run_empty_job(
    nodes: int,
    data_bytes: float,
    calib: CalibrationProfile = PAPER_CALIBRATION,
    **kwargs,
):
    """The paper's EmptyMapper probe: read everything, compute nothing."""
    return run_encryption_job(nodes, data_bytes, Backend.EMPTY, calib, **kwargs)


def run_pi_job(
    nodes: int,
    samples: float,
    backend: Backend,
    calib: CalibrationProfile = PAPER_CALIBRATION,
    num_map_tasks: Optional[int] = None,
    seed: int = 1234,
    trace: bool = False,
    accelerated_fraction: float = 1.0,
    gpu_fraction: float = 0.0,
    slow_nodes: Optional[dict[int, float]] = None,
    speculative: bool = False,
    fallback_backend: Optional[Backend] = None,
    scheduler=None,
    return_cluster: bool = False,
):
    """One distributed Pi job (Figs. 7 and 8)."""
    sim = SimulatedCluster(
        nodes,
        calib,
        seed=seed,
        trace=trace,
        accelerated_fraction=accelerated_fraction,
        gpu_fraction=gpu_fraction,
        slow_nodes=slow_nodes,
        scheduler=scheduler,
    )
    conf = JobConf(
        name=f"pi-{backend.value}",
        workload="pi",
        backend=backend,
        samples=samples,
        num_map_tasks=num_map_tasks or _default_maps(nodes, calib),
        num_reduce_tasks=1,
        speculative=speculative,
        fallback_backend=fallback_backend,
    )
    result = sim.run_job(conf)
    return (result, sim) if return_cluster else result


@dataclass
class WorkloadMixResult:
    """Summary of one multi-job workload run.

    ``results`` are per-job, in submission order. The two headline
    metrics the scheduler-comparison scenarios plot:

    - :attr:`makespan_s` — first submission to last finish (cluster
      occupancy; what an operator pays for).
    - :attr:`mean_completion_s` — average per-job submit-to-finish time
      (what each user waits; the number fair sharing improves).

    ``decision_counters`` carries the run's scheduling-decision tallies
    (JobTracker mechanism counts — assignments, speculations, kills,
    heartbeats — merged with policy-internal counts such as
    delay-scheduling waits); ``scheduler`` names the policy that made
    them.
    """

    results: list[JobResult]
    scheduler: str = ""
    decision_counters: dict[str, int] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return all(r.succeeded for r in self.results)

    @property
    def makespan_s(self) -> float:
        return max(r.finish_time for r in self.results) - min(
            r.submit_time for r in self.results
        )

    @property
    def mean_completion_s(self) -> float:
        return sum(r.makespan_s for r in self.results) / len(self.results)

    @property
    def remote_fraction(self) -> float:
        """Cluster-wide fraction of map input read remotely."""
        total = sum(r.counters.get("map_input_bytes", 0.0) for r in self.results)
        if total <= 0:
            return 0.0
        remote = sum(r.counters.get("remote_input_bytes", 0.0) for r in self.results)
        return remote / total


def run_workload_mix(
    nodes: int,
    num_jobs: int = 2,
    scheduler=None,
    stagger_s: float = 0.0,
    data_gb: float = 4.0,
    samples: float = 4e9,
    calib: CalibrationProfile = PAPER_CALIBRATION,
    seed: int = 1234,
    accelerated_fraction: float = 1.0,
    trace: bool = False,
    churn: Optional[ChurnPlan] = None,
    return_cluster: bool = False,
):
    """A canned multi-job workload: alternating AES and Pi jobs.

    Even-indexed jobs encrypt ``data_gb`` GB (delivery-bound: placement
    matters through HDFS block *locality*); odd-indexed jobs estimate
    Pi from ``samples`` samples (compute-bound: placement matters
    through *kernel affinity* — on a partially-accelerated cluster a
    Cell-targeted Pi task that lands on a plain blade falls back to the
    PPE Java kernel at ~1/50th the rate). Both job families target the
    Cell kernel with Java fallback, so ``accelerated_fraction < 1``
    makes placement quality visible in the series. Job *i* arrives at
    ``i * stagger_s`` seconds. Every job wants every slot
    (``num_map_tasks`` = cluster slot count), so concurrent jobs
    genuinely contend — the regime scheduling policies differ in.

    ``churn`` overlays a scripted membership timeline
    (:class:`~repro.hadoop.faults.ChurnPlan`) on the run: blades join
    and leave while the jobs execute, exercising re-execution, runtime
    tracker registration, and — with a preemptive policy — reclamation
    against a moving slot pool. ``None`` leaves the execution path
    untouched.
    """
    sim = SimulatedCluster(
        nodes,
        calib,
        seed=seed,
        trace=trace,
        accelerated_fraction=accelerated_fraction,
        scheduler=scheduler,
    )
    maps = _default_maps(nodes, calib)
    confs: list[JobConf] = []
    for i in range(num_jobs):
        if i % 2 == 0:
            path = f"/data/mix-{i}"
            sim.ingest(path, int(data_gb * GB))
            confs.append(
                JobConf(
                    name=f"mix-aes-{i}",
                    workload="aes",
                    backend=Backend.CELL_SPE_DIRECT,
                    fallback_backend=Backend.JAVA_PPE,
                    input_path=path,
                    num_map_tasks=maps,
                    record_bytes=calib.record_bytes,
                )
            )
        else:
            confs.append(
                JobConf(
                    name=f"mix-pi-{i}",
                    workload="pi",
                    backend=Backend.CELL_SPE_DIRECT,
                    fallback_backend=Backend.JAVA_PPE,
                    samples=samples,
                    num_map_tasks=maps,
                    num_reduce_tasks=1,
                )
            )
    if churn:
        sim.start()
        apply_churn(sim.env, sim, churn)
    arrivals = [i * stagger_s for i in range(num_jobs)]
    results = sim.run_jobs(confs, arrivals=arrivals)
    mix = WorkloadMixResult(
        results=results,
        scheduler=sim.jobtracker.scheduler.name,
        decision_counters=sim.jobtracker.decision_counters(),
    )
    return (mix, sim) if return_cluster else mix


def run_sort_job(
    nodes: int,
    data_bytes: float,
    backend: Backend = Backend.JAVA_PPE,
    calib: CalibrationProfile = PAPER_CALIBRATION,
    num_reduce_tasks: Optional[int] = None,
    seed: int = 1234,
    trace: bool = False,
    return_cluster: bool = False,
):
    """A Terasort-style job (E7's per-node/per-core rate analysis)."""
    sim = SimulatedCluster(nodes, calib, seed=seed, trace=trace)
    sim.ingest("/data/sort-input", int(data_bytes))
    conf = JobConf(
        name=f"sort-{backend.value}",
        workload="sort",
        backend=backend,
        input_path="/data/sort-input",
        num_map_tasks=_default_maps(nodes, calib),
        record_bytes=calib.record_bytes,
        num_reduce_tasks=num_reduce_tasks if num_reduce_tasks is not None else nodes,
    )
    result = sim.run_job(conf)
    return (result, sim) if return_cluster else result
