"""Bandwidth/latency-limited byte channels.

Every wire in the simulated system — GigE links, the loopback interface,
disk platters, the Cell element-interconnect bus — is a :class:`Pipe`: a
shared channel with a peak byte rate, a fixed per-transfer latency, and a
per-message overhead. Concurrent transfers share bandwidth via serialized
access (FIFO through an internal resource), which matches the store-and-
forward behaviour of the real interfaces at the granularity this
reproduction measures (whole records and blocks).

For fair-share semantics (many long flows progressing simultaneously),
:class:`SharedPipe` implements progressive max-min style sharing using
fixed-size quanta.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Pipe", "SharedPipe"]


class Pipe:
    """A serialized transfer channel.

    Parameters
    ----------
    env:
        Simulation environment.
    bandwidth_bps:
        Peak rate in **bytes per second**.
    latency_s:
        Fixed latency added to every transfer (propagation + setup).
    per_message_overhead_s:
        Extra fixed cost per transfer (protocol/software overhead).
    name:
        Optional identifier used in traces.
    """

    def __init__(
        self,
        env: "Environment",
        bandwidth_bps: float,
        latency_s: float = 0.0,
        per_message_overhead_s: float = 0.0,
        name: str = "pipe",
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency_s < 0 or per_message_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.per_message_overhead_s = float(per_message_overhead_s)
        self.name = name
        self._channel = Resource(env, capacity=1)
        self.bytes_transferred = 0.0
        self.transfer_count = 0

    def transfer_time(self, nbytes: float) -> float:
        """Pure service time for ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + self.per_message_overhead_s + nbytes / self.bandwidth_bps

    def transfer(self, nbytes: float) -> Generator:
        """Process: move ``nbytes`` through the pipe, queueing if busy.

        The idle-channel case — the overwhelmingly common one at the
        block/record granularity this model runs at — is collapsed into
        a single pooled timeout: a synchronous claim replaces the
        request-grant event and the timeout object is recycled.
        """
        channel = self._channel
        claim = channel.try_claim()
        req = None
        try:
            if claim is None:
                req = channel.request()
                yield req
            yield self.env.pooled_timeout(self.transfer_time(nbytes))
        finally:
            if claim is not None:
                channel.release_claim(claim)
            elif req is not None:
                channel.release(req)
        self.bytes_transferred += nbytes
        self.transfer_count += 1
        return nbytes

    @property
    def utilization_busy(self) -> bool:
        """True when a transfer currently holds the channel."""
        return self._channel.count > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pipe {self.name!r} {self.bandwidth_bps / 1e6:.1f} MB/s>"


class SharedPipe:
    """A channel where concurrent flows share bandwidth fairly.

    Transfers are split into ``quantum_bytes`` slices which interleave
    FIFO through the channel; with *k* concurrent flows each observes
    roughly ``bandwidth / k``. Quantum size trades fidelity against event
    count (a 120 GB dataset with a 64 KB quantum would be millions of
    events, so cluster models use multi-megabyte quanta).
    """

    def __init__(
        self,
        env: "Environment",
        bandwidth_bps: float,
        latency_s: float = 0.0,
        quantum_bytes: float = 4 * 1024 * 1024,
        name: str = "shared-pipe",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if quantum_bytes <= 0:
            raise ValueError("quantum must be positive")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.quantum_bytes = float(quantum_bytes)
        self.name = name
        self._channel = Resource(env, capacity=1)
        self.bytes_transferred = 0.0
        self.transfer_count = 0
        self.active_flows = 0

    def transfer(self, nbytes: float) -> Generator:
        """Process: move ``nbytes`` in interleaved quanta."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.active_flows += 1
        try:
            if self.latency_s:
                yield self.env.pooled_timeout(self.latency_s)
            remaining = nbytes
            channel = self._channel
            while remaining > 0:
                slice_bytes = min(self.quantum_bytes, remaining)
                claim = channel.try_claim()
                req = None
                try:
                    if claim is None:
                        req = channel.request()
                        yield req
                    yield self.env.pooled_timeout(slice_bytes / self.bandwidth_bps)
                finally:
                    if claim is not None:
                        channel.release_claim(claim)
                    elif req is not None:
                        channel.release(req)
                remaining -= slice_bytes
        finally:
            self.active_flows -= 1
        self.bytes_transferred += nbytes
        self.transfer_count += 1
        return nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedPipe {self.name!r} {self.bandwidth_bps / 1e6:.1f} MB/s flows={self.active_flows}>"
