"""Deterministic named random streams.

Simulation components must not share one RNG: adding a component would
perturb every downstream draw and break run-to-run comparability. Instead
each component derives an independent :class:`numpy.random.Generator`
from a root seed plus its own stable name (via ``SeedSequence.spawn``-like
hashing), so adding streams never disturbs existing ones.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent, reproducible random generators."""

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (root_seed, name) pair always yields an identical stream
        regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self.root_seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.root_seed} streams={sorted(self._streams)}>"
