"""Discrete-event simulation engine.

A small, dependency-free, generator-based discrete-event simulation (DES)
kernel in the style of SimPy, purpose-built for this reproduction. All
timed behaviour of the simulated Cell BE cluster (disks, NICs, DMA
engines, Hadoop heartbeats, ...) is expressed as *processes*: Python
generators that ``yield`` events. The engine maintains a global event
heap and advances virtual time deterministically.

Public surface:

- :class:`~repro.sim.engine.Environment` — the event loop and clock.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf`,
  :class:`~repro.sim.events.Process` — awaitables.
- :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Container`,
  :class:`~repro.sim.resources.Store` — contention primitives.
- :class:`~repro.sim.pipes.Pipe` — a bandwidth/latency-limited byte
  channel used by every network and bus model.
- :class:`~repro.sim.trace.Tracer` — structured event tracing.
"""

from repro.sim.engine import Environment, SimulationError, set_reference_mode
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import (
    Container,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.pipes import Pipe
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Pipe",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "TraceRecord",
    "Tracer",
    "set_reference_mode",
]
