"""Utilization monitoring for simulation resources and channels.

Samples resource occupancy on a fixed virtual-time grid, giving the
time-weighted utilization views behind statements like "the loopback
interface ran at X% during the map phase". Monitors are passive — they
never perturb the schedule (sampling happens at URGENT priority at the
sample instant, observing state before same-time work proceeds is not
required for time-weighted averages at this granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment
    from repro.sim.events import Process

__all__ = ["UtilizationMonitor", "utilization_of_resource", "throughput_of_pipe"]


@dataclass
class _Sample:
    time: float
    value: float


class UtilizationMonitor:
    """Periodic sampler of an arbitrary ``probe`` callable.

    Parameters
    ----------
    env: environment to sample in.
    probe: zero-arg callable returning the instantaneous value (e.g. a
        resource's busy-slot fraction).
    interval_s: sampling period.
    """

    def __init__(self, env: "Environment", probe: Callable[[], float], interval_s: float = 1.0):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.probe = probe
        self.interval_s = interval_s
        self.samples: list[_Sample] = []
        self._proc: Optional["Process"] = None

    def start(self) -> "Process":
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._loop(), name="monitor")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")
        self._proc = None

    def _loop(self) -> Generator:
        from repro.sim.events import Interrupt

        try:
            while True:
                self.samples.append(_Sample(self.env.now, float(self.probe())))
                yield self.env.pooled_timeout(self.interval_s)
        except Interrupt:
            return

    # -- statistics -------------------------------------------------------------
    def mean(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Average sampled value over [t0, t1]."""
        vals = [s.value for s in self.samples if s.time >= t0 and (t1 is None or s.time <= t1)]
        if not vals:
            return 0.0
        return sum(vals) / len(vals)

    def peak(self) -> float:
        return max((s.value for s in self.samples), default=0.0)

    def __len__(self) -> int:
        return len(self.samples)


def utilization_of_resource(resource) -> Callable[[], float]:
    """Probe: busy fraction of a :class:`repro.sim.resources.Resource`."""
    return lambda: resource.count / resource.capacity


def throughput_of_pipe(pipe, env) -> Callable[[], float]:
    """Probe: cumulative average bytes/s through a Pipe since t=0."""

    def probe() -> float:
        if env.now <= 0:
            return 0.0
        return pipe.bytes_transferred / env.now

    return probe
