"""Structured tracing for simulation runs.

Every subsystem emits :class:`TraceRecord`\\ s through a shared
:class:`Tracer`. Traces power the analysis layer (phase breakdowns such as
"how much of the job was RecordReader time vs. kernel time", which is the
paper's central observation) and make failed benchmark shapes debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time: virtual time of the event.
    category: subsystem tag, e.g. ``"hdfs"``, ``"jobtracker"``, ``"dma"``.
    event: short event name, e.g. ``"block_read"``, ``"task_assigned"``.
    attrs: free-form payload (sizes, node ids, durations).
    """

    time: float
    category: str
    event: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return f"[{self.time:12.6f}] {self.category}/{self.event} {kv}"


class Tracer:
    """Collects trace records; can be disabled for large benchmark runs.

    Parameters
    ----------
    env:
        Environment supplying timestamps.
    enabled:
        When False, :meth:`emit` is a no-op (zero overhead path used by
        the 64-node benchmark sweeps).
    keep:
        Optional predicate limiting which records are retained.
    """

    def __init__(
        self,
        env: "Environment",
        enabled: bool = True,
        keep: Optional[Callable[[TraceRecord], bool]] = None,
    ):
        self.env = env
        self.enabled = enabled
        self.keep = keep
        self.records: list[TraceRecord] = []
        self._counters: dict[tuple[str, str], int] = {}

    def emit(self, category: str, event: str, **attrs: Any) -> None:
        """Record one event (cheap no-op when disabled)."""
        key = (category, event)
        self._counters[key] = self._counters.get(key, 0) + 1
        if not self.enabled:
            return
        rec = TraceRecord(self.env.now, category, event, attrs)
        if self.keep is None or self.keep(rec):
            self.records.append(rec)

    def count(self, category: str, event: Optional[str] = None) -> int:
        """Number of emissions (counted even while disabled)."""
        if event is not None:
            return self._counters.get((category, event), 0)
        return sum(v for (cat, _e), v in self._counters.items() if cat == category)

    def select(self, category: Optional[str] = None, event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records matching the filters."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def clear(self) -> None:
        self.records.clear()
        self._counters.clear()

    def __len__(self) -> int:
        return len(self.records)
