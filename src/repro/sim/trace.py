"""Structured tracing for simulation runs.

Every subsystem emits :class:`TraceRecord`\\ s through a shared
:class:`Tracer`. Traces power the analysis layer (phase breakdowns such as
"how much of the job was RecordReader time vs. kernel time", which is the
paper's central observation) and make failed benchmark shapes debuggable.

Two record shapes:

- :class:`TraceRecord` — instantaneous events (``emit``), the original
  API every subsystem already uses.
- :class:`SpanRecord` — closed intervals (``span(...)`` → ``.end()``),
  the per-task/per-phase timeline ``repro trace`` exports as
  Chrome-trace/Perfetto JSON (see :mod:`repro.obs.traceexport`).

Memory is bounded: pass ``max_records`` and both stores become ring
buffers (oldest evicted first), with evictions tallied in
:attr:`Tracer.dropped` so truncation is visible, never silent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["NULL_SPAN", "SpanRecord", "TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time: virtual time of the event.
    category: subsystem tag, e.g. ``"hdfs"``, ``"jobtracker"``, ``"dma"``.
    event: short event name, e.g. ``"block_read"``, ``"task_assigned"``.
    attrs: free-form payload (sizes, node ids, durations).
    """

    time: float
    category: str
    event: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return f"[{self.time:12.6f}] {self.category}/{self.event} {kv}"


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """A closed interval on the simulation timeline.

    Attributes
    ----------
    start, end: virtual-time bounds (``end >= start``).
    category: subsystem tag (``"task"``, ``"kernel"``, ``"recordreader"``).
    name: what ran, e.g. ``"map 3"`` or ``"shuffle"``.
    track: timeline lane for visualisation, e.g. ``"node2/slot0"``;
        spans on one track render as one row in Perfetto.
    attrs: free-form payload merged from open and close.
    """

    start: float
    end: float
    category: str
    name: str
    track: str
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (
            f"[{self.start:12.6f}..{self.end:12.6f}] "
            f"{self.category}/{self.name} @{self.track} {kv}"
        )


class _Span:
    """Open span handle; ``end()`` seals it into the tracer."""

    __slots__ = ("_tracer", "start", "category", "name", "track", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        start: float,
        category: str,
        name: str,
        track: str,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.start = start
        self.category = category
        self.name = name
        self.track = track
        self.attrs = attrs

    def end(self, **attrs: Any) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        self._tracer = None  # idempotent close
        if attrs:
            self.attrs.update(attrs)
        tracer._seal(  # noqa: SLF001
            SpanRecord(
                self.start, tracer.env.now, self.category,
                self.name, self.track, self.attrs,
            )
        )

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers."""

    __slots__ = ()

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace records; can be disabled for large benchmark runs.

    Parameters
    ----------
    env:
        Environment supplying timestamps.
    enabled:
        When False, :meth:`emit` is a no-op and :meth:`span` returns the
        shared :data:`NULL_SPAN` (zero overhead path used by the
        large benchmark sweeps).
    keep:
        Optional predicate limiting which instantaneous records are
        retained.
    max_records:
        Ring-buffer cap applied independently to records and spans;
        ``None`` (default) keeps everything. Evictions increment
        :attr:`dropped`.
    """

    def __init__(
        self,
        env: "Environment",
        enabled: bool = True,
        keep: Optional[Callable[[TraceRecord], bool]] = None,
        max_records: Optional[int] = None,
    ):
        self.env = env
        self.enabled = enabled
        self.keep = keep
        self.max_records = max_records
        self.records: deque[TraceRecord] = deque(maxlen=max_records)
        self.spans: deque[SpanRecord] = deque(maxlen=max_records)
        self.dropped = 0
        self._counters: dict[tuple[str, str], int] = {}

    def emit(self, category: str, event: str, **attrs: Any) -> None:
        """Record one event (cheap no-op when disabled)."""
        key = (category, event)
        self._counters[key] = self._counters.get(key, 0) + 1
        if not self.enabled:
            return
        rec = TraceRecord(self.env.now, category, event, attrs)
        if self.keep is None or self.keep(rec):
            records = self.records
            if records.maxlen is not None and len(records) == records.maxlen:
                self.dropped += 1
            records.append(rec)

    def span(self, category: str, name: str, track: Optional[str] = None, **attrs: Any):
        """Open a span starting now; close it with ``.end(**attrs)``.

        Disabled tracers return the shared :data:`NULL_SPAN` so call
        sites never branch on :attr:`enabled` themselves.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, self.env.now, category, name, track or category, attrs)

    def _seal(self, span: SpanRecord) -> None:
        spans = self.spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self.dropped += 1
        spans.append(span)

    def count(self, category: str, event: Optional[str] = None) -> int:
        """Number of emissions (counted even while disabled)."""
        if event is not None:
            return self._counters.get((category, event), 0)
        return sum(v for (cat, _e), v in self._counters.items() if cat == category)

    def select(self, category: Optional[str] = None, event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate retained records matching the filters."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def select_spans(
        self, category: Optional[str] = None, track: Optional[str] = None
    ) -> Iterator[SpanRecord]:
        """Iterate sealed spans matching the filters."""
        for span in self.spans:
            if category is not None and span.category != category:
                continue
            if track is not None and span.track != track:
                continue
            yield span

    def clear(self) -> None:
        self.records.clear()
        self.spans.clear()
        self.dropped = 0
        self._counters.clear()

    def __len__(self) -> int:
        return len(self.records)
