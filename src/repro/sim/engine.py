"""The simulation event loop.

:class:`Environment` owns the virtual clock and the event heap. Events are
ordered by ``(time, priority, sequence)`` so that simultaneous events run
in a deterministic FIFO order — determinism is a hard requirement for the
reproduction benchmarks (same seed, same schedule, same numbers).

Engine internals (see ``docs/PERFORMANCE.md`` for the full contract):

- :meth:`Environment.run` inlines the pop-advance-dispatch cycle with
  local-variable binding, and has a dedicated fast path for the dominant
  event class (a :class:`Timeout` resuming a single waiting
  :class:`Process`).
- A :class:`Timeout` free-list (:meth:`pooled_timeout`) recycles timeout
  objects on the hot paths where the yielded event is consumed
  immediately and never stored.
- :meth:`composite_timeout` collapses a deterministic chain of pure
  delays into one event; :meth:`schedule_many` batch-pushes events and
  backs :meth:`start_processes`.
- Reference mode (``reference=True``, :func:`set_reference_mode`, or
  ``REPRO_SIM_REFERENCE=1``) runs the pre-overhaul ``step()``-per-event
  loop without pooling or fast dispatch. Both modes must produce
  identical ``(time, priority, seq, event-class)`` traces — the
  determinism tests and ``benchmarks/run_perf.py`` assert exactly that.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from types import MethodType
from typing import Any, Generator, Iterable, Optional

from repro.sim.events import (
    AllOf,
    AnyOf,
    Environment_NORMAL,
    Environment_URGENT,
    Event,
    Initialize,
    Process,
    Timeout,
)

__all__ = ["Environment", "SimulationError", "set_reference_mode"]

#: Default engine mode for new Environments. True selects the reference
#: (pre-overhaul) loop; settable via the REPRO_SIM_REFERENCE env var or
#: :func:`set_reference_mode`.
REFERENCE_MODE = os.environ.get("REPRO_SIM_REFERENCE", "0") not in ("", "0")

#: Upper bound on the Timeout free-list, to keep memory bounded when a
#: burst of concurrent timeouts drains at once.
_TIMEOUT_POOL_MAX = 1024


def set_reference_mode(enabled: bool) -> bool:
    """Set the default engine mode for *new* Environments.

    Returns the previous default, so callers can restore it.
    """
    global REFERENCE_MODE
    previous = REFERENCE_MODE
    REFERENCE_MODE = bool(enabled)
    return previous


class SimulationError(RuntimeError):
    """Raised for structural simulation errors (deadlock, bad run bound)."""


class _StopFlag:
    """Reusable bound flag for ``run(until=Event)``.

    Appending one shared callable object instead of a fresh closure per
    call keeps tight driver loops (one ``run()`` per job) allocation-free.
    """

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = False

    def __call__(self, _event: Event) -> None:
        self.done = True


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds by convention
        throughout this project).
    reference:
        ``True`` forces the reference (pre-overhaul) event loop,
        ``False`` the optimized one; ``None`` uses the module default
        (:data:`REFERENCE_MODE`). Both loops are trace-identical.

    Notes
    -----
    The engine is single-threaded and fully deterministic: ties in time
    are broken by scheduling priority, then by a monotonically increasing
    sequence number.
    """

    URGENT = Environment_URGENT
    NORMAL = Environment_NORMAL

    def __init__(self, initial_time: float = 0.0, reference: Optional[bool] = None):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        self._processed_count = 0
        self._reference = REFERENCE_MODE if reference is None else bool(reference)
        self._timeout_pool: list[Timeout] = []
        self._trace: Optional[list[tuple[float, int, int, str]]] = None
        self._until_flag: Optional[_StopFlag] = _StopFlag()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (monitoring aid)."""
        return self._processed_count

    @property
    def is_reference(self) -> bool:
        """True when this environment runs the reference event loop."""
        return self._reference

    # -- event tracing -----------------------------------------------------------
    def capture_trace(self, sink: Optional[list] = None) -> list:
        """Record ``(time, priority, seq, event-class-name)`` per processed
        event into ``sink`` (a fresh list if omitted) and return it.

        The trace is the engine's determinism contract: the reference and
        optimized loops must produce identical traces for the same
        program. Tracing costs one branch per event when enabled.
        """
        self._trace = [] if sink is None else sink
        return self._trace

    def stop_trace(self) -> None:
        """Stop recording processed events."""
        self._trace = None

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A recycled :class:`Timeout` from the engine's free-list.

        Contract: the returned event must be yielded immediately and
        never stored, composed (``AllOf``/``AnyOf``), or inspected after
        it resumes the waiter — the engine reclaims the object as soon as
        its callbacks have run. Internal hot paths (pipes, heartbeat
        sleeps, service delays) use this; general code should call
        :meth:`timeout`. In reference mode this degrades to a plain
        :meth:`timeout` so both engine modes stay trace-identical while
        the reference loop keeps the pre-overhaul allocation behaviour.
        """
        pool = self._timeout_pool
        if pool:  # never populated in reference mode
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t.delay = delay
            t._value = value
            t._processed = False
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self._now + delay, Environment_NORMAL, seq, t))
            return t
        t = Timeout(self, delay, value)
        if not self._reference:
            t._recycle = True
        return t

    def composite_timeout(self, *delays: float, value: Any = None) -> Timeout:
        """One event covering a chain of deterministic delay phases.

        Collapses ``timeout(d1); timeout(d2); ...`` — a multi-phase
        compute chain with nothing observing the phase boundaries — into
        a single scheduled event. Subject to the :meth:`pooled_timeout`
        contract (yield immediately, do not store).
        """
        total = 0.0
        for d in delays:
            if d < 0:
                raise ValueError(f"negative timeout delay: {d}")
            total += d
        return self.pooled_timeout(total, value)

    def process(self, gen: Generator, name: Optional[str] = None, start: bool = True) -> Process:
        """Start a new process from generator ``gen``.

        With ``start=False`` the process is created but its initial
        resume is not scheduled; pass it to :meth:`start_processes` to
        batch-schedule several starts with one heap pass.
        """
        return Process(self, gen, name=name, start=start)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place a triggered event on the heap ``delay`` from now."""
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def schedule_many(
        self, events: Iterable[Event], delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Batch-schedule triggered events sharing one delay and priority.

        Sequence numbers are assigned in iteration order, so this is
        trace-identical to calling :meth:`schedule` in a loop — it only
        hoists the per-call attribute traffic out of the loop.
        """
        t = self._now + delay
        heap = self._heap
        seq = self._seq
        for event in events:
            seq += 1
            heappush(heap, (t, priority, seq, event))
        self._seq = seq

    def start_processes(self, procs: Iterable[Process]) -> None:
        """Batch-schedule the initial resume of processes created with
        ``start=False`` (same trace as starting each one eagerly)."""
        self.schedule_many(
            [Initialize(self, p, schedule=False) for p in procs],
            priority=Environment_URGENT,
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (the reference dispatch path).

        Raises
        ------
        SimulationError
            If the heap is empty.
        """
        if not self._heap:
            raise SimulationError("no more events to process")
        t, prio, seq, event = heappop(self._heap)
        if t < self._now:  # pragma: no cover - defensive; cannot happen
            raise SimulationError(f"time went backwards: {t} < {self._now}")
        self._now = t
        if self._trace is not None:
            self._trace.append((t, prio, seq, event.__class__.__name__))
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        self._processed_count += 1
        for cb in callbacks:
            cb(event)
        if event._exc is not None and not event._defused:
            # Unhandled failure: nobody waited on this event.
            raise event._exc
        if event.__class__ is Timeout and event._recycle:
            event._value = None
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX:
                pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap drains.
            a number — run until the clock reaches that time.
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        if self._reference:
            return self._run_reference(until)

        if until is None:
            self._drain(float("inf"), None)
            return None

        if isinstance(until, Event):
            target = until
            if target._processed:
                return target._value if target._exc is None else _reraise(target._exc)
            # Micro-fix: reuse one bound flag object instead of allocating
            # a sentinel list + closure per call (nested runs fall back to
            # a fresh flag).
            flag = self._until_flag
            if flag is None:
                flag = _StopFlag()
            else:
                self._until_flag = None
            flag.done = False
            target.callbacks.append(flag)
            try:
                self._drain(float("inf"), flag)
            finally:
                if not flag.done:
                    # Exceptional exit (propagated failure or the deadlock
                    # below): unsubscribe before pooling the flag, or a
                    # later run(until=...) could be stopped early by this
                    # stale subscription firing.
                    try:
                        target.callbacks.remove(flag)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                self._until_flag = flag
            if not flag.done:
                raise SimulationError(
                    f"simulation ran out of events before {target!r} triggered "
                    "(deadlock: a process is waiting on an event nobody will fire)"
                )
            return target._value if target._exc is None else _reraise(target._exc)

        stop_at = float(until)
        if stop_at < self._now:
            raise SimulationError(f"run(until={stop_at}) is in the past (now={self._now})")
        self._drain(stop_at, None)
        self._now = stop_at
        return None

    # -- optimized inner loop ------------------------------------------------------
    def _drain(self, stop_at: float, flag: Optional[_StopFlag]) -> None:
        """Inlined pop-advance-dispatch cycle.

        One loop serves all three ``run`` modes; everything hot is bound
        to locals. Two nested fast paths handle the dominant traffic:

        1. the dominant event class — a :class:`Timeout`, which is
           triggered at construction and can never fail, so the failure
           check is skipped and the free-list is fed;
        2. the dominant waiter — a single :class:`Process` whose
           generator is advanced right here (one ``send``, the fresh
           Timeout it yields back subscribed inline), skipping the
           generic callback-list iteration and the ``_resume`` call
           frame. Anything unusual falls back to the shared slow paths
           (``Process._resume`` / ``Process._after_yield``).

        The dispatch order, clock updates, and failure propagation are
        identical to :meth:`step` — the determinism tests compare full
        event traces between the two loops.
        """
        heap = self._heap
        pop = heappop
        pool = self._timeout_pool
        pool_max = _TIMEOUT_POOL_MAX
        timeout_cls = Timeout
        method_cls = MethodType
        resume_func = Process._resume
        trace = self._trace  # bound once: enabling tracing mid-run is unsupported
        processed = 0
        try:
            while heap:
                t, prio, seq, event = pop(heap)
                if t > stop_at:
                    # Pop-then-push-back beats peeking every iteration:
                    # this branch runs at most once per run() call.
                    heappush(heap, (t, prio, seq, event))
                    break
                self._now = t
                if trace is not None:
                    trace.append((t, prio, seq, event.__class__.__name__))
                processed += 1
                event._processed = True
                callbacks = event.callbacks
                if event.__class__ is timeout_cls:
                    if len(callbacks) == 1:
                        cb = callbacks[0]
                        callbacks.clear()  # reuse the list: event.callbacks stays valid
                        if cb.__class__ is method_cls and cb.__func__ is resume_func:
                            # Inline Process._resume's dominant leg.
                            proc = cb.__self__
                            if event is proc._target:  # else: stale wakeup, drop
                                self._active_proc = proc
                                proc._target = None
                                try:
                                    nxt = proc.gen.send(event._value)
                                except StopIteration as stop:
                                    self._active_proc = None
                                    proc.succeed(stop.value)
                                except BaseException as exc:
                                    self._active_proc = None
                                    proc.fail(exc)
                                else:
                                    if (
                                        nxt.__class__ is timeout_cls
                                        and not nxt._processed
                                        and nxt.env is self
                                    ):
                                        nxt.callbacks.append(cb)
                                        proc._target = nxt
                                        self._active_proc = None
                                    else:
                                        proc._after_yield(nxt)
                        else:
                            cb(event)
                    else:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if event._recycle and len(pool) < pool_max:
                        event._value = None
                        pool.append(event)
                else:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                    exc = event._exc
                    if exc is not None and not event._defused:
                        raise exc
                if flag is not None and flag.done:
                    break
        finally:
            self._processed_count += processed

    # -- reference loop -------------------------------------------------------------
    def _run_reference(self, until: Any) -> Any:
        """The pre-overhaul loop: one :meth:`step` call per event."""
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            target = until
            if target._processed:
                return target._value if target._exc is None else _reraise(target._exc)
            flag = self._until_flag
            if flag is None:
                flag = _StopFlag()
            else:
                self._until_flag = None
            flag.done = False
            target.callbacks.append(flag)
            try:
                while not flag.done:
                    if not self._heap:
                        raise SimulationError(
                            f"simulation ran out of events before {target!r} triggered "
                            "(deadlock: a process is waiting on an event nobody will fire)"
                        )
                    self.step()
            finally:
                if not flag.done:
                    try:
                        target.callbacks.remove(flag)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                self._until_flag = flag
            return target._value if target._exc is None else _reraise(target._exc)

        stop_at = float(until)
        if stop_at < self._now:
            raise SimulationError(f"run(until={stop_at}) is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= stop_at:
            self.step()
        self._now = stop_at
        return None


def _reraise(exc: BaseException) -> Any:
    raise exc
