"""Contention primitives: resources, containers, and stores.

These model the queuing behaviour of shared hardware: CPU cores and mapper
slots are :class:`Resource`\\ s, DMA in-flight request slots are a
:class:`Resource` with capacity 16, memory/disk space is a
:class:`Container`, and message queues (JobTracker inbox, DataNode request
queues) are :class:`Store`\\ s.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = [
    "Claim",
    "Container",
    "PriorityRequest",
    "PriorityResource",
    "Release",
    "Request",
    "Resource",
    "Store",
]


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted.

    Usable as a context manager so that exceptions (including simulation
    interrupts) release the slot::

        with res.request() as req:
            yield req
            yield env.timeout(work)

    ``_withdrawn`` is the lazy-cancellation tombstone: a cancelled queued
    request is only flagged, and the resource's queue drops it at pop
    time (or during periodic compaction) instead of scanning on cancel.
    """

    __slots__ = ("resource", "_withdrawn")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self._withdrawn = False
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release if granted, withdraw from the queue otherwise."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A request with an explicit priority (lower value = served first)."""

    __slots__ = ("priority", "seq")

    def __init__(self, resource: "PriorityResource", priority: int = 0):
        self.priority = priority
        self.seq = resource._next_seq()
        super().__init__(resource)


class Release(Event):
    """Immediate event confirming a release (present for API symmetry).

    Born already processed: nothing in the system waits on a release, so
    scheduling one heap event per release (as the pre-overhaul engine
    did) was pure dispatch overhead. A process that does yield a Release
    resumes immediately through the processed-event shortcut.
    """

    __slots__ = ()

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self._triggered = True
        self._processed = True


#: Compaction policy for lazily-deleted queues: compact once at least
#: ``_COMPACT_MIN`` tombstones exist and they are at least half the queue.
_COMPACT_MIN = 32


class Claim:
    """Token for a synchronous, uncontended slot claim (no events).

    Returned by :meth:`Resource.try_claim` when a slot is free and no
    live request is queued — the exact condition under which a normal
    :class:`Request` would be granted immediately. Claiming this way
    skips the grant event entirely, which collapses hot chains like
    "acquire idle channel → timed transfer → release" into a single
    scheduled event. Pass it back via :meth:`Resource.release_claim`
    (in a ``finally:`` so interrupts cannot leak the slot).
    """

    __slots__ = ()


class Resource:
    """A capacity-limited resource with FIFO granting.

    ``capacity`` slots may be held simultaneously; further requests
    queue. Cancellation of a queued request is lazy: the request is
    tombstoned (``_withdrawn``) and dropped when it reaches the head of
    the queue, with periodic compaction bounding the garbage (see
    ``docs/PERFORMANCE.md``).
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list = []  # granted Requests and synchronous Claims
        self.queue: deque[Request] = deque()
        self._stale = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of live (non-withdrawn) queued requests."""
        return len(self.queue) - self._stale

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self)

    def try_claim(self) -> Optional[Claim]:
        """Synchronously claim a slot if one would be granted immediately.

        Returns a :class:`Claim` token (release with
        :meth:`release_claim`) or ``None`` when the caller must queue via
        :meth:`request`. Grant fairness is unchanged: the claim succeeds
        exactly when a fresh request would succeed without waiting.
        """
        if len(self.users) < self.capacity and len(self.queue) == self._stale:
            claim = Claim()
            self.users.append(claim)
            return claim
        return None

    def release_claim(self, claim: Claim) -> None:
        """Return a slot taken with :meth:`try_claim`."""
        self.users.remove(claim)
        self._grant_next()

    def release(self, request: Request) -> Release:
        """Return a slot (or withdraw a queued request)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif not request._triggered and not request._withdrawn:
            # Still queued: tombstone instead of an O(n) deque scan.
            request._withdrawn = True
            self._stale = stale = self._stale + 1
            if stale >= _COMPACT_MIN and stale * 2 >= len(self.queue):
                self.queue = deque(r for r in self.queue if not r._withdrawn)
                self._stale = 0
        return Release(self.env)

    # -- internals -------------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(self)
        else:
            self.queue.append(request)

    def _grant_next(self) -> None:
        queue = self.queue
        users = self.users
        capacity = self.capacity
        while queue and len(users) < capacity:
            nxt = queue.popleft()
            if nxt._withdrawn:
                self._stale -= 1
                continue
            users.append(nxt)
            nxt.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.count}/{self.capacity} queued={self.queued}>"


class PriorityResource(Resource):
    """A resource whose queue is ordered by request priority.

    Cancellation is lazy here too: the pre-overhaul implementation
    rebuilt and re-heapified the whole queue on every cancel (O(n));
    withdrawn entries are now tombstoned, skipped at pop time, and
    swept out by periodic compaction driven by a stale-entry counter.
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        super().__init__(env, capacity)
        self._pqueue: list[tuple[int, int, PriorityRequest]] = []
        self._pstale = 0
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def queued(self) -> int:
        """Number of live (non-withdrawn) queued requests."""
        return len(self._pqueue) - self._pstale

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def try_claim(self) -> Optional[Claim]:
        if len(self.users) < self.capacity and len(self._pqueue) == self._pstale:
            claim = Claim()
            self.users.append(claim)
            return claim
        return None

    def _do_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        if len(self.users) < self.capacity and len(self._pqueue) == self._pstale:
            self.users.append(request)
            request.succeed(self)
        else:
            heapq.heappush(self._pqueue, (request.priority, request.seq, request))

    def release(self, request: Request) -> Release:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif not request._triggered and not request._withdrawn:
            request._withdrawn = True
            self._pstale = stale = self._pstale + 1
            if stale >= _COMPACT_MIN and stale * 2 >= len(self._pqueue):
                self._pqueue = [entry for entry in self._pqueue if not entry[2]._withdrawn]
                heapq.heapify(self._pqueue)
                self._pstale = 0
        return Release(self.env)

    def _grant_next(self) -> None:
        pqueue = self._pqueue
        users = self.users
        capacity = self.capacity
        while pqueue and len(users) < capacity:
            _p, _s, nxt = heapq.heappop(pqueue)
            if nxt._withdrawn:
                self._pstale -= 1
                continue
            users.append(nxt)
            nxt.succeed(self)


class Container:
    """A homogeneous bulk quantity (bytes of RAM, disk space, energy).

    ``put``/``get`` events trigger once the amount can be satisfied.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[float, Event]] = deque()
        self._putters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def try_put(self, amount: float) -> bool:
        """Synchronously add ``amount`` if it would be admitted immediately.

        The put succeeds exactly when a fresh :meth:`put` event would
        trigger without waiting: no queued putter precedes it (FIFO) and
        the amount fits under ``capacity``. Returns ``False`` when the
        caller must fall back to the event-based :meth:`put`. No event
        object is created on either path, which collapses hot
        reserve/consume chains (the same idea as
        :meth:`Resource.try_claim` and the :class:`Store` fast paths).
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._putters or self._level + amount > self.capacity:
            return False
        self._level += amount
        if self._getters:
            self._settle()
        return True

    def try_get(self, amount: float) -> bool:
        """Synchronously remove ``amount`` if the level covers it now.

        Succeeds exactly when a fresh :meth:`get` event would trigger
        without waiting (no queued getter precedes it, level is
        sufficient); returns ``False`` otherwise.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if self._getters or self._level < amount:
            return False
        self._level -= amount
        if self._putters:
            self._settle()
        return True

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers once it fits under ``capacity``.

        Like :meth:`Store.put`, an immediately-satisfiable put (no queued
        putter to preserve FIFO against, amount fits) completes
        synchronously with a born-processed event, so a yielding process
        resumes without a heap round trip.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        evt = Event(self.env)
        if not self._putters and self._level + amount <= self.capacity:
            self._level += amount
            evt._value = amount
            evt._triggered = True
            evt._processed = True
            if self._getters:
                self._settle()
            return evt
        self._putters.append((amount, evt))
        self._settle()
        return evt

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers once the level can cover it.

        Immediately-satisfiable gets take the same synchronous fast path
        as :meth:`put` (see :meth:`Store.get` for the FIFO argument).
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        evt = Event(self.env)
        if not self._getters and self._level >= amount:
            self._level -= amount
            evt._value = amount
            evt._triggered = True
            evt._processed = True
            if self._putters:
                self._settle()
            return evt
        self._getters.append((amount, evt))
        self._settle()
        return evt

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, evt = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    evt.succeed(amount)
                    progress = True
            if self._getters:
                amount, evt = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    evt.succeed(amount)
                    progress = True


class Store:
    """An unordered-capacity FIFO queue of Python objects.

    Optionally a ``filter`` can be given to :meth:`get` to take the first
    matching item (used for tagged message matching).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Optional[Callable[[Any], bool]], Event]] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; triggers when there is room.

        When the insert can complete synchronously (no queued waiters,
        room available — the settled-state invariant makes this
        equivalent to queueing the putter and running a settle pass) the
        returned event is born processed: a process yielding it continues
        immediately instead of taking a heap round trip. Hot message
        loops (heartbeats, DataNode request queues) put once per
        protocol round, so this removes one event per round.
        """
        evt = Event(self.env)
        if not self._putters and len(self.items) < self.capacity:
            # Immediate admission (FIFO-safe: no queued putter precedes
            # us). Waiting getters are then served through the normal
            # settle pass, in the same succeed order as before.
            self.items.append(item)
            evt._value = item
            evt._triggered = True
            evt._processed = True
            if self._getters:
                self._settle()
            return evt
        self._putters.append((item, evt))
        self._settle()
        return evt

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the first (matching) item when available.

        Like :meth:`put`, an immediately-satisfiable get (no queued
        getters to preserve FIFO against, no putters whose admission
        could precede this get in settle order) completes synchronously
        with a pre-processed event.
        """
        evt = Event(self.env)
        if not self._getters and self.items:
            # Immediate service (FIFO-safe: no queued getter precedes
            # us). A queued putter that the freed capacity can now admit
            # is handled by the settle pass, exactly as it would have
            # been after this getter in the old settle order.
            idx = self._find(filter)
            if idx is not None:
                item = self.items[idx]
                del self.items[idx]
                evt._value = item
                evt._triggered = True
                evt._processed = True
                if self._putters:
                    self._settle()
                return evt
        self._getters.append((filter, evt))
        self._settle()
        return evt

    def _settle(self) -> None:
        items = self.items
        putters = self._putters
        capacity = self.capacity
        progress = True
        while progress:
            progress = False
            # Admit queued putters while capacity allows.
            while putters and len(items) < capacity:
                item, evt = putters.popleft()
                items.append(item)
                evt.succeed(item)
                progress = True
            # Serve getters in FIFO order; a filtered getter that cannot
            # be satisfied does not block later getters. Skip the scan
            # entirely when there is nothing to match against.
            getters = self._getters
            if getters and items:
                unserved: deque[tuple[Optional[Callable[[Any], bool]], Event]] = deque()
                while getters:
                    flt, evt = getters.popleft()
                    idx = self._find(flt)
                    if idx is None:
                        unserved.append((flt, evt))
                    else:
                        item = items[idx]
                        del items[idx]
                        evt.succeed(item)
                        progress = True
                self._getters = getters = unserved

    def _find(self, flt: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if flt is None:
            return 0 if self.items else None
        for i, item in enumerate(self.items):
            if flt(item):
                return i
        return None
