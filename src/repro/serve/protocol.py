"""The `repro serve` wire protocol: line-delimited JSON.

One connection carries one request and its response stream. The client
sends a single JSON object on one line; the server answers with a
sequence of JSON event lines and closes the connection after the
terminal event. Line framing keeps the protocol trivially debuggable
(``nc``/``socat`` work) and trivially safe to parse incrementally.

Requests (``verb`` selects the operation)::

    {"verb": "submit", "scenario": "fig8", "overrides": {"nodes": [2,4]},
     "seed": 1234, "reference_engine": false, "reference_model": false,
     "detach": false}
    {"verb": "status"}                  # all jobs
    {"verb": "status", "job": "job-000001"}
    {"verb": "cancel", "job": "job-000001"}
    {"verb": "shutdown"}                # graceful: drain running jobs
    {"verb": "shutdown", "mode": "now"} # cancel running jobs first
    {"verb": "ping"}
    {"verb": "metrics"}                 # Prometheus text exposition

Response events (``event`` selects the type)::

    {"event": "accepted", "job": ..., "request_key": ..., "coalesced": bool,
     "state": ..., "done": int, "total": int}
    {"event": "point", "job": ..., "index": int, "params": {...},
     "values": {...}, "done": int, "total": int}
    {"event": "result", "job": ..., "sha256": ..., "payload": <str>,
     "executed_points": int, "cached_points": int, ...}
    {"event": "cancelled", "job": ...}
    {"event": "status", "jobs": [...], "stats": {...}}
    {"event": "cancel", "job": ..., "ok": bool, "state": ...}
    {"event": "shutdown", "ok": true}
    {"event": "pong", "version": 1}
    {"event": "metrics", "content_type": ..., "text": <Prometheus text>}
    {"event": "error", "message": ...}

The ``payload`` of a ``result`` event is the full pretty-printed
canonical JSON of the sweep — the **exact bytes** ``repro sweep`` would
write to ``results/<scenario>.json`` — so byte-identity claims can be
checked end to end with ``cmp``. Every client attached to one job
(coalesced or not) receives the same payload string.

Overrides travel as the same ``key -> [values]`` / ``key -> value``
shapes ``--grid`` parses into; the server binds them with
:meth:`Scenario.with_overrides`, which casts and validates. Engine and
model reference modes may be pinned per request (``null`` means "the
daemon's own mode"); grid points re-apply them inside the worker
processes, so one daemon serves all four mode combinations at once.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

# The line-JSON framing itself lives in repro.wire (shared with the
# fleet protocol); re-exported here so existing imports keep working.
from repro.wire import ProtocolError, decode, encode, read_events

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "VERBS",
    "decode",
    "encode",
    "parse_request",
    "read_events",
    "submit_request",
]

PROTOCOL_VERSION = 1

VERBS = ("submit", "status", "cancel", "shutdown", "ping", "metrics")

#: Shutdown modes: graceful waits for running jobs, now cancels them.
SHUTDOWN_MODES = ("graceful", "now")


def submit_request(
    scenario: str,
    overrides: Optional[Mapping[str, Any]] = None,
    *,
    seed: Optional[int] = None,
    reference_engine: Optional[bool] = None,
    reference_model: Optional[bool] = None,
    detach: bool = False,
) -> dict[str, Any]:
    """Build a well-formed submit request."""
    msg: dict[str, Any] = {"verb": "submit", "scenario": scenario}
    if overrides:
        msg["overrides"] = {
            k: list(v) if isinstance(v, (list, tuple)) else v
            for k, v in overrides.items()
        }
    if seed is not None:
        msg["seed"] = int(seed)
    if reference_engine is not None:
        msg["reference_engine"] = bool(reference_engine)
    if reference_model is not None:
        msg["reference_model"] = bool(reference_model)
    if detach:
        msg["detach"] = True
    return msg


def _require_str(msg: Mapping[str, Any], field: str) -> str:
    value = msg.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{msg.get('verb')}: {field!r} must be a non-empty string")
    return value


def _optional_bool(msg: Mapping[str, Any], field: str) -> Optional[bool]:
    value = msg.get(field)
    if value is None:
        return None
    if not isinstance(value, bool):
        raise ProtocolError(f"{field!r} must be a boolean or null")
    return value


def parse_request(msg: Mapping[str, Any]) -> dict[str, Any]:
    """Validate one request frame's structure and return a normalized
    copy. Semantic errors (unknown scenario, bad grid values) are the
    server's job — this only guards the shape."""
    verb = msg.get("verb")
    if verb not in VERBS:
        raise ProtocolError(
            f"unknown verb {verb!r}; expected one of: {', '.join(VERBS)}"
        )
    out: dict[str, Any] = {"verb": verb}
    if verb == "submit":
        out["scenario"] = _require_str(msg, "scenario")
        overrides = msg.get("overrides")
        if overrides is not None and not isinstance(overrides, dict):
            raise ProtocolError("submit: 'overrides' must be an object")
        out["overrides"] = dict(overrides or {})
        seed = msg.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError("submit: 'seed' must be an integer or null")
        out["seed"] = seed
        out["reference_engine"] = _optional_bool(msg, "reference_engine")
        out["reference_model"] = _optional_bool(msg, "reference_model")
        detach = msg.get("detach", False)
        if not isinstance(detach, bool):
            raise ProtocolError("submit: 'detach' must be a boolean")
        out["detach"] = detach
    elif verb == "cancel":
        out["job"] = _require_str(msg, "job")
    elif verb == "status":
        job = msg.get("job")
        if job is not None and (not isinstance(job, str) or not job):
            raise ProtocolError("status: 'job' must be a non-empty string or absent")
        out["job"] = job
    elif verb == "shutdown":
        mode = msg.get("mode", "graceful")
        if mode not in SHUTDOWN_MODES:
            raise ProtocolError(
                f"shutdown: mode must be one of {SHUTDOWN_MODES}, got {mode!r}"
            )
        out["mode"] = mode
    return out
