"""The long-running simulation daemon behind ``repro serve``.

One process, three kinds of threads:

- an **accept loop** listening on a TCP port or unix socket;
- one **connection handler** per client, reading a single line-JSON
  request and streaming response events back (see
  :mod:`repro.serve.protocol`);
- one **executor** per admitted job, fanning the job's grid points onto
  the shared persistent :class:`~repro.experiments.pool.SweepPool` and
  publishing per-point progress to every subscribed client.

Correctness properties, in order of importance:

- **Byte identity.** A served payload is assembled by the exact
  :func:`~repro.experiments.driver.build_result` path offline sweeps
  use, from per-point values computed by the same worker-side task
  function — so it is byte-identical to ``repro sweep`` output by
  construction, at any concurrency, in any engine/model mode.
- **Coalescing.** Admission goes through the job table's in-flight
  registry: concurrent submits with one canonical request key execute
  the grid once; every attached client receives the same payload.
- **Isolation.** Grid points always run in pool worker processes, and
  each task re-applies its job's engine/model modes around the point
  (exactly as parallel sweeps do), so concurrent jobs in different
  modes never perturb each other or the daemon process.
- **Prompt cancellation.** Points are dispatched in waves of at most
  ``workers`` in-flight tasks (``apply_async``, not a bulk ``imap``),
  so a cancelled job stops consuming the pool after the current wave.

Cancellation and client disconnects are independent: a client that
goes away mid-stream just loses its subscription — the job keeps
running for the other attached clients (and for the cache). Only an
explicit ``cancel`` verb kills a job.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from pathlib import Path
from queue import Empty, SimpleQueue
from typing import Any, Callable, Mapping, Optional

from repro.experiments.cache import (
    PointCache,
    TimingStore,
    load_cached,
    store_cached,
)
from repro.experiments.driver import _order_tasks, _run_point_task, build_result
from repro.experiments.pool import SweepPool
from repro.experiments.scenario import GridError
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE, render as render_prometheus
from repro.serve import protocol
from repro.serve.jobs import Job, JobRequest, JobTable
from repro.serve.logs import log_event, server_logger

__all__ = ["ReproServer"]


class ReproServer:
    """The daemon: a listener, a job table, and a worker pool.

    Parameters
    ----------
    port: TCP port to listen on (0 = OS-assigned); exclusive with
        ``socket_path``.
    socket_path: unix socket path to listen on.
    host: TCP bind address (default loopback; this protocol has no
        authentication, so binding wider is an explicit choice).
    workers: pool worker processes serving grid points.
    cache_dir: optional cache directory; when set, jobs go through the
        whole-sweep and per-point caches (and record point timings)
        exactly as ``repro sweep --cache`` does.
    pool: an existing :class:`SweepPool` to serve on (left open on
        shutdown unless ``owns_pool=True``). Default: a dedicated pool
        the server closes on shutdown.
    abandon_timeout_s: how long a running job may outlive its last
        streaming client before it is reaped (cancelled) — the lease a
        mid-stream disconnect leaves behind expires instead of leaking
        pool capacity. A job keeps running while *any* coalesced
        client is still attached, and detach-submitted jobs are never
        reaped (their clients poll by job id). None disables reaping.
    clock: time source for the job table (tests inject a fake one).
    """

    def __init__(
        self,
        *,
        port: Optional[int] = None,
        socket_path: Optional[Path] = None,
        host: str = "127.0.0.1",
        workers: int = 2,
        cache_dir: Optional[Path] = None,
        pool: Optional[SweepPool] = None,
        owns_pool: Optional[bool] = None,
        abandon_timeout_s: Optional[float] = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if (port is None) == (socket_path is None):
            raise ValueError("exactly one of port= or socket_path= is required")
        self.host = host
        self.port = port
        self.socket_path = Path(socket_path) if socket_path is not None else None
        if pool is None:
            pool = SweepPool(workers)
            owns_pool = True if owns_pool is None else owns_pool
        else:
            owns_pool = False if owns_pool is None else owns_pool
        self.pool = pool
        self.workers = pool.workers
        self._owns_pool = owns_pool
        self.abandon_timeout_s = abandon_timeout_s
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.point_cache = PointCache(self.cache_dir) if self.cache_dir else None
        self.timings = TimingStore(self.cache_dir) if self.cache_dir else None
        self.table = JobTable(clock=clock)
        self._clock = clock
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: set[threading.Thread] = set()
        self._draining = False
        self._done = threading.Event()
        self._started_at: Optional[float] = None
        self.points_executed = 0
        self.cache_hits = 0
        # Daemon metrics are always on (unlike simulation telemetry):
        # the registry is private to this server instance and costs a
        # few counter bumps per request — nothing on any simulation
        # path. The `metrics` verb renders it as Prometheus text.
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_serve_requests_total", "Requests handled, by verb",
            labels=("verb",),
        )
        self._m_latency = self.metrics.histogram(
            "repro_serve_request_seconds",
            "Request handling wall time (includes streaming), by verb",
            labels=("verb",),
        )
        self._m_points = self.metrics.counter(
            "repro_serve_points_total", "Grid points served, by source",
            labels=("source",),
        )
        self._m_sweep_cache_hits = self.metrics.counter(
            "repro_serve_sweep_cache_hits_total",
            "Jobs answered from the whole-sweep cache",
        )
        self._m_jobs = self.metrics.counter(
            "repro_serve_jobs_total", "Jobs reaching a terminal state, by outcome",
            labels=("outcome",),
        )
        self._m_reaped = self.metrics.counter(
            "repro_serve_jobs_reaped_total",
            "Running jobs cancelled after every streaming client vanished",
        )
        self._m_worker_deaths = self.metrics.counter(
            "repro_serve_worker_deaths_total",
            "Pool worker deaths detected and survived mid-job",
        )

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ReproServer":
        """Bind, listen, and spawn the accept loop."""
        if self._listener is not None:
            return self
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if self.socket_path.exists():
                self.socket_path.unlink()  # stale socket from a dead daemon
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            sock.bind(str(self.socket_path))
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            self.port = sock.getsockname()[1]
        sock.listen(128)
        self._listener = sock
        self._started_at = self._clock()
        log_event(server_logger, logging.INFO, "server_started",
                  endpoint=self.endpoint(), workers=self.workers,
                  cache_dir=self.cache_dir)
        self._spawn(self._accept_loop, name="repro-serve-accept")
        return self

    def endpoint(self) -> str:
        """Human-readable listen address (also what clients connect to)."""
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until shutdown completes (the CLI's serve loop)."""
        return self._done.wait(timeout)

    def shutdown(self, mode: str = "graceful") -> None:
        """Stop accepting, settle jobs, release the pool, wake waiters.

        ``graceful`` lets running jobs finish (queued-but-never-claimed
        jobs too — executors are spawned at admission, so nothing can be
        stranded); ``now`` cancels every non-terminal job first. Either
        way the pool this server owns is closed, so a clean shutdown
        leaves no worker processes behind.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
        self._close_listener()
        if mode == "now":
            for job in self.table.active():
                job.cancel()
        me = threading.current_thread()
        while True:
            with self._lock:
                live = [t for t in self._threads if t.is_alive() and t is not me]
            if not live:
                break
            for t in live:
                t.join(timeout=30)
        if self._owns_pool:
            self.pool.close()
        if self.socket_path is not None and self.socket_path.exists():
            try:
                self.socket_path.unlink()
            except OSError:
                pass
        log_event(server_logger, logging.INFO, "server_stopped", mode=mode)
        self._done.set()

    def close(self) -> None:
        """Idempotent teardown for tests/embedding: immediate shutdown."""
        self.shutdown(mode="now")

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                # close() alone does not wake a thread blocked in
                # accept(); shutdown() does, making it fail with OSError.
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass

    def _spawn(self, target: Callable[..., None], *args, name: str) -> None:
        thread = threading.Thread(target=target, args=args, name=name, daemon=True)
        with self._lock:
            self._threads = {t for t in self._threads if t.is_alive()}
            self._threads.add(thread)
        thread.start()

    # -- stats ---------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            uptime = (self._clock() - self._started_at
                      if self._started_at is not None else 0.0)
            return {
                "jobs": len(self.table),
                "active_jobs": len(self.table.active()),
                "coalesced_submits": self.table.coalesced_submits,
                "points_executed": self.points_executed,
                "cache_hits": self.cache_hits,
                "workers": self.workers,
                "uptime_s": round(uptime, 3),
                "version": protocol.PROTOCOL_VERSION,
            }

    # -- accepting + connection handling -------------------------------------
    def _accept_loop(self) -> None:
        while True:
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed: shutdown in progress
            self._spawn(self._handle_conn, conn, name="repro-serve-conn")

    def _handle_conn(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            line = stream.readline()
            if not line:
                return
            try:
                msg = protocol.parse_request(protocol.decode(line))
            except protocol.ProtocolError as exc:
                self._send(stream, {"event": "error", "message": str(exc)})
                return
            self.handle_request(msg, lambda event: self._send(stream, event))
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; the job (if any) keeps running
        finally:
            try:
                stream.close()
            except OSError:
                pass
            try:
                # shutdown(), not just close(): forked pool workers hold
                # inherited duplicates of this fd, and only a shutdown
                # terminates the stream itself — otherwise the client
                # never sees EOF until the workers exit.
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _send(stream, event: Mapping[str, Any]) -> None:
        stream.write(protocol.encode(event))
        stream.flush()

    # -- request dispatch (socket-free, so unit tests can call it) -----------
    def handle_request(
        self, msg: Mapping[str, Any], send: Callable[[Mapping[str, Any]], None]
    ) -> None:
        """Serve one validated request, writing events through ``send``."""
        verb = msg["verb"]
        started = time.perf_counter()
        try:
            if verb == "ping":
                send({"event": "pong", "version": protocol.PROTOCOL_VERSION})
            elif verb == "status":
                self._handle_status(msg, send)
            elif verb == "cancel":
                ok, state = self.table.cancel(msg["job"])
                log_event(server_logger, logging.INFO, "job_cancel_requested",
                          job=msg["job"], ok=ok, state=state)
                send({"event": "cancel", "job": msg["job"], "ok": ok, "state": state})
            elif verb == "shutdown":
                send({"event": "shutdown", "ok": True,
                      "mode": msg.get("mode", "graceful")})
                # The response is flushed before the drain starts, so the
                # client is never left waiting on a dying daemon.
                log_event(server_logger, logging.INFO, "shutdown_requested",
                          mode=msg.get("mode", "graceful"))
                self.shutdown(mode=msg.get("mode", "graceful"))
            elif verb == "metrics":
                send({"event": "metrics", "content_type": CONTENT_TYPE,
                      "text": self.render_metrics()})
            elif verb == "submit":
                self._handle_submit(msg, send)
            else:  # pragma: no cover - parse_request already rejects these
                send({"event": "error", "message": f"unhandled verb {verb!r}"})
        finally:
            self._m_requests.inc(verb=verb)
            self._m_latency.observe(time.perf_counter() - started, verb=verb)

    def render_metrics(self) -> str:
        """Prometheus text exposition of the daemon registry, with the
        point-in-time stats refreshed into gauges at render time."""
        stats = self.stats()
        for name, help_text in (
            ("jobs", "Jobs admitted since start"),
            ("active_jobs", "Jobs currently queued or running"),
            ("coalesced_submits", "Submits coalesced onto an in-flight job"),
            ("workers", "Pool worker processes"),
            ("uptime_s", "Daemon uptime in seconds"),
        ):
            self.metrics.gauge(f"repro_serve_{name}", help_text).set(stats[name])
        return render_prometheus(self.metrics)

    def _handle_status(self, msg, send) -> None:
        job_id = msg.get("job")
        if job_id is None:
            send({"event": "status", "jobs": self.table.rows(),
                  "stats": self.stats()})
            return
        job = self.table.get(job_id)
        if job is None:
            send({"event": "error", "message": f"unknown job {job_id!r}"})
            return
        row = job.snapshot()
        if job.payload is not None:
            # Terminal detail includes the payload: a detached client
            # can recover its full result from the job id alone.
            row["payload"] = job.payload
        send({"event": "status", "jobs": [row], "stats": self.stats()})

    def _handle_submit(self, msg, send) -> None:
        with self._lock:
            if self._draining:
                send({"event": "error", "message": "server is shutting down"})
                return
        request = JobRequest(
            scenario=msg["scenario"],
            overrides=msg.get("overrides") or {},
            seed=msg.get("seed"),
            reference_engine=msg.get("reference_engine"),
            reference_model=msg.get("reference_model"),
        )
        try:
            job, created = self.table.admit(request)
        except (KeyError, GridError) as exc:
            reason = exc.args[0] if exc.args else str(exc)
            log_event(server_logger, logging.WARNING, "submit_rejected",
                      scenario=msg.get("scenario"), error=str(reason))
            send({"event": "error", "message": str(reason)})
            return
        log_event(server_logger, logging.INFO, "job_admitted",
                  job=job.id, request_key=job.key, scenario=request.scenario,
                  coalesced=not created, total=job.total)
        queue = None if msg.get("detach") else job.subscribe()
        send({
            "event": "accepted",
            "job": job.id,
            "request_key": job.key,
            "coalesced": not created,
            "state": job.state,
            "done": job.done,
            "total": job.total,
        })
        if created:
            self._spawn(self._execute, job, name=f"repro-serve-{job.id}")
        if queue is None:
            return
        try:
            while True:
                try:
                    event = queue.get(timeout=1.0)
                except Empty:
                    continue
                send(event)
                if event["event"] in ("result", "cancelled", "error"):
                    return
        finally:
            job.unsubscribe(queue)

    # -- job execution --------------------------------------------------------
    def _execute(self, job: Job) -> None:
        try:
            self._run_job(job)
        except Exception as exc:  # noqa: BLE001 - one job must not kill the daemon
            job.finish_failed(f"{type(exc).__name__}: {exc}")
            log_event(server_logger, logging.ERROR, "job_failed",
                      job=job.id, request_key=job.key,
                      error=f"{type(exc).__name__}: {exc}")
            self._m_jobs.inc(outcome="failed")
        finally:
            self.table.release(job)

    def _run_job(self, job: Job) -> None:
        sc = job.scenario
        ref, mref = job.reference_engine, job.reference_model
        if self.cache_dir is not None:
            cached = load_cached(self.cache_dir, sc, job.key)
            if cached is not None:
                if not job.mark_running():
                    return  # cancelled before the executor got here
                with self._lock:
                    self.cache_hits += 1
                self._m_sweep_cache_hits.inc()
                log_event(server_logger, logging.INFO, "job_done",
                          job=job.id, request_key=job.key, cache_hit=True)
                self._finish_with_result(job, cached, cache_hit=True)
                return
        if not job.mark_running():
            return
        log_event(server_logger, logging.DEBUG, "job_running",
                  job=job.id, request_key=job.key, total=job.total)

        points = sc.points()
        total = len(points)
        results: list[Optional[dict[str, float]]] = [None] * total
        point_elapsed: list[Optional[float]] = [None] * total
        cache_keys: list[Optional[str]] = [None] * total
        cached_n = 0
        if self.point_cache is not None:
            for i, cfg in enumerate(points):
                cache_keys[i], hit = self.point_cache.lookup(
                    sc, cfg, reference=ref, model_reference=mref
                )
                if hit is not None:
                    results[i] = hit
                    cached_n += 1
            job.note_cached(cached_n)

        pending = [i for i in range(total) if results[i] is None]
        tasks = [(sc.name, i, points[i], ref, mref, False) for i in pending]
        cost_keys: dict[int, str] = {}
        if self.timings is not None:
            cost_keys = {
                i: self.timings.key(sc, points[i], reference=ref,
                                    model_reference=mref)
                for i in pending
            }
            tasks = _order_tasks(
                tasks, lambda t: self.timings.estimate(cost_keys[t[1]])
            )

        t0 = time.perf_counter()
        executed: list[int] = []
        if tasks and not self._dispatch_waves(
            job, tasks, points, results, point_elapsed, executed
        ):
            # Cancelled mid-flight. Completed points are pure values —
            # bank them so a resubmit only pays for what never ran.
            self._store_fresh(sc, executed, results, point_elapsed,
                              cache_keys, cost_keys)
            log_event(server_logger, logging.INFO, "job_cancelled",
                      job=job.id, request_key=job.key,
                      completed_points=len(executed))
            self._m_jobs.inc(outcome="cancelled")
            job.finish_cancelled()
            return

        self._store_fresh(sc, pending, results, point_elapsed,
                          cache_keys, cost_keys)
        result = build_result(
            sc,
            results,
            point_elapsed,
            workers=self.pool.workers,
            elapsed_s=time.perf_counter() - t0,
            start_method=self.pool.start_method,
            executed_points=len(pending),
            cached_points=cached_n,
        )
        if self.cache_dir is not None:
            store_cached(result, self.cache_dir, job.key)
        with self._lock:
            self.points_executed += len(pending)
        if pending:
            self._m_points.inc(len(pending), source="executed")
        if cached_n:
            self._m_points.inc(cached_n, source="point_cache")
        log_event(server_logger, logging.INFO, "job_done",
                  job=job.id, request_key=job.key, sha256=result.sha256(),
                  executed_points=len(pending), cached_points=cached_n,
                  elapsed_s=round(result.elapsed_s, 3))
        self._finish_with_result(job, result)

    def _dispatch_waves(
        self, job: Job, tasks, points, results, point_elapsed, executed
    ) -> bool:
        """Run ``tasks`` on the pool, at most ``workers`` in flight;
        False when the job was cancelled before every task finished.
        Completed indices are appended to ``executed``.

        The completion wait polls rather than blocks, which buys two
        kinds of fault tolerance: a SIGKILLed pool worker (whose task
        would otherwise never complete) is detected via
        :meth:`SweepPool.reap_dead` and the whole in-flight wave is
        re-dispatched onto the respawned pool, and a job every
        streaming client abandoned mid-run is reaped (cancelled) after
        ``abandon_timeout_s`` instead of leaking its lease. Tasks are
        idempotent pure point functions, so a re-dispatch can at worst
        deliver a duplicate result — deduplicated here by index."""
        completions: SimpleQueue = SimpleQueue()
        it = iter(tasks)
        inflight: dict[int, Any] = {}  # point index -> task tuple

        def dispatch(task) -> None:
            self.pool.apply_async(
                _run_point_task, (task,),
                callback=completions.put,
                error_callback=completions.put,
            )

        while True:
            self._maybe_reap_abandoned(job)
            if not job.cancelled:
                while len(inflight) < self.workers:
                    task = next(it, None)
                    if task is None:
                        break
                    inflight[task[1]] = task
                    dispatch(task)
            if not inflight:
                return not job.cancelled
            try:
                outcome = completions.get(timeout=0.5)
            except Empty:
                # A silent pool may just be slow — or a worker died and
                # its task is gone for good. Health-check, and respawn +
                # re-dispatch the whole wave when a death is detected
                # (the terminated pool drops its queue, so at most one
                # stale duplicate per point can still arrive).
                if self.pool.reap_dead():
                    log_event(server_logger, logging.WARNING,
                              "pool_worker_died", job=job.id,
                              redispatched=len(inflight),
                              deaths=self.pool.deaths_detected)
                    self._m_worker_deaths.inc()
                    for task in inflight.values():
                        dispatch(task)
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            idx, values, dt, _snap = outcome
            if inflight.pop(idx, None) is None:
                continue  # duplicate from a pre-respawn dispatch
            results[idx] = values
            point_elapsed[idx] = dt
            executed.append(idx)
            params = {k: v for k, v in points[idx].items() if k != "seed"}
            job.publish_point(idx, params, values)
            if job.cancelled and not inflight:
                return False

    def _maybe_reap_abandoned(self, job: Job) -> None:
        """Cancel a running job whose last streaming client vanished
        more than ``abandon_timeout_s`` ago — a disconnect without a
        cancel must expire the lease, not leak pool capacity forever.
        Jobs with any attached subscriber (coalesced survivors) and
        detach-submitted jobs never accrue abandonment time."""
        timeout = self.abandon_timeout_s
        if timeout is None or job.cancelled:
            return
        idle = job.abandoned_for(self._clock())
        if idle <= timeout:
            return
        log_event(server_logger, logging.WARNING, "job_reaped",
                  job=job.id, request_key=job.key, idle_s=round(idle, 3),
                  timeout_s=timeout)
        self._m_reaped.inc()
        job.cancel()

    def _store_fresh(self, sc, indices, results, point_elapsed,
                     cache_keys, cost_keys) -> None:
        for i in indices:
            if results[i] is None:
                continue
            if self.point_cache is not None and cache_keys[i] is not None:
                self.point_cache.store(sc.name, cache_keys[i], results[i])
            if self.timings is not None and i in cost_keys:
                self.timings.record(cost_keys[i], point_elapsed[i])
        if self.timings is not None:
            self.timings.flush()

    def _finish_with_result(self, job: Job, result, cache_hit: bool = False) -> None:
        job.finish_done(result, result.pretty_json(), result.sha256(),
                        cache_hit=cache_hit)
        self._m_jobs.inc(outcome="done")

    # -- context manager ------------------------------------------------------
    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
