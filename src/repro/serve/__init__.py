"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

A long-running process that accepts concurrent simulation/sweep
requests over a line-delimited JSON protocol (TCP or unix socket),
multiplexes them onto one shared persistent worker pool, coalesces
identical concurrent requests onto a single computation, and streams
per-point progress plus a final payload that is byte-identical to what
the offline ``repro sweep`` command writes.

Layering:

- :mod:`repro.serve.protocol` — wire format and request validation;
- :mod:`repro.serve.jobs` — job state machine, coalescing admission,
  subscriber fan-out (socket-free, fake-clock testable);
- :mod:`repro.serve.server` — the daemon: listener, connection
  handlers, pool-backed executors;
- :mod:`repro.serve.client` — the thin client ``repro submit`` uses.
"""

from repro.serve.client import (
    Address,
    request_one,
    request_stream,
    retry_delays,
    wait_for_server,
)
from repro.serve.jobs import Job, JobRequest, JobTable
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ReproServer

__all__ = [
    "Address",
    "Job",
    "JobRequest",
    "JobTable",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "request_one",
    "request_stream",
    "retry_delays",
    "wait_for_server",
]
