"""Structured logging for the serve daemon.

Replaces ad-hoc prints with the stdlib ``logging`` module under the
``repro.serve`` logger. Every line is an *event name* plus key=value
fields (job id, request key, verb, ...) so daemon output is grep-able
in text mode and machine-parseable in JSON mode::

    2026-08-08T12:00:00 INFO repro.serve job_admitted job=job-000001 \
        request_key=ab12... scenario=fig8 coalesced=False
    {"ts": "...", "level": "INFO", "logger": "repro.serve",
     "event": "job_admitted", "job": "job-000001", ...}

``repro serve --log-level debug --log-json`` wires this up; library
use of the server emits into whatever handlers the host application
configured (or nothing, per stdlib convention).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional, TextIO

__all__ = ["JsonFormatter", "KVFormatter", "configure_logging", "log_event", "server_logger"]

_FIELDS_ATTR = "repro_fields"

server_logger = logging.getLogger("repro.serve")


class KVFormatter(logging.Formatter):
    """``TIMESTAMP LEVEL logger event key=value ...`` text lines."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record)} {record.levelname} "
            f"{record.name} {record.getMessage()}"
        )
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            kv = " ".join(f"{k}={v}" for k, v in fields.items())
            base = f"{base} {kv}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


class JsonFormatter(logging.Formatter):
    """One JSON object per line; fields are merged in at the top level."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        out: dict[str, Any] = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            out.update(fields)
        if record.exc_info:
            out["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(out, sort_keys=True, default=str)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: Any
) -> None:
    """Emit one structured event with key=value fields."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={_FIELDS_ATTR: fields})


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Attach a stderr handler to the ``repro.serve`` logger.

    Idempotent per process: an existing handler installed by this
    function is replaced, not stacked, so repeated CLI invocations in
    one process (tests) never double-log. Returns the handler.
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else KVFormatter())
    handler.set_name("repro-serve-cli")
    for existing in list(server_logger.handlers):
        if existing.get_name() == handler.get_name():
            server_logger.removeHandler(existing)
    server_logger.addHandler(handler)
    server_logger.setLevel(getattr(logging, level.upper()))
    server_logger.propagate = False
    return handler
