"""Client side of the serving protocol: connect, send, stream events.

Thin by design — the daemon owns all semantics; the client only frames
one request per connection and iterates response lines. Everything the
CLI's ``repro submit`` does (and everything the test battery does) goes
through these few functions, so the wire behavior exercised in tests is
exactly the behavior users get.
"""

from __future__ import annotations

import random
import socket
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional, Union

from repro.serve import protocol

__all__ = [
    "Address",
    "connect",
    "request_one",
    "request_stream",
    "retry_delays",
    "wait_for_server",
]


class Address:
    """Where a daemon listens: ``host:port`` TCP or a unix socket path."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[Union[str, Path]] = None,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of port or socket_path is required")
        self.host = host or "127.0.0.1"
        self.port = port
        self.socket_path = Path(socket_path) if socket_path is not None else None

    @classmethod
    def parse(cls, connect: Optional[str], socket_path: Optional[str]) -> "Address":
        """From CLI flags: ``--connect [HOST:]PORT`` or ``--socket PATH``."""
        if (connect is None) == (socket_path is None):
            raise ValueError("exactly one of --connect and --socket is required")
        if socket_path is not None:
            return cls(socket_path=socket_path)
        host, _, port = connect.rpartition(":")
        try:
            return cls(host=host or None, port=int(port))
        except ValueError:
            raise ValueError(
                f"--connect expects [HOST:]PORT, got {connect!r}"
            ) from None

    def __str__(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"{self.host}:{self.port}"


def connect(address: Address, timeout: Optional[float] = None) -> socket.socket:
    if address.socket_path is not None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(str(address.socket_path))
    else:
        sock = socket.create_connection(
            (address.host, address.port), timeout=timeout
        )
    sock.settimeout(None)  # stream reads block until the server answers
    return sock


def request_stream(
    address: Address,
    msg: Mapping[str, Any],
    timeout: Optional[float] = None,
) -> Iterator[dict[str, Any]]:
    """Send one request; yield response events until the server closes."""
    sock = connect(address, timeout=timeout)
    try:
        stream = sock.makefile("rwb")
        stream.write(protocol.encode(msg))
        stream.flush()
        yield from protocol.read_events(stream)
    finally:
        try:
            sock.close()
        except OSError:
            pass


def request_one(
    address: Address,
    msg: Mapping[str, Any],
    timeout: Optional[float] = None,
) -> dict[str, Any]:
    """Send one request; return the single (or first) response event.

    For ``ping``/``status``/``cancel``/``shutdown``, which answer with
    exactly one event. Raises ``ProtocolError`` on an empty response.
    """
    for event in request_stream(address, msg, timeout=timeout):
        return event
    raise protocol.ProtocolError("server closed the connection without replying")


def retry_delays(
    retries: int,
    backoff: float,
    rng: Optional[Callable[[], float]] = None,
) -> Iterator[float]:
    """Sleep schedule for reconnect attempts: ``retries`` delays of
    ``backoff * 2**attempt``, each scaled by a uniform jitter factor in
    ``[0.5, 1.5)`` so a fleet of clients retrying against one daemon
    does not thunder in lockstep. ``rng`` (a 0→[0,1) callable) is
    injectable for deterministic tests."""
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    draw = rng if rng is not None else random.random
    for attempt in range(retries):
        yield backoff * (2 ** attempt) * (0.5 + draw())


def wait_for_server(
    address: Address, timeout: float = 10.0, interval: float = 0.05
) -> bool:
    """Poll ``ping`` until the daemon answers or ``timeout`` elapses —
    how tests and scripts sequence themselves after ``repro serve &``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            event = request_one(address, {"verb": "ping"}, timeout=interval + 1.0)
            if event.get("event") == "pong":
                return True
        except (OSError, protocol.ProtocolError):
            pass
        time.sleep(interval)
    return False
