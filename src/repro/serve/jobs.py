"""The daemon's job table: admission, coalescing, lifecycle, fan-out.

A :class:`Job` is one admitted computation — a bound scenario plus the
engine/model modes it will run under, identified by the canonical
:func:`~repro.experiments.cache.request_key`. The :class:`JobTable`
admits requests through an
:class:`~repro.experiments.cache.InflightRegistry`: a submit whose key
matches a live (queued or running) job **attaches** to it instead of
creating a new one, which is the request-coalescing guarantee — K
identical concurrent submits execute the grid once and every client
receives the same payload bytes.

States move ``queued → running → done`` with two exits (``cancelled``,
``failed``); terminal states never transition again. Every state
change happens under the job's lock, so a cancel racing the executor's
``queued → running`` flip resolves deterministically to exactly one
winner.

Subscribers receive events through per-subscriber queues. A subscriber
that attaches late (a coalesced client joining mid-run) may miss early
``point`` progress events — those are advisory — but terminal events
are replayed on subscribe, so no client can ever hang on a finished
job.

Time is injected (``clock``) so the status/cancel protocol is unit-
testable against a fake clock; nothing in this module reads wall time
directly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Any, Callable, Mapping, Optional

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments.cache import InflightRegistry, request_key
from repro.experiments.registry import get_scenario
from repro.experiments.scenario import Scenario

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "Job",
    "JobRequest",
    "JobTable",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

TERMINAL_STATES = frozenset({DONE, CANCELLED, FAILED})


@dataclass(frozen=True)
class JobRequest:
    """One submit, as data: scenario name, overrides, seed, modes.

    ``reference_engine``/``reference_model`` of None mean "whatever mode
    the daemon process is in" — resolved once at admission so the job's
    request key is stable even if the daemon's modes were to change.
    """

    scenario: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    reference_engine: Optional[bool] = None
    reference_model: Optional[bool] = None

    def bind(self) -> Scenario:
        """Resolve + bind the scenario (raises KeyError/GridError for
        unknown names or bad override values — admission-time errors)."""
        return get_scenario(self.scenario).with_overrides(
            dict(self.overrides) or None, seed=self.seed
        )

    def modes(self) -> tuple[bool, bool]:
        ref = (engine.REFERENCE_MODE if self.reference_engine is None
               else self.reference_engine)
        mref = (modelmode.REFERENCE_MODE if self.reference_model is None
                else self.reference_model)
        return bool(ref), bool(mref)


class Job:
    """One admitted computation and its subscriber fan-out."""

    def __init__(
        self,
        job_id: str,
        request: JobRequest,
        scenario: Scenario,
        key: str,
        clock: Callable[[], float],
    ):
        self.id = job_id
        self.request = request
        self.scenario = scenario
        self.key = key
        self.reference_engine, self.reference_model = request.modes()
        self.state = QUEUED
        self.total = len(scenario.points())
        self.done = 0
        self.clients = 0
        self.sha256: Optional[str] = None
        self.payload: Optional[str] = None
        self.result = None  # the SweepResult, once done
        self.error: Optional[str] = None
        self.executed_points = 0
        self.cached_points = 0
        self.cache_hit = False
        self.created = clock()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self._clock = clock
        self._lock = threading.Lock()
        self._subs: list[SimpleQueue] = []
        self._cancel = threading.Event()
        # Abandonment tracking: a job whose last *streaming* client
        # disconnected mid-run (without an explicit cancel) holds a
        # lease that expires instead of leaking — see
        # ReproServer.abandon_timeout_s. Jobs submitted with detach
        # never subscribe, so they are exempt by construction.
        self._had_subscriber = False
        self._idle_since: Optional[float] = None

    # -- subscriber fan-out --------------------------------------------------
    def subscribe(self) -> SimpleQueue:
        """A queue this job's events will land on. Subscribing to a
        finished job immediately delivers the terminal event, so late
        (coalesced or detached-then-reattached) clients never block."""
        q: SimpleQueue = SimpleQueue()
        with self._lock:
            if self.state in TERMINAL_STATES:
                q.put(self._terminal_event_locked())
            else:
                self._subs.append(q)
                self._had_subscriber = True
                self._idle_since = None
        return q

    def unsubscribe(self, q: SimpleQueue) -> None:
        with self._lock:
            try:
                self._subs.remove(q)
            except ValueError:
                pass
            if (not self._subs and self._had_subscriber
                    and self.state not in TERMINAL_STATES
                    and self._idle_since is None):
                self._idle_since = self._clock()

    def abandoned_for(self, now: float) -> float:
        """Seconds this job has been running with every one of its
        streaming clients gone. 0.0 while any subscriber is attached,
        for detach-submitted jobs (which never subscribe), and for
        terminal jobs — the reaper only ever sees positive values for
        genuinely orphaned leases."""
        with self._lock:
            if self._idle_since is None or self.state in TERMINAL_STATES:
                return 0.0
            return now - self._idle_since

    def _publish_locked(self, event: dict[str, Any]) -> None:
        for q in self._subs:
            q.put(event)

    def _terminal_event_locked(self) -> dict[str, Any]:
        if self.state == DONE:
            return self._result_event_locked()
        if self.state == CANCELLED:
            return {"event": "cancelled", "job": self.id}
        return {"event": "error", "job": self.id,
                "message": self.error or "job failed"}

    def _result_event_locked(self) -> dict[str, Any]:
        return {
            "event": "result",
            "job": self.id,
            "scenario": self.scenario.name,
            "sha256": self.sha256,
            "payload": self.payload,
            "executed_points": self.executed_points,
            "cached_points": self.cached_points,
            "cache_hit": self.cache_hit,
            "elapsed_s": round((self.finished or 0) - (self.started or 0), 6),
        }

    # -- lifecycle -----------------------------------------------------------
    def attach(self) -> None:
        with self._lock:
            self.clients += 1

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def mark_running(self) -> bool:
        """queued → running; False if the job is already terminal (a
        cancel won the race), telling the executor to do nothing."""
        with self._lock:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            self.started = self._clock()
            return True

    def note_cached(self, cached: int) -> None:
        with self._lock:
            self.done += cached

    def publish_point(
        self, index: int, params: Mapping[str, Any], values: Mapping[str, float]
    ) -> None:
        with self._lock:
            self.done += 1
            self._publish_locked({
                "event": "point",
                "job": self.id,
                "index": index,
                "params": dict(params),
                "values": dict(values),
                "done": self.done,
                "total": self.total,
            })

    def cancel(self) -> str:
        """Request cancellation; returns the resulting state.

        A queued job (no executor has claimed it yet) dies on the spot;
        a running one gets the flag and the executor confirms with
        :meth:`finish_cancelled` — callers see ``"cancelling"`` until
        then. Terminal jobs are unaffected (idempotent)."""
        with self._lock:
            if self.state in TERMINAL_STATES:
                return self.state
            self._cancel.set()
            if self.state == QUEUED:
                self._finish_locked(CANCELLED)
                return CANCELLED
            return "cancelling"

    def finish_done(self, result, payload: str, sha256: str,
                    cache_hit: bool = False) -> None:
        with self._lock:
            if self.state in TERMINAL_STATES:
                return
            self.result = result
            self.payload = payload
            self.sha256 = sha256
            self.cache_hit = cache_hit
            self.executed_points = result.executed_points
            self.cached_points = result.cached_points
            self.done = self.total
            self._finish_locked(DONE)

    def finish_cancelled(self) -> None:
        with self._lock:
            if self.state not in TERMINAL_STATES:
                self._finish_locked(CANCELLED)

    def finish_failed(self, message: str) -> None:
        with self._lock:
            if self.state not in TERMINAL_STATES:
                self.error = message
                self._finish_locked(FAILED)

    def _finish_locked(self, state: str) -> None:
        self.state = state
        self.finished = self._clock()
        self._publish_locked(self._terminal_event_locked())
        self._subs.clear()  # every subscriber got the terminal event

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """One status row (non-canonical, display/protocol only)."""
        with self._lock:
            now = self._clock()
            row: dict[str, Any] = {
                "job": self.id,
                "scenario": self.scenario.name,
                "state": self.state,
                "done": self.done,
                "total": self.total,
                "clients": self.clients,
                "request_key": self.key[:16],
                "age_s": round(now - self.created, 3),
            }
            if self.started is not None:
                row["runtime_s"] = round(
                    (self.finished if self.finished is not None else now)
                    - self.started, 3)
            if self.sha256 is not None:
                row["sha256"] = self.sha256
            if self.error is not None:
                row["error"] = self.error
            return row


class JobTable:
    """Thread-safe admission + lookup, coalescing on the request key."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # insertion order == admission order
        self._inflight = InflightRegistry()
        self._seq = 0
        self.coalesced_submits = 0

    def admit(self, request: JobRequest) -> tuple[Job, bool]:
        """``(job, created)``: a fresh job the caller must execute, or a
        live one with an identical request key the caller attaches to.

        Raises ``KeyError``/``GridError`` for unresolvable requests —
        admission rejects what execution could never run.
        """
        sc = request.bind()
        ref, mref = request.modes()
        key = request_key(sc, ref, mref)

        def factory() -> Job:
            with self._lock:
                self._seq += 1
                job = Job(f"job-{self._seq:06d}", request, sc, key, self._clock)
                self._jobs[job.id] = job
                return job

        job, created = self._inflight.claim(key, factory)
        job.attach()
        if not created:
            with self._lock:
                self.coalesced_submits += 1
        return job, created

    def release(self, job: Job) -> None:
        """Drop a finished job from the in-flight registry (its table
        entry stays for status queries). Idempotent and stale-safe."""
        self._inflight.release(job.key, job)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def active(self) -> list[Job]:
        return [j for j in self.jobs() if j.state not in TERMINAL_STATES]

    def cancel(self, job_id: str) -> tuple[bool, str]:
        """``(ok, state)``; unknown ids are reported, not raised."""
        job = self.get(job_id)
        if job is None:
            return False, f"unknown job {job_id!r}"
        state = job.cancel()
        if state == CANCELLED:
            self.release(job)
        return True, state

    def rows(self) -> list[dict[str, Any]]:
        return [job.snapshot() for job in self.jobs()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
