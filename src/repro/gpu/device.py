"""Tesla-era GPU device model.

Rates are typical published figures for the NVIDIA Tesla C1060 (the GPU
the paper names alongside the Cell BE in §I): ~4 GB/s effective PCIe
x16 Gen2 per direction, AES-CTR around 1.4 GB/s device-side, tens of
microseconds per kernel launch, and a few hundred milliseconds to bring
up the context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.sim.pipes import Pipe
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["GPUSpec", "GPUDevice", "TESLA_C1060"]

GB = 1024**3


@dataclass(frozen=True)
class GPUSpec:
    """One GPU model's calibrated rates."""

    name: str
    pcie_bw: float
    """Host<->device staging bandwidth per direction (bytes/s)."""
    aes_bw: float
    """Device-side AES throughput (bytes/s)."""
    pi_rate: float
    """Monte-Carlo samples/s."""
    kernel_launch_s: float
    """Per-kernel-launch overhead."""
    context_init_s: float
    """One-time context/JIT initialization."""
    device_memory: int = 4 * GB


TESLA_C1060 = GPUSpec(
    name="Tesla-C1060",
    pcie_bw=4.0 * GB,
    aes_bw=1.4 * GB,
    pi_rate=8.0e8,
    kernel_launch_s=2.0e-5,
    context_init_s=0.25,
)


class GPUDevice:
    """A GPU attached to a host node.

    Structure mirrors :class:`repro.cell.processor.CellProcessor`: an
    execution slot (the device is a single command queue at this
    granularity) plus independent host→device and device→host staging
    channels.
    """

    def __init__(self, env: "Environment", device_id: int, spec: GPUSpec = TESLA_C1060):
        self.env = env
        self.device_id = device_id
        self.spec = spec
        self._exec = Resource(env, capacity=1)
        self.h2d = Pipe(env, spec.pcie_bw, name=f"gpu{device_id}/h2d")
        self.d2h = Pipe(env, spec.pcie_bw, name=f"gpu{device_id}/d2h")
        self.busy_s = 0.0

    def launch(self, compute_s: float) -> Generator:
        """Process: run one kernel of ``compute_s`` device time."""
        if compute_s < 0:
            raise ValueError("compute_s must be non-negative")
        with self._exec.request() as req:
            yield req
            yield self.env.pooled_timeout(self.spec.kernel_launch_s + compute_s)
        self.busy_s += compute_s

    def stage_in(self, nbytes: float) -> Generator:
        """Process: copy ``nbytes`` host → device."""
        yield from self.h2d.transfer(nbytes)

    def stage_out(self, nbytes: float) -> Generator:
        """Process: copy ``nbytes`` device → host."""
        yield from self.d2h.transfer(nbytes)
