"""GPU offload runtime: same contract as the Cell runtimes.

Records are staged over PCIe in large transfers (unlike the Cell's
16 KB-capped DMA, a GPU wants megabyte copies), processed by one device
kernel per record batch, and staged back. Timing model: staging and
compute pipeline across batches, so the steady-state rate is
``1 / (1/pcie + 1/aes)`` per direction-overlapped batch — comfortably
above the Hadoop delivery path, which is the whole point of the
extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.gpu.device import GPUDevice

if TYPE_CHECKING:  # pragma: no cover
    from repro.cell.runtime import OffloadResult as _OffloadResultT

from repro.cell.runtime import OffloadResult

__all__ = ["GPUOffloadRuntime"]


class GPUOffloadRuntime:
    """Drives one :class:`GPUDevice` with record-sized work items."""

    name = "gpu-offload"

    def __init__(self, device: GPUDevice, batch_bytes: int = 16 * 1024 * 1024):
        if batch_bytes <= 0:
            raise ValueError("batch_bytes must be positive")
        self.device = device
        self.env = device.env
        self.batch_bytes = batch_bytes
        self._started = False

    def _ensure_started(self) -> Generator:
        if not self._started:
            self._started = True
            if self.device.spec.context_init_s > 0:
                yield self.env.timeout(self.device.spec.context_init_s)
        return
        yield  # pragma: no cover - generator marker

    def offload_bytes(self, nbytes: float, _spe_bw_ignored: float = 0.0) -> Generator:
        """Process: stream a byte kernel through the device.

        Batches pipeline: while batch N computes, batch N+1 stages in
        and batch N−1 stages out (independent PCIe directions), so the
        elapsed time is governed by the slowest stage.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        t0 = self.env.now
        yield from self._ensure_started()
        if nbytes == 0:
            return OffloadResult(0.0, self.env.now - t0, 0, "analytic")
        spec = self.device.spec
        batches = max(1, int(np.ceil(nbytes / self.batch_bytes)))
        stage_s = self.batch_bytes / spec.pcie_bw
        compute_s = self.batch_bytes / spec.aes_bw + spec.kernel_launch_s
        period = max(stage_s, compute_s)
        # Fill (first stage-in) + steady periods + drain (last stage-out).
        total = stage_s + batches * period + stage_s
        # Adjust the tail batch short-fall analytically.
        tail = nbytes - (batches - 1) * self.batch_bytes
        total -= (self.batch_bytes - tail) / spec.aes_bw if compute_s >= stage_s else 0.0
        yield self.env.timeout(max(0.0, total))
        busy = nbytes / spec.aes_bw + batches * spec.kernel_launch_s
        self.device.busy_s += busy
        return OffloadResult(nbytes, self.env.now - t0, batches, "analytic", busy)

    def offload_samples(
        self, samples: float, rate_override: float = 0.0, lead_s: float = 0.0
    ) -> Generator:
        """Process: run the Monte-Carlo kernel on the device.

        ``lead_s`` is a pure leading delay folded in by the kernel
        bridge (task launch); the GPU device pipeline stays event-
        accurate, so it is paid as a plain delay up front.
        """
        if samples < 0:
            raise ValueError("samples must be non-negative")
        t0 = self.env.now
        if lead_s > 0:
            yield self.env.timeout(lead_s)
        yield from self._ensure_started()
        if samples == 0:
            return OffloadResult(0.0, self.env.now - t0, 0, "analytic")
        rate = rate_override or self.device.spec.pi_rate
        compute_s = samples / rate
        yield from self.device.launch(compute_s)
        # Seed in / counts out are negligible 16-byte transfers.
        yield from self.device.stage_out(16)
        return OffloadResult(samples, self.env.now - t0, 1, "event", compute_s)

    def steady_state_bw(self) -> float:
        """Plateau bytes/s of the pipelined staging+compute loop."""
        spec = self.device.spec
        stage_s = self.batch_bytes / spec.pcie_bw
        compute_s = self.batch_bytes / spec.aes_bw + spec.kernel_launch_s
        return self.batch_bytes / max(stage_s, compute_s)
