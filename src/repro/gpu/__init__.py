"""GPU accelerator model — the paper's extensibility claim, exercised.

"The system may be easily extended to take advantage of other existing
accelerators in the system, such as GPUs or new developments to come"
(§I). This package adds a 2008-era Tesla-like device behind the same
offload-runtime interface the Cell uses: a PCIe staging link (the analog
of the Cell's DMA path), a kernel-launch overhead (the analog of SPU
initialization), and calibrated AES/Monte-Carlo rates.

The extension benchmark shows the paper's conclusion is
accelerator-agnostic: a GPU that encrypts ~2x faster than the Cell still
ties with the Java mapper on the data-intensive job, because the Hadoop
delivery path is the bottleneck either way.
"""

from repro.gpu.device import GPUDevice, GPUSpec, TESLA_C1060
from repro.gpu.runtime import GPUOffloadRuntime

__all__ = ["GPUDevice", "GPUOffloadRuntime", "GPUSpec", "TESLA_C1060"]
