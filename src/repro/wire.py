"""Line-delimited JSON framing shared by every repro socket service.

Both network layers in this codebase — the ``repro serve`` daemon
(:mod:`repro.serve.protocol`) and the ``repro fleet``
coordinator/worker fabric (:mod:`repro.fabric.protocol`) — speak the
same trivially-debuggable frame shape: one JSON object per line,
UTF-8, newline-terminated. This module is the one definition of that
framing, so the two protocols cannot drift apart on encoding details
(float precision in particular: ``json.dumps`` serializes floats at
full ``repr`` precision, which is what lets values round-trip through
the wire bit-for-bit and keeps served/fleet payloads byte-identical to
offline sweeps).
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Mapping, Union

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "decode",
    "encode",
    "read_events",
    "recv_msg",
    "send_msg",
]

#: Upper bound on one frame (one line, terminator included). Reads are
#: bounded to this, so a corrupt or malicious peer streaming bytes with
#: no newline cannot balloon the receiver's memory — ``readline()``
#: without a limit buffers the whole flood. 8 MiB is orders of
#: magnitude above any real payload (full sweep results are tens of
#: KB) while still an instant, bounded read.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed frames or structurally invalid requests."""


def _read_bounded(stream) -> Union[bytes, str]:
    """One ``readline`` capped at the frame bound. Returns the raw line
    (empty at EOF); raises :class:`ProtocolError` when the peer sent
    more than :data:`MAX_FRAME_BYTES` without a newline."""
    line = stream.readline(MAX_FRAME_BYTES + 1)
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"oversized frame: peer sent more than {MAX_FRAME_BYTES} bytes "
            f"without a line terminator"
        )
    return line


def _has_terminator(line: Union[bytes, str]) -> bool:
    return line.endswith(b"\n" if isinstance(line, bytes) else "\n")


def encode(msg: Mapping[str, Any]) -> bytes:
    """One message as one compact JSON line (the only frame shape)."""
    return json.dumps(msg, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode(line: Union[bytes, str]) -> dict[str, Any]:
    """Parse one frame; anything but a JSON object is a protocol error."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def read_events(stream) -> Iterator[dict[str, Any]]:
    """Decode response lines from a binary file-like until EOF.

    Reads are bounded per frame (:data:`MAX_FRAME_BYTES`). A final line
    without a terminator is still decoded — event streams legitimately
    end at EOF — but an over-long line raises :class:`ProtocolError`.
    """
    while True:
        line = _read_bounded(stream)
        if not line:
            return
        if line.strip():
            yield decode(line)


def send_msg(stream, msg: Mapping[str, Any]) -> None:
    """Write one frame and flush it (a frame is only sent when flushed)."""
    stream.write(encode(msg))
    stream.flush()


def recv_msg(stream) -> dict[str, Any]:
    """Read exactly one frame; EOF mid-conversation is a protocol error
    (the peer hung up without a terminal message).

    The read is bounded (:data:`MAX_FRAME_BYTES`) and the frame must be
    newline-terminated: a line that ends at EOF instead is a *truncated*
    frame — the peer died mid-write — and is rejected rather than
    parsed, since a prefix of a JSON object can itself be valid JSON.
    """
    line = _read_bounded(stream)
    if not line:
        raise ProtocolError("connection closed by peer")
    if not _has_terminator(line):
        raise ProtocolError(
            "truncated frame: connection closed mid-line"
        )
    return decode(line)
