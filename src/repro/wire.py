"""Line-delimited JSON framing shared by every repro socket service.

Both network layers in this codebase — the ``repro serve`` daemon
(:mod:`repro.serve.protocol`) and the ``repro fleet``
coordinator/worker fabric (:mod:`repro.fabric.protocol`) — speak the
same trivially-debuggable frame shape: one JSON object per line,
UTF-8, newline-terminated. This module is the one definition of that
framing, so the two protocols cannot drift apart on encoding details
(float precision in particular: ``json.dumps`` serializes floats at
full ``repr`` precision, which is what lets values round-trip through
the wire bit-for-bit and keeps served/fleet payloads byte-identical to
offline sweeps).
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Mapping, Union

__all__ = ["ProtocolError", "decode", "encode", "read_events", "recv_msg", "send_msg"]


class ProtocolError(ValueError):
    """Malformed frames or structurally invalid requests."""


def encode(msg: Mapping[str, Any]) -> bytes:
    """One message as one compact JSON line (the only frame shape)."""
    return json.dumps(msg, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode(line: Union[bytes, str]) -> dict[str, Any]:
    """Parse one frame; anything but a JSON object is a protocol error."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        msg = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(msg).__name__}"
        )
    return msg


def read_events(stream) -> Iterator[dict[str, Any]]:
    """Decode response lines from a binary file-like until EOF."""
    for line in stream:
        if line.strip():
            yield decode(line)


def send_msg(stream, msg: Mapping[str, Any]) -> None:
    """Write one frame and flush it (a frame is only sent when flushed)."""
    stream.write(encode(msg))
    stream.flush()


def recv_msg(stream) -> dict[str, Any]:
    """Read exactly one frame; EOF mid-conversation is a protocol error
    (the peer hung up without a terminal message)."""
    line = stream.readline()
    if not line:
        raise ProtocolError("connection closed by peer")
    return decode(line)
