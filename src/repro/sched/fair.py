"""Weighted fair sharing across concurrent jobs.

Instead of draining jobs in arrival order, every slot goes to the
running job with the lowest ``live attempts / weight`` ratio — the
classic fair-scheduler deficit rule, at task granularity. With equal
weights an N-job workload converges to ~1/N of the cluster each; with
weights it converges to the weighted shares (the bound the property
tests assert). Within the chosen job, picks stay locality-first and
speculation keeps the stock straggler criteria.

``fair`` itself never kills anything: a job that grabbed the whole
cluster before a competitor arrived keeps its slots until tasks finish
naturally, so under long map tasks the share bounds only hold
*eventually*. ``fair_preempt`` closes that gap — after granting free
slots it compares each job's live attempts against its weighted share
of the map-slot pool and, when a starved job has pending work it
cannot place, kills a bounded number of the most-over-share job's
youngest map attempts per exchange (least work lost, Fair Scheduler
style). The JobTracker requeues each preempted task exactly once.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Union

from repro.hadoop.job import TaskKind
from repro.sched.base import (
    AssignmentBatch,
    PreemptChoice,
    Scheduler,
    TaskChoice,
    pick_pending_map,
    pick_pending_reduce,
    pick_speculative_map,
    register_scheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.sched.view import ClusterView, JobView

__all__ = ["FairScheduler", "PreemptiveFairScheduler"]


@register_scheduler
class FairScheduler(Scheduler):
    """Slots go to the job furthest below its weighted fair share."""

    name = "fair"

    #: Preemption is off in the base policy (pre-existing behaviour,
    #: byte-identical); ``fair_preempt`` flips it on. Class attributes so
    #: subclasses and tests re-tune without touching ``__init__``.
    preemption: bool = False
    #: At most this many kills per heartbeat exchange — reclamation is
    #: deliberately gradual so one arrival cannot flush a whole wave of
    #: nearly-finished work.
    max_preempts_per_exchange: int = 1
    #: A job must stay starved this long (sim-seconds, continuously)
    #: before its deficit triggers kills. Transient starvation — a map
    #: finished elsewhere and the freed slot's heartbeat is still in
    #: flight — resolves by granting within a heartbeat period; only
    #: starvation that outlives the grace window means the cluster is
    #: genuinely packed and work must be reclaimed.
    preemption_grace_s: float = 5.0

    def assign(
        self, view: "ClusterView", hb: "Heartbeat"
    ) -> list[Union[TaskChoice, PreemptChoice]]:
        batch = AssignmentBatch()
        jobs = view.jobs()
        now = view.now
        for _ in range(hb.free_map_slots):
            if not self._grant_map_slot(jobs, hb.tracker_id, now, batch):
                break
        for _ in range(hb.free_reduce_slots):
            if not self._grant_reduce_slot(jobs, batch):
                break
        if self.preemption and len(jobs) > 1:
            preempts = self._preempt_for_fairness(view, jobs, batch)
            if preempts:
                return batch.choices + preempts
        return batch.choices

    # -- preemption: reclaim slots when grants alone cannot converge ---------
    def _preempt_for_fairness(
        self,
        view: "ClusterView",
        jobs: list["JobView"],
        batch: AssignmentBatch,
    ) -> list[PreemptChoice]:
        """Bounded kill list restoring weighted shares under contention.

        A job is *starved* when it has pending maps it could not place
        and runs below ``floor(share)``; a job is a *victim* while it
        runs above ``floor(share)``. Kills fire only while some job is
        starved, and a victim is never taken below its own floor — so a
        kill can never create a new starved job and the policy is
        quiescent once every claimant sits at or above its floor (no
        oscillation). The floor (not ceil) bound matters on small
        clusters: with many light jobs ``ceil(share)`` rounds every
        sliver of entitlement up to a whole slot and no victim ever
        exists, deadlocking a heavy late arrival out of its share.
        Victims lose their youngest map attempts first (least completed
        work thrown away).
        """
        total_slots = view.total_map_slots
        total_weight = sum(j.weight for j in jobs)
        if total_slots <= 0 or total_weight <= 0:
            return []
        shares = {
            j.job_id: total_slots * j.weight / total_weight for j in jobs
        }
        starved_since = getattr(self, "_starved_since", None)
        if starved_since is None:
            starved_since = self._starved_since = {}
        now = view.now
        live = set()
        deficit = 0
        for job in jobs:
            live.add(job.job_id)
            want = math.floor(shares[job.job_id]) - batch.running_count(job)
            if want > 0 and job.pending_maps:
                since = starved_since.setdefault(job.job_id, now)
                if now - since >= self.preemption_grace_s:
                    deficit += min(want, len(job.pending_maps))
            else:
                starved_since.pop(job.job_id, None)
        for job_id in [j for j in starved_since if j not in live]:
            del starved_since[job_id]
        if deficit <= 0:
            return []
        budget = min(self.max_preempts_per_exchange, deficit)
        preempts: list[PreemptChoice] = []
        # Most-over-share victims first: smallest (share - running) gap.
        for job in sorted(
            jobs,
            key=lambda j: (shares[j.job_id] - batch.running_count(j), j.job_id),
        ):
            if budget <= 0:
                break
            excess = batch.running_count(job) - math.floor(shares[job.job_id])
            if excess <= 0:
                continue
            taken = batch.taken_maps(job.job_id)
            candidates = []
            for task_id, attempts in job.running_map_attempts():
                if task_id in taken:
                    continue  # this batch just speculated it; leave it be
                for a in attempts:
                    candidates.append((task_id, a))
            # Youngest attempt first; ties broken toward later tasks.
            candidates.sort(
                key=lambda c: (-c[1].start_time, -c[0], -c[1].attempt)
            )
            for task_id, a in candidates[: min(budget, excess)]:
                preempts.append(
                    PreemptChoice(
                        job.job_id, TaskKind.MAP, task_id, a.tracker_id, a.attempt
                    )
                )
                budget -= 1
        if preempts:
            # Restart every starved job's grace clock: the kills just
            # issued free slots that arrive via the victims' next
            # heartbeats, so the starved jobs will look unchanged for
            # another exchange or two. Without the reset that lag reads
            # as continued starvation and the policy over-kills well past
            # the actual deficit.
            for job_id in starved_since:
                starved_since[job_id] = now
            self._bump_counter("preempts_issued", len(preempts))
        return preempts

    # -- one slot, one deficit-ordered grant --------------------------------
    @staticmethod
    def _deficit(
        job: "JobView", batch: AssignmentBatch
    ) -> tuple[float, float, int]:
        """Sort key: load per unit weight, heaviest first on ties, then
        submission order. The weight tiebreak is what makes preemption
        coherent: a slot reclaimed for a starved heavy job must not be
        re-granted to the light victim it was just taken from (both sit
        at ratio 0 after the kill) — without it reclamation livelocks.
        With uniform weights the tiebreak is inert, so the base policy's
        decisions are unchanged.
        """
        return (batch.running_count(job) / job.weight, -job.weight, job.job_id)

    def _grant_map_slot(
        self,
        jobs: list["JobView"],
        tracker_id: int,
        now: float,
        batch: AssignmentBatch,
    ) -> bool:
        for job in sorted(jobs, key=lambda j: self._deficit(j, batch)):
            task_id: Optional[int] = pick_pending_map(job, tracker_id, batch)
            speculative = False
            if task_id is None and job.speculative:
                task_id = pick_speculative_map(job, tracker_id, now, batch)
                speculative = True
            if task_id is not None:
                batch.add(
                    TaskChoice(job.job_id, TaskKind.MAP, task_id, speculative=speculative)
                )
                return True
        return False

    def _grant_reduce_slot(
        self, jobs: list["JobView"], batch: AssignmentBatch
    ) -> bool:
        for job in sorted(jobs, key=lambda j: self._deficit(j, batch)):
            task_id = pick_pending_reduce(job, batch)
            if task_id is not None:
                batch.add(TaskChoice(job.job_id, TaskKind.REDUCE, task_id))
                return True
        return False


@register_scheduler
class PreemptiveFairScheduler(FairScheduler):
    """Fair sharing that reclaims slots under hard contention."""

    name = "fair_preempt"
    preemption = True

    def __init__(self, max_preempts_per_exchange: Optional[int] = None):
        if max_preempts_per_exchange is not None:
            self.max_preempts_per_exchange = max(
                1, int(max_preempts_per_exchange)
            )
