"""Weighted fair sharing across concurrent jobs.

Instead of draining jobs in arrival order, every slot goes to the
running job with the lowest ``live attempts / weight`` ratio — the
classic fair-scheduler deficit rule, at task granularity. With equal
weights an N-job workload converges to ~1/N of the cluster each; with
weights it converges to the weighted shares (the bound the property
tests assert). Within the chosen job, picks stay locality-first and
speculation keeps the stock straggler criteria.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hadoop.job import TaskKind
from repro.sched.base import (
    AssignmentBatch,
    Scheduler,
    TaskChoice,
    pick_pending_map,
    pick_pending_reduce,
    pick_speculative_map,
    register_scheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.sched.view import ClusterView, JobView

__all__ = ["FairScheduler"]


@register_scheduler
class FairScheduler(Scheduler):
    """Slots go to the job furthest below its weighted fair share."""

    name = "fair"

    def assign(self, view: "ClusterView", hb: "Heartbeat") -> list[TaskChoice]:
        batch = AssignmentBatch()
        jobs = view.jobs()
        now = view.now
        for _ in range(hb.free_map_slots):
            if not self._grant_map_slot(jobs, hb.tracker_id, now, batch):
                break
        for _ in range(hb.free_reduce_slots):
            if not self._grant_reduce_slot(jobs, batch):
                break
        return batch.choices

    # -- one slot, one deficit-ordered grant --------------------------------
    @staticmethod
    def _deficit(job: "JobView", batch: AssignmentBatch) -> tuple[float, int]:
        """Sort key: load per unit weight, then submission order."""
        return (batch.running_count(job) / job.weight, job.job_id)

    def _grant_map_slot(
        self,
        jobs: list["JobView"],
        tracker_id: int,
        now: float,
        batch: AssignmentBatch,
    ) -> bool:
        for job in sorted(jobs, key=lambda j: self._deficit(j, batch)):
            task_id: Optional[int] = pick_pending_map(job, tracker_id, batch)
            speculative = False
            if task_id is None and job.speculative:
                task_id = pick_speculative_map(job, tracker_id, now, batch)
                speculative = True
            if task_id is not None:
                batch.add(
                    TaskChoice(job.job_id, TaskKind.MAP, task_id, speculative=speculative)
                )
                return True
        return False

    def _grant_reduce_slot(
        self, jobs: list["JobView"], batch: AssignmentBatch
    ) -> bool:
        for job in sorted(jobs, key=lambda j: self._deficit(j, batch)):
            task_id = pick_pending_reduce(job, batch)
            if task_id is not None:
                batch.add(TaskChoice(job.job_id, TaskKind.REDUCE, task_id))
                return True
        return False
