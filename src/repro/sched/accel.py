"""Accelerator-affinity placement — the paper's implicit policy, explicit.

The paper's headline result is that *where* a task lands on a
heterogeneous CPU/Cell/GPU cluster decides its kernel rate: a Cell-
targeted mapper on a blade without Cell sockets falls back to the PPE
Java kernel at ~1/40th the bandwidth (or fails outright without a
fallback). Stock FIFO is blind to this. This policy scores every
(job, tracker) pair by the kernel rate the job's tasks would actually
achieve on that blade — straight from
:class:`~repro.perf.calibration.CalibrationProfile` — and prefers jobs
that run at full speed *here*, delaying mismatched placements boundedly
in the hope a matching slot frees up (the same patience mechanism as
delay scheduling, applied to hardware affinity instead of data
locality).

On the paper's homogeneous all-Cell testbed every match ratio is 1.0
and the policy degenerates to FIFO exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hadoop.job import TaskKind
from repro.perf.calibration import Backend
from repro.sched.base import (
    AssignmentBatch,
    Scheduler,
    TaskChoice,
    fill_job_reduce_slots,
    pick_pending_map,
    pick_speculative_map,
    register_scheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.perf.calibration import CalibrationProfile
    from repro.sched.view import ClusterView, JobView, TrackerView

__all__ = ["AcceleratorAwareScheduler"]

_CELL_BACKENDS = (Backend.CELL_SPE_DIRECT, Backend.CELL_SPE_MAPREDUCE)

#: Stand-in for "infinitely fast" (the EMPTY backend) that keeps match
#: ratios finite and comparable.
_RATE_CAP = 1e30


def effective_backend(job: "JobView", tracker: "TrackerView") -> Optional[Backend]:
    """The kernel a task of ``job`` would actually run on ``tracker``.

    Mirrors the runtime fallback rule in ``hadoop.tasks.run_map_task``:
    an accelerator-targeted task on a blade without that accelerator
    drops to ``fallback_backend`` — or cannot run (``None``).
    """
    backend = job.backend
    missing = (backend in _CELL_BACKENDS and not tracker.has_cells) or (
        backend is Backend.GPU_TESLA and not tracker.has_gpus
    )
    if missing:
        return job.fallback_backend
    return backend


def slot_rate(
    calib: "CalibrationProfile", job: "JobView", tracker: "TrackerView"
) -> float:
    """Task rate (samples/s or bytes/s) of one ``job`` task on ``tracker``.

    0.0 means the task cannot run there at all (missing accelerator, no
    fallback). Data-driven workloads are clamped at the RecordReader
    delivery bandwidth — the paper's central finding is that the
    DataNode→TaskTracker path, not the kernel, bounds them, so a
    placement policy that held an AES mapper back waiting for a Cell
    blade would be waiting for speed the data path cannot deliver.
    """
    backend = effective_backend(job, tracker)
    if backend is None:
        return 0.0
    if job.workload == "pi":
        rate = calib.pi_backend_rate(backend)
    else:
        rate = min(calib.aes_backend_bw(backend), calib.recordreader_stream_bw)
    return min(rate, _RATE_CAP) / tracker.speed_factor


@register_scheduler
class AcceleratorAwareScheduler(Scheduler):
    """Match task kernel affinity to Cell/GPU/CPU slot speeds.

    Parameters
    ----------
    patience: heartbeats a job may decline slower-than-best slots before
        accepting one anyway (progress guarantee). ``None`` (default)
        adapts to the cluster: two full heartbeat rounds.
    """

    name = "accel"

    def __init__(self, patience: Optional[int] = None):
        self.patience = patience
        self._waits: dict[int, int] = {}
        self._best_sig: Optional[tuple] = None
        self._best_rates: dict[tuple, float] = {}

    def assign(self, view: "ClusterView", hb: "Heartbeat") -> list[TaskChoice]:
        batch = AssignmentBatch()
        now = view.now
        jobs = view.jobs()
        live = {j.job_id for j in jobs}
        self._waits = {jid: n for jid, n in self._waits.items() if jid in live}
        limit = self.patience
        if limit is None:
            limit = 2 * max(1, view.tracker_count)
        calib = view.calib
        tracker = view.tracker(hb.tracker_id)

        # Best-anywhere rates depend only on job config and the tracker
        # set, so memoize them until membership/capabilities change —
        # recomputing per heartbeat would be O(jobs x trackers) of
        # identical work on the protocol's hot path. A live ClusterView
        # exposes its membership epoch as an O(1) memo key; synthetic
        # test views fall back to the capability-signature tuple.
        epoch = getattr(view, "membership_epoch", None)
        if epoch is not None:
            sig = epoch
            trackers: Optional[list["TrackerView"]] = None
        else:
            trackers = view.trackers()
            sig = tuple(
                (t.tracker_id, t.has_cells, t.has_gpus, t.speed_factor)
                for t in trackers
            )
        if sig != self._best_sig:
            self._best_sig = sig
            self._best_rates = {}

        # Score each job's fit on this blade vs. the best blade anywhere.
        scored: list[tuple[float, "JobView", float]] = []
        for job in jobs:
            here = slot_rate(calib, job, tracker)
            cfg = (job.backend, job.fallback_backend, job.workload)
            best = self._best_rates.get(cfg)
            if best is None:
                if trackers is None:
                    trackers = view.trackers()  # only on a memo miss
                best = self._best_rates[cfg] = max(
                    (slot_rate(calib, job, t) for t in trackers), default=0.0
                )
            match = here / best if best > 0.0 else 1.0
            scored.append((match, job, best))
        # Best-matched jobs first; submission order breaks ties.
        scored.sort(key=lambda entry: (-entry[0], entry[1].job_id))

        free_maps = hb.free_map_slots
        declined: set[int] = set()
        for match, job, best in scored:
            if free_maps <= 0:
                break
            if match <= 0.0 and best > 0.0:
                # Cannot run here but can elsewhere: never place it here.
                continue
            task_id = pick_pending_map(job, hb.tracker_id, batch)
            if match < 1.0 and task_id is not None and self._waits.get(job.job_id, 0) < limit:
                # A better blade exists: boundedly hold out for it.
                declined.add(job.job_id)
                continue
            speculative = False
            while free_maps > 0:
                if task_id is None and job.speculative:
                    task_id = pick_speculative_map(job, hb.tracker_id, now, batch)
                    speculative = True
                if task_id is None:
                    break
                batch.add(
                    TaskChoice(job.job_id, TaskKind.MAP, task_id, speculative=speculative)
                )
                if match >= 1.0:
                    # Exhausted patience stays exhausted until the job
                    # lands a *matched* slot again — resetting on a
                    # forced placement would re-arm the full wait after
                    # every reluctant launch and starve the job into a
                    # trickle.
                    self._waits[job.job_id] = 0
                free_maps -= 1
                task_id = pick_pending_map(job, hb.tracker_id, batch)
                speculative = False

        # Reduces carry no kernel affinity: serve them in job order.
        free_reduces = hb.free_reduce_slots
        for job in jobs:
            if free_reduces <= 0:
                break
            free_reduces -= fill_job_reduce_slots(job, batch, free_reduces)

        for jid in declined:
            self._waits[jid] = self._waits.get(jid, 0) + 1
        if declined:
            self._bump_counter("delay_waits", len(declined))
        return batch.choices
