"""Pluggable task-placement policies for the simulated JobTracker.

The scheduling subsystem separates *decision* from *mechanism*: the
JobTracker owns queues, attempt bookkeeping and the heartbeat wire
protocol; a :class:`~repro.sched.base.Scheduler` is a pure decision
layer that, per heartbeat, turns a read-only
:class:`~repro.sched.view.ClusterView` into the batch of
:class:`~repro.sched.base.TaskChoice` launches for that exchange.

Builtin policies (``repro schedulers`` lists them):

- ``fifo`` — :class:`~repro.sched.fifo.FifoScheduler`: stock Hadoop
  0.19 submission order, extracted byte-identically from the old
  inline JobTracker logic (the policy behind every paper figure).
- ``fair`` — :class:`~repro.sched.fair.FairScheduler`: weighted fair
  sharing across concurrent jobs.
- ``fair_preempt`` — :class:`~repro.sched.fair.PreemptiveFairScheduler`:
  fair sharing that additionally kills-and-requeues over-share attempts
  (bounded per exchange) so share bounds hold under hard contention.
- ``locality`` — :class:`~repro.sched.locality.LocalityAwareScheduler`:
  delay scheduling on HDFS block locality.
- ``locality_reduce`` —
  :class:`~repro.sched.locality.ShuffleAwareLocalityScheduler`: delay
  scheduling plus shuffle-locality reduce placement (reduces prefer the
  node holding the most map output).
- ``accel`` — :class:`~repro.sched.accel.AcceleratorAwareScheduler`:
  kernel-affinity placement against Cell/GPU/CPU slot speeds (the
  paper's implicit policy, made explicit).

Select a policy with ``SimulatedCluster(..., scheduler="fair")``,
``JobConf(scheduler="fair")``, the ``--scheduler`` CLI flag, or the
``sched_compare``/``multijob`` scenarios. See ``docs/SCHEDULING.md``
for the policy contract and how to add one.
"""

from repro.sched.accel import AcceleratorAwareScheduler
from repro.sched.base import (
    AssignmentBatch,
    PreemptChoice,
    Scheduler,
    SchedulerError,
    TaskChoice,
    register_scheduler,
    resolve_scheduler,
    scheduler_names,
)
from repro.sched.fair import FairScheduler, PreemptiveFairScheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.locality import (
    LocalityAwareScheduler,
    ShuffleAwareLocalityScheduler,
)
from repro.sched.view import (
    AttemptView,
    ClusterView,
    JobView,
    SyntheticJob,
    SyntheticView,
    TrackerView,
)

__all__ = [
    "AcceleratorAwareScheduler",
    "AssignmentBatch",
    "AttemptView",
    "ClusterView",
    "FairScheduler",
    "FifoScheduler",
    "JobView",
    "LocalityAwareScheduler",
    "PreemptChoice",
    "PreemptiveFairScheduler",
    "Scheduler",
    "SchedulerError",
    "ShuffleAwareLocalityScheduler",
    "SyntheticJob",
    "SyntheticView",
    "TaskChoice",
    "TrackerView",
    "register_scheduler",
    "resolve_scheduler",
    "scheduler_names",
]
