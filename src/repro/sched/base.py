"""The scheduling-policy contract.

A :class:`Scheduler` is a pure decision layer: per heartbeat the
JobTracker hands it a read-only :class:`~repro.sched.view.ClusterView`
plus the :class:`~repro.hadoop.messages.Heartbeat` (both plain data) and
gets back the *entire batch* of :class:`TaskChoice` decisions for that
exchange — one ``assign`` call per heartbeat, however many slots the
tracker reported free. The JobTracker alone mutates state (queue
removal, counters, attempt records, the wire ``Assignment``s); a policy
that tries to hand out a task that is not actually available is a bug
and surfaces as :class:`SchedulerError` at apply time.

Policies may keep *internal* state across calls (delay-scheduling skip
counters, affinity patience) — the purity requirement is only that they
never touch engine objects and never mutate anything reachable through
the view. That is what makes every policy unit-testable against a
:class:`~repro.sched.view.SyntheticView` with no simulation running.

The shared pick helpers in this module reproduce, decision for
decision, the FIFO + locality + straggler-speculation logic that used to
live inline in ``JobTracker._handle_heartbeat`` — the byte-identity of
:class:`~repro.sched.fifo.FifoScheduler` with the pre-refactor engine
(golden tests, both engine modes) rests on them.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Optional, Sequence, Union

from repro.hadoop.job import TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.sched.view import ClusterView, JobView

__all__ = [
    "AssignmentBatch",
    "PreemptChoice",
    "Scheduler",
    "SchedulerError",
    "TaskChoice",
    "pick_pending_map",
    "pick_pending_reduce",
    "pick_speculative_map",
    "register_scheduler",
    "resolve_scheduler",
    "scheduler_names",
]


class SchedulerError(RuntimeError):
    """A policy returned a decision the cluster state cannot honor."""


@dataclass(frozen=True)
class TaskChoice:
    """One policy decision: run this task on the heartbeating tracker.

    ``speculative`` marks a duplicate attempt of an already-running task
    (straggler mitigation) rather than a pick from the pending queue.
    """

    job_id: int
    kind: TaskKind
    task_id: int
    speculative: bool = False


@dataclass(frozen=True)
class PreemptChoice:
    """One policy decision: kill this running attempt and requeue its task.

    Unlike :class:`TaskChoice`, a preemption names a *specific attempt*
    (tracker + attempt number), because a speculated task can be running
    in two places and the policy chooses which copy dies. The JobTracker
    issues the kill on the victim tracker's next exchange, retires the
    attempt's accounting immediately, and re-enqueues the task exactly
    once — only when no other attempt of it remains live.
    """

    job_id: int
    kind: TaskKind
    task_id: int
    tracker_id: int
    attempt: int


class AssignmentBatch:
    """In-batch bookkeeping while a policy builds one heartbeat's choices.

    The JobTracker applies choices only after ``assign`` returns, so the
    view does not reflect earlier picks from the same batch. This tracker
    keeps the picks self-consistent: a task chosen from the queue cannot
    be chosen again, a task speculated once cannot be speculated twice,
    and fair-share load counts include in-batch launches.
    """

    __slots__ = ("choices", "taken", "extra_running", "_taken_maps", "_taken_reduces")

    #: Shared empty set the per-job accessors return for untouched jobs,
    #: so the (overwhelmingly common) no-pick-yet case allocates nothing.
    _EMPTY: ClassVar[frozenset] = frozenset()

    def __init__(self) -> None:
        self.choices: list[TaskChoice] = []
        self.taken: set[tuple[int, TaskKind, int]] = set()
        self.extra_running: dict[int, int] = {}
        # Per-(job, kind) plain-int mirrors of ``taken``: the pick loops
        # probe these instead of building a (jid, kind, tid) tuple and
        # hashing a TaskKind per pending task.
        self._taken_maps: dict[int, set[int]] = {}
        self._taken_reduces: dict[int, set[int]] = {}

    def add(self, choice: TaskChoice) -> TaskChoice:
        self.choices.append(choice)
        self.taken.add((choice.job_id, choice.kind, choice.task_id))
        by_job = self._taken_maps if choice.kind is TaskKind.MAP else self._taken_reduces
        ids = by_job.get(choice.job_id)
        if ids is None:
            ids = by_job[choice.job_id] = set()
        ids.add(choice.task_id)
        self.extra_running[choice.job_id] = self.extra_running.get(choice.job_id, 0) + 1
        return choice

    def taken_maps(self, job_id: int):
        """Map task ids already picked for ``job_id`` in this batch."""
        return self._taken_maps.get(job_id) or self._EMPTY

    def taken_reduces(self, job_id: int):
        """Reduce task ids already picked for ``job_id`` in this batch."""
        return self._taken_reduces.get(job_id) or self._EMPTY

    def running_count(self, job: "JobView") -> int:
        """The job's live attempts including this batch's picks."""
        return job.running_attempt_count + self.extra_running.get(job.job_id, 0)


# --------------------------------------------------------------------------- #
# Shared decision primitives (the extracted JobTracker logic)                  #
# --------------------------------------------------------------------------- #


def pick_pending_map(
    job: "JobView",
    tracker_id: int,
    batch: AssignmentBatch,
    pending: Optional[Sequence[int]] = None,
) -> Optional[int]:
    """Locality-first FIFO pick among the job's untaken pending maps.

    Exactly the pre-refactor rule: first a split whose preferred nodes
    include this tracker's blade, otherwise the head of the queue.
    ``pending`` lets a policy reuse one snapshot of the queue across a
    batch instead of re-copying it per slot.
    """
    if pending is None:
        pending = job.pending_maps
    taken = batch.taken_maps(job.job_id)
    if not job.has_locality:
        # No map task has a split, so the locality probe can never hit:
        # the answer is always the first untaken pending id.
        for task_id in pending:
            if task_id not in taken:
                return task_id
        return None
    if job.pending_maps_sorted and pending is job.pending_maps:
        # Ascending queue: first-in-queue-order == smallest id, so the
        # locality probe can walk this tracker's few candidates instead
        # of the whole queue (O(replication) vs O(pending)).
        candidates = job.local_candidates.get(tracker_id)
        if candidates:
            pending_set = job.pending_map_set
            for task_id in candidates:
                if task_id in pending_set and task_id not in taken:
                    return task_id
        for task_id in pending:
            if task_id not in taken:
                return task_id
        return None
    lookup = job.preferred_lookup
    head: Optional[int] = None
    for task_id in pending:
        if task_id in taken:
            continue
        if head is None:
            head = task_id
        preferred = lookup.get(task_id)
        if preferred and tracker_id in preferred:
            return task_id
    return head


def pick_speculative_map(
    job: "JobView",
    tracker_id: int,
    now: float,
    batch: AssignmentBatch,
) -> Optional[int]:
    """Duplicate the longest-running map that looks like a straggler.

    The pre-refactor criteria, verbatim: only single-attempt running
    maps, never onto the node already running it, only once elapsed time
    exceeds 1.5x the mean duration of completed maps.
    """
    done = job.done_map_durations()
    if not done:
        return None
    mean = sum(done) / len(done)
    taken = batch.taken_maps(job.job_id)
    best_id: Optional[int] = None
    best_elapsed = 0.0
    for task_id, attempts in job.running_map_attempts():
        if task_id in taken:
            continue  # already picked (or duplicated) in this batch
        if len(attempts) != 1:
            continue  # already duplicated (or lost)
        if attempts[0].tracker_id == tracker_id:
            continue  # don't duplicate onto the same node
        elapsed = now - attempts[0].start_time
        if elapsed > 1.5 * mean and elapsed > best_elapsed and not math.isnan(mean):
            best_id, best_elapsed = task_id, elapsed
    return best_id


def pick_pending_reduce(
    job: "JobView",
    batch: AssignmentBatch,
) -> Optional[int]:
    """Head-of-queue reduce pick, gated on the map phase finishing."""
    if not job.maps_all_done:
        return None
    taken = batch.taken_reduces(job.job_id)
    for task_id in job.pending_reduces:
        if task_id not in taken:
            return task_id
    return None


def fill_job_map_slots(
    job: "JobView",
    tracker_id: int,
    now: float,
    batch: AssignmentBatch,
    free_maps: int,
) -> int:
    """Feed one job map work until it runs dry or the slots do.

    The per-job inner loop every queue-ordering policy shares: pending
    picks first (locality-aware), then — only with an empty queue and
    speculation enabled — straggler duplicates. Returns the number of
    slots consumed.
    """
    used = 0
    pending = job.pending_maps
    jid = job.job_id
    while used < free_maps:
        task_id = pick_pending_map(job, tracker_id, batch, pending=pending)
        speculative = False
        if task_id is None and job.speculative:
            task_id = pick_speculative_map(job, tracker_id, now, batch)
            speculative = True
        if task_id is None:
            break
        batch.add(TaskChoice(jid, TaskKind.MAP, task_id, speculative=speculative))
        used += 1
    return used


def fill_job_reduce_slots(
    job: "JobView",
    batch: AssignmentBatch,
    free_reduces: int,
) -> int:
    """Feed one job reduce work until it runs dry or the slots do."""
    used = 0
    while used < free_reduces:
        task_id = pick_pending_reduce(job, batch)
        if task_id is None:
            break
        batch.add(TaskChoice(job.job_id, TaskKind.REDUCE, task_id))
        used += 1
    return used


# --------------------------------------------------------------------------- #
# The policy interface + registry                                              #
# --------------------------------------------------------------------------- #


class Scheduler(ABC):
    """Base class for task-placement policies.

    Subclasses set ``name`` (the registry key surfaced through
    ``JobConf.scheduler``, ``--scheduler`` and the scenario grids) and
    implement :meth:`assign`.
    """

    name: ClassVar[str] = ""

    @abstractmethod
    def assign(self, view: "ClusterView", hb: "Heartbeat") -> list[TaskChoice]:
        """Decide every task launched in reply to one heartbeat.

        Must return at most ``hb.free_map_slots`` map choices and
        ``hb.free_reduce_slots`` reduce choices; each choice must be
        honorable (pending, or a valid speculation target). The
        JobTracker validates and raises :class:`SchedulerError` on
        violations.

        A preempting policy may interleave :class:`PreemptChoice`
        entries in the returned list; each must name a live attempt
        (visible through ``JobView.running_map_attempts``) or the
        JobTracker raises :class:`SchedulerError` at apply time.
        Preemptions do not count against the slot budget — they *free*
        slots on another tracker.
        """

    def on_membership_change(
        self,
        view: "ClusterView",
        joined: Sequence[int] = (),
        lost: Sequence[int] = (),
    ) -> None:
        """Membership-change notification (elastic clusters, node loss).

        Called by the JobTracker after a tracker registers at runtime or
        is declared lost, *after* ``_membership_epoch`` was bumped — so
        ``view`` already reflects the new membership. Policies use this
        to drop state keyed on departed trackers or to re-arm
        locality/affinity patience; the default is a no-op. Must not
        mutate anything reachable through the view.
        """

    def describe(self) -> str:
        """One-line human description (CLI listing)."""
        doc = (self.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.name

    # -- decision counters ---------------------------------------------------
    def _bump_counter(self, key: str, amount: int = 1) -> None:
        """Tally a policy-internal decision (e.g. a delay-scheduling
        wait). Surfaced next to the JobTracker's mechanism counters via
        :meth:`JobTracker.decision_counters`."""
        counters = getattr(self, "_counters", None)
        if counters is None:
            counters = self._counters = {}
        counters[key] = counters.get(key, 0) + amount

    def decision_counters(self) -> dict[str, int]:
        """Policy-internal decision tallies (empty unless the policy
        counts something)."""
        return dict(getattr(self, "_counters", {}) or {})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, type[Scheduler]] = {}


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator: expose a policy under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"scheduler {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def scheduler_names() -> list[str]:
    """Public policy names (underscore-prefixed registrations — test
    doubles, experiments — stay resolvable but unlisted)."""
    _ensure_builtins()
    return sorted(n for n in _REGISTRY if not n.startswith("_"))


def resolve_scheduler(
    spec: Union[None, str, Scheduler, type[Scheduler]],
) -> Scheduler:
    """Turn a policy spec into a live policy instance.

    ``None`` means the default (FIFO — the paper's Hadoop 0.19
    behaviour); a string resolves through the registry; an instance
    passes through; a class is instantiated.
    """
    _ensure_builtins()
    if spec is None:
        spec = "fifo"
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, type) and issubclass(spec, Scheduler):
        return spec()
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise KeyError(
                f"unknown scheduler {spec!r}; known: {', '.join(scheduler_names())}"
            ) from None
    raise TypeError(f"cannot resolve scheduler from {spec!r}")


def _ensure_builtins() -> None:
    # Deferred so policy modules can `import repro.sched.base` to
    # self-register without a circular import.
    from repro.sched import accel, fair, fifo, locality  # noqa: F401
