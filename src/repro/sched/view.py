"""Read-only cluster snapshots handed to scheduling policies.

A :class:`ClusterView` is the *only* window a
:class:`~repro.sched.base.Scheduler` gets onto the running cluster: jobs
in submission order with their pending queues and live attempts, tracker
hardware capabilities, and the calibration profile. Everything it
exposes is plain data — ints, floats, strings, tuples, frozen dataclass
records — never an engine object (no ``Environment``, no ``Store``, no
``Process``), which is what keeps policies pure decision functions that
can be unit-tested against a :class:`SyntheticView` with no simulation
at all.

Invariants (see ``docs/SCHEDULING.md``):

- The view reads live JobTracker state *at heartbeat-handling time*.
  The JobTracker is a serialized service, so the state cannot change
  while a policy's ``assign`` runs — the view behaves as a snapshot.
- Policies must never mutate anything reached through a view. All
  mutation flows back through the
  :class:`~repro.sched.base.TaskChoice` list the policy returns.
- ``jobs()`` yields RUNNING jobs in ascending ``job_id`` (= submission)
  order; ``pending_maps``/``pending_reduces`` preserve JobTracker queue
  order. Both orders are part of the determinism contract.

Maintenance is *incremental*: the view caches its JobView list, the
TrackerView table, and each job's pending-queue tuples against epoch
counters the JobTracker bumps on the corresponding mutations
(``_jobs_epoch`` for job set/state changes, ``_membership_epoch`` for
tracker join/loss, ``_queue_epochs`` for queue edits). An ``assign``
call against unchanged state therefore costs O(1) in view refresh work
— O(changed) overall — instead of rebuilding an O(trackers x jobs)
snapshot per heartbeat exchange. The caches are value-transparent: a
policy cannot distinguish a cached view from a freshly built one.
Anything that mutates tracker capabilities mid-run (hardware, slots,
speed factor) must bump ``JobTracker._membership_epoch``; the built-in
mutators (register/loss) already do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.hadoop.job import JobState, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.jobtracker import JobTracker
    from repro.perf.calibration import Backend, CalibrationProfile

__all__ = [
    "AttemptView",
    "ClusterView",
    "JobView",
    "SyntheticJob",
    "SyntheticView",
    "TrackerView",
]


class AttemptView:
    """One live task attempt: where it runs and since when."""

    __slots__ = ("tracker_id", "attempt", "start_time")

    def __init__(self, tracker_id: int, attempt: int, start_time: float):
        self.tracker_id = tracker_id
        self.attempt = attempt
        self.start_time = start_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Attempt #{self.attempt} tracker={self.tracker_id} t0={self.start_time}>"


class TrackerView:
    """Hardware capabilities of one TaskTracker's blade.

    ``has_cells`` / ``has_gpus`` drive accelerator-affinity placement;
    ``speed_factor`` (> 1 means slower) exposes injected stragglers the
    way a load monitor would see them.
    """

    __slots__ = ("tracker_id", "has_cells", "has_gpus", "speed_factor",
                 "map_slots", "reduce_slots")

    def __init__(
        self,
        tracker_id: int,
        has_cells: bool = False,
        has_gpus: bool = False,
        speed_factor: float = 1.0,
        map_slots: int = 2,
        reduce_slots: int = 1,
    ):
        self.tracker_id = tracker_id
        self.has_cells = has_cells
        self.has_gpus = has_gpus
        self.speed_factor = speed_factor
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tracker {self.tracker_id} cells={self.has_cells} "
            f"gpus={self.has_gpus} x{self.speed_factor:g}>"
        )


class JobView:
    """Scheduling-relevant state of one RUNNING job.

    Wraps the live :class:`~repro.hadoop.job.Job` plus the JobTracker's
    queue/attempt bookkeeping. Accessors return copies or plain values;
    the underlying record is never handed out. Instances are cached and
    reused across heartbeat exchanges by :class:`ClusterView`, so the
    pending-queue tuples below are memoized against the JobTracker's
    per-job queue epoch — an unchanged queue is never re-copied.
    """

    __slots__ = ("_job", "_jt", "_queue_epoch", "_pending_maps", "_pending_reduces",
                 "_preferred_lookup", "_has_locality", "_local_candidates",
                 "_unconstrained_maps", "_pending_map_set", "_pending_maps_sorted")

    def __init__(self, job, jt: "JobTracker"):
        self._job = job
        self._jt = jt
        self._queue_epoch = -1
        self._pending_maps: tuple[int, ...] = ()
        self._pending_reduces: tuple[int, ...] = ()
        self._preferred_lookup: Optional[dict[int, tuple[int, ...]]] = None
        self._has_locality = False
        self._local_candidates: Optional[dict[int, tuple[int, ...]]] = None
        self._unconstrained_maps: Optional[tuple[int, ...]] = None
        self._pending_map_set: Optional[frozenset[int]] = None
        self._pending_maps_sorted = True

    # -- identity / configuration -----------------------------------------
    @property
    def job_id(self) -> int:
        return self._job.job_id

    @property
    def name(self) -> str:
        return self._job.conf.name

    @property
    def workload(self) -> str:
        return self._job.conf.workload

    @property
    def backend(self) -> "Backend":
        return self._job.conf.backend

    @property
    def fallback_backend(self) -> Optional["Backend"]:
        return self._job.conf.fallback_backend

    @property
    def weight(self) -> float:
        return self._job.conf.weight

    @property
    def speculative(self) -> bool:
        return self._job.conf.speculative

    @property
    def submit_time(self) -> float:
        return self._job.submit_time

    # -- queues -------------------------------------------------------------
    def _refresh_queues(self) -> None:
        jid = self._job.job_id
        epoch = self._jt._queue_epochs.get(jid, 0)
        if epoch != self._queue_epoch:
            self._pending_maps = tuple(self._jt._pending_maps.get(jid, ()))
            self._pending_map_set = None
            # Ascending queues (no failure/loss requeue has appended out
            # of order yet) let the pick fast path walk the per-node
            # candidate index instead of the whole queue. The JobTracker
            # tracks the (rare, sticky) out-of-order appends, so this is
            # a set probe rather than an O(pending) rescan per epoch.
            self._pending_maps_sorted = jid not in self._jt._queue_unsorted
            self._pending_reduces = tuple(self._jt._pending_reduces.get(jid, ()))
            self._queue_epoch = epoch

    @property
    def pending_maps(self) -> tuple[int, ...]:
        """Unassigned map task ids, in JobTracker queue order."""
        self._refresh_queues()
        return self._pending_maps

    @property
    def pending_map_set(self) -> frozenset[int]:
        """Pending map ids as a set (O(1) membership for pick loops).
        Built lazily per queue epoch — jobs whose picks never probe it
        (no locality) never pay for it."""
        self._refresh_queues()
        cached = self._pending_map_set
        if cached is None:
            cached = self._pending_map_set = frozenset(self._pending_maps)
        return cached

    @property
    def pending_maps_sorted(self) -> bool:
        """True while the map queue is in ascending task-id order —
        then first-in-queue-order equals first-in-ascending-id, and the
        locality pick may use :attr:`local_candidates`."""
        self._refresh_queues()
        return self._pending_maps_sorted

    @property
    def local_candidates(self) -> dict[int, tuple[int, ...]]:
        """``node_id → map task ids preferring it`` (ascending ids).

        The static inverse of :attr:`preferred_lookup`: a tracker's
        locality probe walks its own few candidates instead of the whole
        pending queue. Valid as a queue-order pick only while
        :attr:`pending_maps_sorted` holds.
        """
        index = self._local_candidates
        if index is None:
            build: dict[int, list[int]] = {}
            for tid, preferred in self.preferred_lookup.items():
                for node in preferred:
                    build.setdefault(node, []).append(tid)
            index = self._local_candidates = {
                node: tuple(sorted(tids)) for node, tids in build.items()
            }
        return index

    @property
    def unconstrained_maps(self) -> tuple[int, ...]:
        """Map task ids with no split (ascending) — "local everywhere"
        for policies that treat no-preference as local (delay
        scheduling). Static, like :attr:`local_candidates`."""
        ids = self._unconstrained_maps
        if ids is None:
            ids = self._unconstrained_maps = tuple(
                sorted(tid for tid, pref in self.preferred_lookup.items() if not pref)
            )
        return ids

    @property
    def pending_reduces(self) -> tuple[int, ...]:
        """Unassigned reduce task ids, in JobTracker queue order."""
        self._refresh_queues()
        return self._pending_reduces

    @property
    def num_maps(self) -> int:
        return len(self._job.maps)

    @property
    def num_reduces(self) -> int:
        return len(self._job.reduces)

    @property
    def maps_all_done(self) -> bool:
        return self._job.maps_all_done

    @property
    def running_attempt_count(self) -> int:
        """Live attempts (maps + reduces) across the cluster — the load
        measure fair sharing balances."""
        return self._jt._live_attempts.get(self._job.job_id, 0)

    # -- per-task detail -----------------------------------------------------
    @property
    def preferred_lookup(self) -> dict[int, tuple[int, ...]]:
        """``task_id → preferred node ids`` for every map task.

        Splits are immutable once ``_setup_job`` built the task table
        (reschedules re-queue ids, never re-split), so the lookup is
        computed once per job and shared across every heartbeat — the
        batch pick loops probe it instead of paying a method call and
        attribute chase per pending task. Policies must not mutate it.
        """
        lookup = self._preferred_lookup
        if lookup is None:
            lookup = self._preferred_lookup = {
                tid: (() if t.split is None else t.split.preferred_nodes)
                for tid, t in self._job.maps.items()
            }
            self._has_locality = any(lookup.values())
        return lookup

    @property
    def has_locality(self) -> bool:
        """True if any map task has a preferred node — compute-driven
        jobs (no splits) short-circuit the per-task locality probe."""
        if self._preferred_lookup is None:
            _ = self.preferred_lookup
        return self._has_locality

    def preferred_nodes(self, task_id: int) -> tuple[int, ...]:
        """HDFS block locality of one map task (compute-driven jobs have
        no split and prefer nowhere)."""
        return self.preferred_lookup[task_id]

    def map_state(self, task_id: int) -> str:
        return self._job.maps[task_id].state

    def done_map_durations(self) -> list[float]:
        """Durations of completed maps, for straggler detection."""
        return [t.duration for t in self._job.maps.values() if t.state == "done"]

    def running_map_attempts(self) -> Iterator[tuple[int, list[AttemptView]]]:
        """``(task_id, attempts)`` for every map currently running."""
        jid = self._job.job_id
        for task in self._job.maps.values():
            if task.state != "running":
                continue
            raw = self._jt._running_attempts.get((jid, TaskKind.MAP, task.task_id), ())
            yield task.task_id, [AttemptView(*a) for a in raw]

    def map_output_nodes(self) -> dict[int, int]:
        """``node_id → completed map outputs of this job held there`` —
        the shuffle source mass reduce-affinity placement ranks nodes
        by. Not cached: only consulted while reduces are pending, a
        window in which the underlying index changes on every map
        completion anyway."""
        jid = self._job.job_id
        out: dict[int, int] = {}
        for node, keys in self._jt.map_outputs.by_node.items():
            held = sum(1 for k in keys if k[0] == jid)
            if held:
                out[node] = held
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobView {self.job_id} {self.name!r} pending={len(self.pending_maps)}>"


class ClusterView:
    """The live JobTracker seen through a policy-safe, read-only lens.

    One instance lives for the whole cluster; its JobView list, the
    TrackerView table, and the membership aggregates (slot totals,
    capability flags) are rebuilt only when the JobTracker's epoch
    counters say the underlying state changed.
    """

    def __init__(self, jt: "JobTracker"):
        self._jt = jt
        self._jobs_epoch = -1
        self._jobs_cache: list[JobView] = []
        self._job_views: dict[int, JobView] = {}
        self._members_epoch = -1
        self._tracker_views: dict[int, TrackerView] = {}
        self._trackers_cache: list[TrackerView] = []
        self._total_map_slots = 0
        self._any_cells = False
        self._any_gpus = False

    @property
    def now(self) -> float:
        return self._jt.env.now

    @property
    def calib(self) -> "CalibrationProfile":
        """The (frozen) calibration profile: slot speeds per backend."""
        return self._jt.calib

    @property
    def membership_epoch(self) -> int:
        """Monotone counter bumped on tracker join/loss — a cheap
        memoization key for policies whose derived state depends only
        on the tracker set (see the accel policy)."""
        return self._jt._membership_epoch

    def jobs(self) -> list[JobView]:
        """RUNNING jobs in ascending job-id (submission) order."""
        jt = self._jt
        if self._jobs_epoch != jt._jobs_epoch:
            views = self._job_views
            cache = []
            for jid in sorted(jt._jobs):
                job = jt._jobs[jid]
                if job.state is not JobState.RUNNING:
                    continue
                view = views.get(jid)
                if view is None:
                    view = views[jid] = JobView(job, jt)
                cache.append(view)
            self._jobs_cache = cache
            self._jobs_epoch = jt._jobs_epoch
        return list(self._jobs_cache)

    def _refresh_trackers(self) -> None:
        jt = self._jt
        if self._members_epoch == jt._membership_epoch:
            return
        table: dict[int, TrackerView] = {}
        for tid in sorted(jt._trackers):
            tt = jt._trackers[tid]
            node = tt.node
            table[tid] = TrackerView(
                tracker_id=tid,
                has_cells=bool(node.cells),
                has_gpus=bool(node.gpus),
                speed_factor=node.speed_factor,
                map_slots=tt.map_slots,
                reduce_slots=tt.reduce_slots,
            )
        self._tracker_views = table
        self._trackers_cache = list(table.values())
        self._total_map_slots = sum(t.map_slots for t in self._trackers_cache)
        self._any_cells = any(t.has_cells for t in self._trackers_cache)
        self._any_gpus = any(t.has_gpus for t in self._trackers_cache)
        self._members_epoch = jt._membership_epoch

    def tracker(self, tracker_id: int) -> TrackerView:
        self._refresh_trackers()
        view = self._tracker_views.get(tracker_id)
        if view is None:
            # A heartbeat can race a loss declaration (the report was
            # queued before the timeout fired): give affinity policies a
            # capability-less default instead of a KeyError.
            return TrackerView(tracker_id)
        return view

    def trackers(self) -> list[TrackerView]:
        """All live trackers, ascending tracker id."""
        self._refresh_trackers()
        return list(self._trackers_cache)

    @property
    def tracker_count(self) -> int:
        """Live tracker count without materializing the view list."""
        return len(self._jt._trackers)

    @property
    def total_map_slots(self) -> int:
        self._refresh_trackers()
        return self._total_map_slots

    def any_tracker_with_cells(self) -> bool:
        self._refresh_trackers()
        return self._any_cells

    def any_tracker_with_gpus(self) -> bool:
        self._refresh_trackers()
        return self._any_gpus


class SyntheticJob:
    """A hand-built stand-in for :class:`JobView` (policy unit tests).

    Carries the same read surface as :class:`JobView` but from plain
    constructor data, so a policy's decision function can be exercised
    against crafted job states with no JobTracker behind it.
    """

    def __init__(
        self,
        job_id: int,
        *,
        name: str = "job",
        workload: str = "pi",
        backend=None,
        fallback_backend=None,
        weight: float = 1.0,
        speculative: bool = False,
        submit_time: float = 0.0,
        pending_maps: Sequence[int] = (),
        pending_reduces: Sequence[int] = (),
        num_maps: Optional[int] = None,
        num_reduces: int = 0,
        maps_all_done: bool = False,
        running_attempt_count: int = 0,
        preferred: Optional[dict[int, tuple[int, ...]]] = None,
        map_states: Optional[dict[int, str]] = None,
        done_durations: Sequence[float] = (),
        running_attempts: Optional[dict[int, list[AttemptView]]] = None,
        map_output_nodes: Optional[dict[int, int]] = None,
    ):
        from repro.perf.calibration import Backend

        self.job_id = job_id
        self.name = name
        self.workload = workload
        self.backend = backend if backend is not None else Backend.JAVA_PPE
        self.fallback_backend = fallback_backend
        self.weight = weight
        self.speculative = speculative
        self.submit_time = submit_time
        self.pending_maps = tuple(pending_maps)
        self.pending_reduces = tuple(pending_reduces)
        self.num_maps = num_maps if num_maps is not None else len(self.pending_maps)
        self.num_reduces = num_reduces
        self.maps_all_done = maps_all_done
        self.running_attempt_count = running_attempt_count
        self._preferred = dict(preferred or {})
        self._map_states = dict(map_states or {})
        self._done_durations = list(done_durations)
        self._running_attempts = dict(running_attempts or {})
        self._map_output_nodes = dict(map_output_nodes or {})

    @property
    def preferred_lookup(self) -> dict[int, tuple[int, ...]]:
        return self._preferred

    @property
    def has_locality(self) -> bool:
        return any(self._preferred.values())

    @property
    def pending_map_set(self) -> frozenset[int]:
        return frozenset(self.pending_maps)

    @property
    def pending_maps_sorted(self) -> bool:
        pending = self.pending_maps
        return all(pending[i] < pending[i + 1] for i in range(len(pending) - 1))

    @property
    def local_candidates(self) -> dict[int, tuple[int, ...]]:
        build: dict[int, list[int]] = {}
        for tid, preferred in self._preferred.items():
            for node in preferred:
                build.setdefault(node, []).append(tid)
        return {node: tuple(sorted(tids)) for node, tids in build.items()}

    @property
    def unconstrained_maps(self) -> tuple[int, ...]:
        return tuple(
            sorted(tid for tid in self.pending_maps if not self._preferred.get(tid))
        )

    def preferred_nodes(self, task_id: int) -> tuple[int, ...]:
        return self._preferred.get(task_id, ())

    def map_state(self, task_id: int) -> str:
        return self._map_states.get(task_id, "pending")

    def done_map_durations(self) -> list[float]:
        return list(self._done_durations)

    def running_map_attempts(self) -> Iterator[tuple[int, list[AttemptView]]]:
        for task_id in sorted(self._running_attempts):
            yield task_id, list(self._running_attempts[task_id])

    def map_output_nodes(self) -> dict[int, int]:
        return dict(self._map_output_nodes)


class SyntheticView:
    """A hand-built stand-in for :class:`ClusterView` (policy unit tests).

    Constructed from plain data — no JobTracker, no engine. Exposes the
    same surface policies consume, so a policy's decision function can
    be exercised against crafted cluster states directly.
    """

    def __init__(
        self,
        jobs: Sequence["SyntheticJob"],
        trackers: Sequence[TrackerView],
        now: float = 0.0,
        calib=None,
        membership_epoch: int = 0,
    ):
        from repro.perf.calibration import PAPER_CALIBRATION

        self._jobs = list(jobs)
        self._trackers = {t.tracker_id: t for t in trackers}
        self.now = now
        self.calib = calib if calib is not None else PAPER_CALIBRATION
        self.membership_epoch = membership_epoch

    def jobs(self) -> list[JobView]:
        return list(self._jobs)

    def tracker(self, tracker_id: int) -> TrackerView:
        return self._trackers[tracker_id]

    def trackers(self) -> list[TrackerView]:
        return [self._trackers[tid] for tid in sorted(self._trackers)]

    @property
    def tracker_count(self) -> int:
        return len(self._trackers)

    @property
    def total_map_slots(self) -> int:
        return sum(t.map_slots for t in self.trackers())

    def any_tracker_with_cells(self) -> bool:
        return any(t.has_cells for t in self.trackers())

    def any_tracker_with_gpus(self) -> bool:
        return any(t.has_gpus for t in self.trackers())
