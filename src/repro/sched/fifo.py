"""FIFO scheduling — the stock Hadoop 0.19 policy the paper ran.

Extracted verbatim from the pre-refactor ``JobTracker``: jobs are served
strictly in submission order, each job filling every slot it can
(locality-first within the job, straggler speculation only once its
queue is dry) before the next job sees a single slot. This is the
policy behind every paper figure, and its decision stream is pinned
byte-identically by the golden-series tests in both engine modes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sched.base import (
    AssignmentBatch,
    Scheduler,
    TaskChoice,
    fill_job_map_slots,
    fill_job_reduce_slots,
    register_scheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.sched.view import ClusterView

__all__ = ["FifoScheduler"]


@register_scheduler
class FifoScheduler(Scheduler):
    """Strict job-arrival order; locality-first within the head job."""

    name = "fifo"

    def assign(self, view: "ClusterView", hb: "Heartbeat") -> list[TaskChoice]:
        batch = AssignmentBatch()
        now = view.now
        free_maps = hb.free_map_slots
        free_reduces = hb.free_reduce_slots
        for job in view.jobs():
            if free_maps > 0:
                free_maps -= fill_job_map_slots(
                    job, hb.tracker_id, now, batch, free_maps
                )
            if free_reduces > 0:
                free_reduces -= fill_job_reduce_slots(job, batch, free_reduces)
            if free_maps <= 0 and free_reduces <= 0:
                break
        return batch.choices
