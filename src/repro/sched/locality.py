"""Delay scheduling on HDFS block locality.

The stock policy takes the queue head whenever no local split is
available, paying a remote block read (the paper's JobTracker "tries to
minimize the number of remote blocks accesses" but never *waits* for a
local slot). Delay scheduling (Zaharia et al., EuroSys'10) waits: a job
whose head tasks are all remote to the heartbeating tracker skips its
turn for a bounded number of heartbeats, betting that a slot on one of
its data's home nodes frees up first. Unconstrained tasks (compute-
driven jobs with no splits) are "local everywhere" and never wait.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.hadoop.job import TaskKind
from repro.sched.base import (
    AssignmentBatch,
    Scheduler,
    TaskChoice,
    fill_job_reduce_slots,
    pick_speculative_map,
    register_scheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.sched.view import ClusterView, JobView

__all__ = ["LocalityAwareScheduler"]


@register_scheduler
class LocalityAwareScheduler(Scheduler):
    """Wait (boundedly) for data-local slots before going remote.

    Parameters
    ----------
    max_skips: heartbeats a job may decline non-local slots before it
        falls back to the stock head-of-queue pick. ``None`` (default)
        adapts to the cluster: two full heartbeat rounds (2x the live
        tracker count), the EuroSys'10 guidance of "a few seconds".
    """

    name = "locality"

    def __init__(self, max_skips: Optional[int] = None):
        self.max_skips = max_skips
        self._skips: dict[int, int] = {}

    def assign(self, view: "ClusterView", hb: "Heartbeat") -> list[TaskChoice]:
        batch = AssignmentBatch()
        now = view.now
        jobs = view.jobs()
        live = {j.job_id for j in jobs}
        self._skips = {jid: n for jid, n in self._skips.items() if jid in live}
        limit = self.max_skips
        if limit is None:
            limit = 2 * max(1, view.tracker_count)

        free_maps = hb.free_map_slots
        free_reduces = hb.free_reduce_slots
        declined: set[int] = set()
        for job in jobs:
            while free_maps > 0:
                task_id, local = self._pick_map(job, hb.tracker_id, batch)
                speculative = False
                if task_id is not None and not local:
                    # Remote pick: only once the job has burned its delay.
                    if self._skips.get(job.job_id, 0) < limit:
                        declined.add(job.job_id)
                        break
                if task_id is None and job.speculative:
                    task_id = pick_speculative_map(job, hb.tracker_id, now, batch)
                    speculative = True
                if task_id is None:
                    break
                batch.add(
                    TaskChoice(job.job_id, TaskKind.MAP, task_id, speculative=speculative)
                )
                if local:
                    # Only a *local* launch re-arms the delay. Resetting
                    # on a forced remote launch would make an all-remote
                    # job burn the full delay again before every single
                    # task — a trickle instead of the promised fallback
                    # to the stock pick.
                    self._skips[job.job_id] = 0
                free_maps -= 1
            if free_reduces > 0:
                free_reduces -= fill_job_reduce_slots(job, batch, free_reduces)
            if free_maps <= 0 and free_reduces <= 0:
                break
        # One skip per declined job per heartbeat (not per slot), so the
        # delay bound is measured in heartbeat exchanges.
        for jid in declined:
            self._skips[jid] = self._skips.get(jid, 0) + 1
        if declined:
            self._bump_counter("delay_waits", len(declined))
        return batch.choices

    @staticmethod
    def _pick_map(
        job: "JobView", tracker_id: int, batch: AssignmentBatch
    ) -> tuple[Optional[int], bool]:
        """First untaken local-or-unconstrained task, else the queue head.

        Returns ``(task_id, is_local)``; ``(None, False)`` when the
        queue is dry. A task with no preferred nodes counts as local —
        there is no data for it to be remote from.
        """
        taken = batch.taken_maps(job.job_id)
        pending = job.pending_maps
        if not job.has_locality:
            # Unconstrained everywhere: the first untaken task is local
            # by definition (no data to be remote from).
            for task_id in pending:
                if task_id not in taken:
                    return task_id, True
            return None, False
        if job.pending_maps_sorted:
            # Ascending queue: the first-in-queue-order local task is
            # the smallest id among this tracker's candidates plus the
            # unconstrained ("local everywhere") tasks, so probe those
            # two short ascending tuples instead of the whole queue.
            pending_set = job.pending_map_set
            best: Optional[int] = None
            for task_id in job.local_candidates.get(tracker_id, ()):
                if task_id in pending_set and task_id not in taken:
                    best = task_id
                    break
            for task_id in job.unconstrained_maps:
                if best is not None and task_id >= best:
                    break
                if task_id in pending_set and task_id not in taken:
                    best = task_id
                    break
            if best is not None:
                return best, True
            for task_id in pending:
                if task_id not in taken:
                    return task_id, False
            return None, False
        lookup = job.preferred_lookup
        head: Optional[int] = None
        for task_id in pending:
            if task_id in taken:
                continue
            if head is None:
                head = task_id
            preferred = lookup.get(task_id)
            if not preferred or tracker_id in preferred:
                return task_id, True
        return head, False
