"""Delay scheduling on HDFS block locality.

The stock policy takes the queue head whenever no local split is
available, paying a remote block read (the paper's JobTracker "tries to
minimize the number of remote blocks accesses" but never *waits* for a
local slot). Delay scheduling (Zaharia et al., EuroSys'10) waits: a job
whose head tasks are all remote to the heartbeating tracker skips its
turn for a bounded number of heartbeats, betting that a slot on one of
its data's home nodes frees up first. Unconstrained tasks (compute-
driven jobs with no splits) are "local everywhere" and never wait.

``locality_reduce`` extends the same bet to the shuffle: reduces prefer
the tracker holding the most of the job's completed map output (the
largest co-located shuffle source), declining mismatched offers under
the same bounded patience. The base ``locality`` policy leaves reduce
placement untouched (byte-identical to its pre-affinity behaviour).

Both react to membership change (:meth:`on_membership_change`): a node
joining or leaving redraws the odds every accumulated skip was betting
on, so all patience counters reset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.hadoop.job import TaskKind
from repro.sched.base import (
    AssignmentBatch,
    Scheduler,
    TaskChoice,
    fill_job_reduce_slots,
    pick_pending_reduce,
    pick_speculative_map,
    register_scheduler,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hadoop.messages import Heartbeat
    from repro.sched.view import ClusterView, JobView

__all__ = ["LocalityAwareScheduler", "ShuffleAwareLocalityScheduler"]


@register_scheduler
class LocalityAwareScheduler(Scheduler):
    """Wait (boundedly) for data-local slots before going remote.

    Parameters
    ----------
    max_skips: heartbeats a job may decline non-local slots before it
        falls back to the stock head-of-queue pick. ``None`` (default)
        adapts to the cluster: two full heartbeat rounds (2x the live
        tracker count), the EuroSys'10 guidance of "a few seconds".
    """

    name = "locality"

    #: ``locality_reduce`` flips this on; the base policy keeps stock
    #: reduce placement so existing series stay byte-identical.
    reduce_affinity: bool = False

    def __init__(self, max_skips: Optional[int] = None):
        self.max_skips = max_skips
        self._skips: dict[int, int] = {}
        self._reduce_skips: dict[int, int] = {}

    def on_membership_change(
        self,
        view: "ClusterView",
        joined: Sequence[int] = (),
        lost: Sequence[int] = (),
    ) -> None:
        """Reset delay patience: accumulated skips were bets on slots
        freeing up under the *old* membership. A joiner brings fresh
        (possibly local) slots worth waiting for again; a loss may have
        taken the very node being waited on."""
        self._skips.clear()
        self._reduce_skips.clear()

    def assign(self, view: "ClusterView", hb: "Heartbeat") -> list[TaskChoice]:
        batch = AssignmentBatch()
        now = view.now
        jobs = view.jobs()
        live = {j.job_id for j in jobs}
        self._skips = {jid: n for jid, n in self._skips.items() if jid in live}
        limit = self.max_skips
        if limit is None:
            limit = 2 * max(1, view.tracker_count)

        free_maps = hb.free_map_slots
        free_reduces = hb.free_reduce_slots
        declined: set[int] = set()
        declined_reduces: set[int] = set()
        for job in jobs:
            while free_maps > 0:
                task_id, local = self._pick_map(job, hb.tracker_id, batch)
                speculative = False
                if task_id is not None and not local:
                    # Remote pick: only once the job has burned its delay.
                    if self._skips.get(job.job_id, 0) < limit:
                        declined.add(job.job_id)
                        break
                if task_id is None and job.speculative:
                    task_id = pick_speculative_map(job, hb.tracker_id, now, batch)
                    speculative = True
                if task_id is None:
                    break
                batch.add(
                    TaskChoice(job.job_id, TaskKind.MAP, task_id, speculative=speculative)
                )
                if local:
                    # Only a *local* launch re-arms the delay. Resetting
                    # on a forced remote launch would make an all-remote
                    # job burn the full delay again before every single
                    # task — a trickle instead of the promised fallback
                    # to the stock pick.
                    self._skips[job.job_id] = 0
                free_maps -= 1
            if free_reduces > 0:
                if self.reduce_affinity:
                    used, waited = self._fill_reduces_affinity(
                        job, hb.tracker_id, batch, free_reduces, limit
                    )
                    free_reduces -= used
                    if waited:
                        declined_reduces.add(job.job_id)
                else:
                    free_reduces -= fill_job_reduce_slots(job, batch, free_reduces)
            if free_maps <= 0 and free_reduces <= 0:
                break
        # One skip per declined job per heartbeat (not per slot), so the
        # delay bound is measured in heartbeat exchanges.
        for jid in declined:
            self._skips[jid] = self._skips.get(jid, 0) + 1
        if declined:
            self._bump_counter("delay_waits", len(declined))
        for jid in declined_reduces:
            self._reduce_skips[jid] = self._reduce_skips.get(jid, 0) + 1
        if declined_reduces:
            self._bump_counter("shuffle_affinity_waits", len(declined_reduces))
        return batch.choices

    def _fill_reduces_affinity(
        self,
        job: "JobView",
        tracker_id: int,
        batch: AssignmentBatch,
        free_reduces: int,
        limit: int,
    ) -> tuple[int, bool]:
        """Shuffle-locality reduce placement with bounded patience.

        A reduce offer from a tracker holding less of the job's map
        output than the best-stocked node is declined until the job has
        burned ``limit`` reduce skips — then any offer is taken (same
        progress guarantee as the map-side delay). Placement on a
        best-stocked node re-arms the patience. Returns
        ``(slots_used, declined_this_heartbeat)``.
        """
        if not job.maps_all_done or not job.pending_reduces:
            return 0, False
        outputs = job.map_output_nodes()
        best = max(outputs.values()) if outputs else 0
        here = outputs.get(tracker_id, 0)
        if outputs and here < best:
            if self._reduce_skips.get(job.job_id, 0) < limit:
                return 0, True
        used = 0
        while used < free_reduces:
            task_id = pick_pending_reduce(job, batch)
            if task_id is None:
                break
            batch.add(TaskChoice(job.job_id, TaskKind.REDUCE, task_id))
            used += 1
        if used and (not outputs or here >= best):
            self._reduce_skips[job.job_id] = 0
        return used, False

    @staticmethod
    def _pick_map(
        job: "JobView", tracker_id: int, batch: AssignmentBatch
    ) -> tuple[Optional[int], bool]:
        """First untaken local-or-unconstrained task, else the queue head.

        Returns ``(task_id, is_local)``; ``(None, False)`` when the
        queue is dry. A task with no preferred nodes counts as local —
        there is no data for it to be remote from.
        """
        taken = batch.taken_maps(job.job_id)
        pending = job.pending_maps
        if not job.has_locality:
            # Unconstrained everywhere: the first untaken task is local
            # by definition (no data to be remote from).
            for task_id in pending:
                if task_id not in taken:
                    return task_id, True
            return None, False
        if job.pending_maps_sorted:
            # Ascending queue: the first-in-queue-order local task is
            # the smallest id among this tracker's candidates plus the
            # unconstrained ("local everywhere") tasks, so probe those
            # two short ascending tuples instead of the whole queue.
            pending_set = job.pending_map_set
            best: Optional[int] = None
            for task_id in job.local_candidates.get(tracker_id, ()):
                if task_id in pending_set and task_id not in taken:
                    best = task_id
                    break
            for task_id in job.unconstrained_maps:
                if best is not None and task_id >= best:
                    break
                if task_id in pending_set and task_id not in taken:
                    best = task_id
                    break
            if best is not None:
                return best, True
            for task_id in pending:
                if task_id not in taken:
                    return task_id, False
            return None, False
        lookup = job.preferred_lookup
        head: Optional[int] = None
        for task_id in pending:
            if task_id in taken:
                continue
            if head is None:
                head = task_id
            preferred = lookup.get(task_id)
            if not preferred or tracker_id in preferred:
                return task_id, True
        return head, False


@register_scheduler
class ShuffleAwareLocalityScheduler(LocalityAwareScheduler):
    """Delay scheduling plus shuffle-locality reduce placement."""

    name = "locality_reduce"
    reduce_affinity = True
