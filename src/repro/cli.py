"""Command-line interface for the reproduction.

Run paper experiments and ad-hoc jobs without writing code::

    python -m repro fig2                     # raw encryption figure
    python -m repro fig5 --data-gb 60        # fixed-dataset sweep
    python -m repro fig8 --samples 1e11 --workers 4
    python -m repro scenarios                # list every registered sweep
    python -m repro schedulers               # list placement policies
    python -m repro sweep gpu --grid nodes=2,4,8 --workers 4
    python -m repro sweep fig8 --cache       # whole-sweep + per-point cache
    python -m repro sweep fig8 --compare results/old   # drift report
    python -m repro sweep scale --shard 0/4 --out shards/s0  # one host's part
    python -m repro sweep --merge shards/s0 shards/s1 shards/s2 shards/s3
    python -m repro sweep --cache-prune --max-age-days 30
    python -m repro serve --socket /tmp/repro.sock --workers 4  # daemon
    python -m repro submit fig8 --grid nodes=2,4 --socket /tmp/repro.sock
    python -m repro submit --status --socket /tmp/repro.sock
    python -m repro submit --shutdown --socket /tmp/repro.sock
    python -m repro fleet serve fig8 --port 0 --journal j.jsonl  # coordinator
    python -m repro fleet worker --connect HOST:PORT    # join the fleet
    python -m repro trace fig8 --grid nodes=2 --out trace.json  # Perfetto
    python -m repro metrics fig8 --grid nodes=2     # telemetry report
    python -m repro encrypt --nodes 16 --data-gb 32 --backend cell
    python -m repro pi --nodes 50 --samples 3e12 --backend java
    python -m repro multijob --nodes 8 --jobs 4 --scheduler fair
    python -m repro info                     # calibration summary

Every ``fig*`` command is a thin view over the scenario registry
(:mod:`repro.experiments`): the same declarative definition drives the
serial figures, the parallel sweep driver, the perf harness, and the
golden-series tests. Output is the series-table + ASCII chart format the
benchmark harness prints.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import (
    Series,
    ascii_chart,
    sweep_metrics_table,
    sweep_summary,
    sweep_timing_table,
)
from repro.analysis.report import (
    decision_counters_table,
    format_table,
    metrics_snapshot_table,
    series_table,
    tenant_latency_table,
    timeseries_summary_table,
)
from repro.experiments import (
    GridError,
    all_scenarios,
    get_scenario,
    parse_grid_overrides,
    run_sweep,
    save_sweep,
)
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core import run_empty_job, run_encryption_job, run_pi_job, run_workload_mix
from repro.hadoop.faults import ChurnPlan
from repro.hadoop.metrics import analyze_job
from repro.sched import resolve_scheduler, scheduler_names

__all__ = ["main", "build_parser"]

BACKENDS = {
    "java": Backend.JAVA_PPE,
    "java-ppe": Backend.JAVA_PPE,
    "java-power6": Backend.JAVA_POWER6,
    "cell": Backend.CELL_SPE_DIRECT,
    "cell-mr": Backend.CELL_SPE_MAPREDUCE,
    "gpu": Backend.GPU_TESLA,
    "empty": Backend.EMPTY,
}

EPILOG = (
    "Sweeps are declarative scenarios; see docs/EXPERIMENTS.md for the "
    "registry, the parallel-driver determinism contract, and how to add "
    "a scenario."
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_sweep_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=1234,
                   help="root seed threaded into every simulated point")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="parallel sweep processes (results are byte-"
                        "identical at any worker count)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Speeding Up Distributed MapReduce "
        "Applications Using Hardware Accelerators' (ICPP 2009)",
        epilog=EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the calibration profile")
    sub.add_parser("scenarios", help="list registered sweep scenarios")
    sub.add_parser("schedulers", help="list registered placement policies")

    p2 = sub.add_parser("fig2", help="raw node encryption bandwidth (Fig. 2)")
    _add_sweep_common(p2)

    p6 = sub.add_parser("fig6", help="raw node Pi rates (Fig. 6)")
    _add_sweep_common(p6)

    p4 = sub.add_parser("fig4", help="proportional-dataset encryption (Fig. 4)")
    p4.add_argument("--nodes", type=int, nargs="*", default=[12, 24, 36, 48, 60])
    _add_sweep_common(p4)

    p5 = sub.add_parser("fig5", help="fixed-dataset encryption (Fig. 5)")
    p5.add_argument("--nodes", type=int, nargs="*", default=[4, 8, 16, 32, 64])
    p5.add_argument("--data-gb", type=float, default=120.0)
    _add_sweep_common(p5)

    p7 = sub.add_parser("fig7", help="distributed Pi sample sweep (Fig. 7)")
    p7.add_argument("--nodes", type=int, default=50)
    p7.add_argument(
        "--samples", type=float, nargs="*",
        default=[3e3, 3e5, 3e7, 3e9, 3e11, 3e12],
    )
    _add_sweep_common(p7)

    p8 = sub.add_parser("fig8", help="distributed Pi node scaling (Fig. 8)")
    p8.add_argument("--nodes", type=int, nargs="*", default=[4, 8, 16, 32, 64])
    p8.add_argument("--samples", type=float, default=1e11)
    _add_sweep_common(p8)

    ps = sub.add_parser(
        "sweep",
        help="run any registered scenario's parameter grid",
        epilog=EPILOG,
    )
    ps.add_argument("scenario", nargs="?", default=None,
                    help="registered scenario name (see `repro scenarios`); "
                         "optional with --merge / --cache-prune")
    ps.add_argument("--grid", action="append", default=[], metavar="KEY=V1,V2,...",
                    help="override a grid parameter's values or a fixed "
                         "parameter's value; repeatable")
    ps.add_argument("--out", type=Path, default=Path("results"),
                    help="results directory (default: results/)")
    ps.add_argument("--no-save", action="store_true",
                    help="print only; skip writing JSON/CSV results")
    ps.add_argument("-v", "--verbose", action="store_true",
                    help="also print the per-point timing table "
                         "(stragglers first)")
    ps.add_argument("--cache", action="store_true",
                    help="reuse cached results: whole-sweep on an identical "
                         "request, per-point otherwise (only changed grid "
                         "points re-run)")
    ps.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                    help="cache directory (default: <out>/.cache)")
    ps.add_argument("--cache-prune", action="store_true",
                    help="prune the cache directory instead of sweeping "
                         "(see --max-age-days / --max-bytes)")
    ps.add_argument("--max-age-days", type=float, default=None, metavar="D",
                    help="with --cache-prune: drop entries older than D days")
    ps.add_argument("--max-bytes", type=int, default=None, metavar="B",
                    help="with --cache-prune: drop oldest entries until the "
                         "cache fits in B bytes")
    ps.add_argument("--shard", default=None, metavar="I/N",
                    help="run only shard I of N (deterministic round-robin "
                         "partition) and write a shard manifest to --out")
    ps.add_argument("--merge", type=Path, nargs="+", default=None, metavar="DIR",
                    help="merge shard manifests from DIR... into one result, "
                         "byte-identical to a serial run")
    ps.add_argument("--compare", type=Path, default=None, metavar="DIR",
                    help="diff the fresh series against <DIR>/<scenario>.json "
                         "and exit non-zero on drift")
    _add_sweep_common(ps)

    pserve = sub.add_parser(
        "serve",
        help="run the simulation daemon: concurrent sweep requests over "
             "a line-JSON protocol, identical requests coalesced",
        epilog="See docs/SERVING.md for the protocol and guarantees.",
    )
    pserve.add_argument("--port", type=int, default=None, metavar="P",
                        help="listen on TCP port P (0 = OS-assigned); "
                             "exclusive with --socket")
    pserve.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default: loopback)")
    pserve.add_argument("--socket", type=Path, default=None, metavar="PATH",
                        help="listen on a unix socket at PATH")
    pserve.add_argument("--workers", type=_positive_int, default=2,
                        help="pool worker processes shared by all jobs")
    pserve.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="serve through the sweep/point cache in DIR")
    pserve.add_argument("--abandon-timeout", type=float, default=30.0,
                        metavar="S",
                        help="cancel a running job S seconds after its last "
                             "streaming client disconnects without cancelling "
                             "(0 disables reaping; default: 30)")
    pserve.add_argument("--log-level", choices=["debug", "info", "warning",
                                                "error"], default="info",
                        help="structured-log threshold on stderr "
                             "(default: info)")
    pserve.add_argument("--log-json", action="store_true",
                        help="emit one JSON object per log line instead of "
                             "key=value text")

    psub = sub.add_parser(
        "submit",
        help="submit a sweep to a running `repro serve` daemon "
             "(or query/cancel/stop it)",
        epilog="See docs/SERVING.md for the protocol and guarantees.",
    )
    psub.add_argument("scenario", nargs="?", default=None,
                      help="registered scenario name; optional with "
                           "--status/--cancel/--shutdown")
    psub.add_argument("--grid", action="append", default=[],
                      metavar="KEY=V1,V2,...",
                      help="override a grid parameter's values or a fixed "
                           "parameter's value; repeatable")
    psub.add_argument("--seed", type=int, default=1234,
                      help="root seed threaded into every simulated point")
    psub.add_argument("--connect", default=None, metavar="[HOST:]PORT",
                      help="daemon TCP address; exclusive with --socket")
    psub.add_argument("--socket", default=None, metavar="PATH",
                      help="daemon unix socket path")
    psub.add_argument("--detach", action="store_true",
                      help="submit and return the job id without waiting "
                           "(recover the result with --status JOB)")
    psub.add_argument("--wait", dest="detach", action="store_false",
                      help="stream progress and wait for the result "
                           "(the default)")
    psub.add_argument("--status", nargs="?", const="", default=None,
                      metavar="JOB",
                      help="print the daemon's job table (or one job; a "
                           "finished job's payload is saved with --out)")
    psub.add_argument("--cancel", default=None, metavar="JOB",
                      help="cancel a queued or running job")
    psub.add_argument("--shutdown", nargs="?", const="graceful", default=None,
                      choices=["graceful", "now"], metavar="MODE",
                      help="stop the daemon (graceful drains running jobs; "
                           "now cancels them)")
    psub.add_argument("--metrics", action="store_true",
                      help="print the daemon's Prometheus text exposition "
                           "and exit")
    psub.add_argument("--retries", type=int, default=0, metavar="N",
                      help="retry an unreachable daemon or a mid-stream "
                           "disconnect up to N times (default: 0); submits "
                           "are idempotent, so a retry coalesces onto the "
                           "in-flight job or hits the result cache")
    psub.add_argument("--backoff", type=float, default=0.5, metavar="S",
                      help="base retry delay in seconds; actual delays are "
                           "S * 2**attempt with +/-50%% jitter (default: 0.5)")
    psub.add_argument("--out", type=Path, default=None, metavar="DIR",
                      help="save the served result like `repro sweep --out` "
                           "(byte-identical files)")
    psub.add_argument("-v", "--verbose", action="store_true",
                      help="print each point completion as it streams in")

    pfl = sub.add_parser(
        "fleet",
        help="distributed sweep fabric: a coordinator handing out point "
             "leases to a fleet of workers, with failure detection, "
             "re-dispatch, and crash-resume",
        epilog="See docs/FAULT_TOLERANCE.md for the failure model and "
               "tuning.",
    )
    pflsub = pfl.add_subparsers(dest="fleet_command", required=True)

    pfs = pflsub.add_parser(
        "serve",
        help="coordinate one sweep across connecting workers; exits when "
             "the sweep completes (or fails loudly)",
    )
    pfs.add_argument("scenario",
                     help="registered scenario name (see `repro scenarios`)")
    pfs.add_argument("--grid", action="append", default=[],
                     metavar="KEY=V1,V2,...",
                     help="override a grid parameter's values or a fixed "
                          "parameter's value; repeatable")
    pfs.add_argument("--seed", type=int, default=1234,
                     help="root seed threaded into every simulated point")
    pfs.add_argument("--port", type=int, default=None, metavar="P",
                     help="listen on TCP port P (0 = OS-assigned); "
                          "exclusive with --socket")
    pfs.add_argument("--host", default="127.0.0.1",
                     help="TCP bind address (default: loopback)")
    pfs.add_argument("--socket", type=Path, default=None, metavar="PATH",
                     help="listen on a unix socket at PATH")
    pfs.add_argument("--journal", type=Path, default=None, metavar="PATH",
                     help="journal accepted points to PATH; restarting with "
                          "the same journal resumes instead of re-running")
    pfs.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                     help="serve through the sweep/point cache in DIR")
    pfs.add_argument("--out", type=Path, default=None, metavar="DIR",
                     help="save the merged result like `repro sweep --out` "
                          "(byte-identical files)")
    pfs.add_argument("--worker-timeout", type=float, default=5.0, metavar="S",
                     help="heartbeat silence before a worker is declared "
                          "dead and its leases re-dispatch (default: 5)")
    pfs.add_argument("--lease-timeout", type=float, default=60.0, metavar="S",
                     help="max runtime of one leased point before "
                          "re-dispatch (default: 60)")
    pfs.add_argument("--batch-size", type=_positive_int, default=4,
                     help="max points granted per lease (default: 4)")
    pfs.add_argument("--max-attempts", type=_positive_int, default=3,
                     help="failed attempts per point before quarantine "
                          "aborts the sweep (default: 3)")
    pfs.add_argument("--retry-backoff", type=float, default=0.25, metavar="S",
                     help="base retry delay; attempt n waits S * 2**(n-1) "
                          "(default: 0.25)")
    pfs.add_argument("--no-worker-timeout", type=float, default=30.0,
                     metavar="S",
                     help="abort when no live worker exists for S seconds "
                          "(default: 30)")
    pfs.add_argument("--linger", type=float, default=1.0, metavar="S",
                     help="keep answering `done` for S seconds after the "
                          "sweep completes so workers exit cleanly")
    pfs.add_argument("--chaos-crash-after", type=int, default=None,
                     metavar="N",
                     help="fault injection: crash after accepting N results, "
                          "leaving the journal (exit 7); for chaos testing")
    pfs.add_argument("--log-level", choices=["debug", "info", "warning",
                                             "error"], default="info",
                     help="structured-log threshold on stderr")
    pfs.add_argument("--log-json", action="store_true",
                     help="emit one JSON object per log line")

    pfw = pflsub.add_parser(
        "worker",
        help="join a fleet: register with the coordinator, heartbeat, "
             "execute leased points, stream results back",
    )
    pfw.add_argument("--connect", default=None, metavar="[HOST:]PORT",
                     help="coordinator TCP address; exclusive with --socket")
    pfw.add_argument("--socket", default=None, metavar="PATH",
                     help="coordinator unix socket path")
    pfw.add_argument("--name", default=None,
                     help="stable worker identity (default: <host>-<pid>)")
    pfw.add_argument("--capacity", type=_positive_int, default=1,
                     help="concurrent points to advertise (default: 1)")
    pfw.add_argument("--heartbeat", type=float, default=0.2, metavar="S",
                     help="base heartbeat cadence, jittered ±50%% "
                          "(default: 0.2)")
    pfw.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                     help="consult/update the point cache in DIR")
    pfw.add_argument("--reconnect-timeout", type=float, default=30.0,
                     metavar="S",
                     help="give up after the coordinator is unreachable "
                          "for S seconds (default: 30)")
    pfw.add_argument("--chaos-kill-after", type=int, default=None,
                     metavar="N",
                     help="fault injection: die abruptly after delivering "
                          "N results (exit 7); for chaos testing")
    pfw.add_argument("--log-level", choices=["debug", "info", "warning",
                                             "error"], default="info",
                     help="structured-log threshold on stderr")
    pfw.add_argument("--log-json", action="store_true",
                     help="emit one JSON object per log line")

    ptr = sub.add_parser(
        "trace",
        help="run one grid point with span tracing on and export a "
             "Chrome-trace/Perfetto JSON timeline",
        epilog="Open the file at https://ui.perfetto.dev or "
               "chrome://tracing; see docs/OBSERVABILITY.md.",
    )
    ptr.add_argument("scenario",
                     help="registered scenario name (see `repro scenarios`)")
    ptr.add_argument("--grid", action="append", default=[],
                     metavar="KEY=V1,V2,...",
                     help="override a grid parameter's values or a fixed "
                          "parameter's value; repeatable")
    ptr.add_argument("--point", type=int, default=0, metavar="N",
                     help="canonical grid point index to trace (default: 0)")
    ptr.add_argument("--out", type=Path, default=Path("trace.json"),
                     help="output JSON path (default: trace.json)")
    ptr.add_argument("--seed", type=int, default=1234,
                     help="root seed threaded into the simulated point")

    pmx = sub.add_parser(
        "metrics",
        help="run one grid point with telemetry on and print its metric "
             "and virtual-time-series report",
        epilog="See docs/OBSERVABILITY.md for the metric catalog.",
    )
    pmx.add_argument("scenario",
                     help="registered scenario name (see `repro scenarios`)")
    pmx.add_argument("--grid", action="append", default=[],
                     metavar="KEY=V1,V2,...",
                     help="override a grid parameter's values or a fixed "
                          "parameter's value; repeatable")
    pmx.add_argument("--point", type=int, default=0, metavar="N",
                     help="canonical grid point index to run (default: 0)")
    pmx.add_argument("--seed", type=int, default=1234,
                     help="root seed threaded into the simulated point")

    pe = sub.add_parser("encrypt", help="one distributed encryption job")
    pe.add_argument("--nodes", type=int, default=8)
    pe.add_argument("--data-gb", type=float, default=16.0)
    pe.add_argument("--backend", choices=sorted(BACKENDS), default="cell")
    pe.add_argument("--seed", type=int, default=1234)
    pe.add_argument("--scheduler", choices=scheduler_names(), default=None,
                    help="placement policy (default: fifo)")

    pp = sub.add_parser("pi", help="one distributed Pi job")
    pp.add_argument("--nodes", type=int, default=8)
    pp.add_argument("--samples", type=float, default=1e10)
    pp.add_argument("--backend", choices=sorted(BACKENDS), default="cell")
    pp.add_argument("--seed", type=int, default=1234)
    pp.add_argument("--scheduler", choices=scheduler_names(), default=None,
                    help="placement policy (default: fifo)")

    pm = sub.add_parser(
        "multijob",
        help="a multi-job workload (alternating AES/Pi) under one policy",
    )
    pm.add_argument("--nodes", type=int, default=8)
    pm.add_argument("--jobs", type=_positive_int, default=3,
                    help="number of jobs in the mix")
    pm.add_argument("--stagger", type=float, default=5.0,
                    help="seconds between job arrivals")
    pm.add_argument("--data-gb", type=float, default=2.0,
                    help="input size of each AES job")
    pm.add_argument("--samples", type=float, default=2e9,
                    help="sample count of each Pi job")
    pm.add_argument("--accelerated-fraction", type=float, default=1.0,
                    help="fraction of blades with Cell sockets")
    pm.add_argument("--scheduler", choices=scheduler_names(), default="fifo")
    pm.add_argument("--seed", type=int, default=1234)
    pm.add_argument("--churn", action="append", default=None, metavar="SPEC",
                    help="membership churn event, repeatable: join@T, "
                         "leave@T[:NODE], or storm@T:K[/W] (K youngest "
                         "blades revoked from T over a W-second window)")

    return parser


def _print_series(series: list[Series], x_name: str, ylabel: str, title: str, out) -> None:
    print(title, file=out)
    print(series_table(series, x_name=x_name), file=out)
    print(file=out)
    print(ascii_chart(series, title=title, xlabel=x_name, ylabel=ylabel), file=out)


def _cmd_info(out) -> int:
    calib = PAPER_CALIBRATION
    rows = [
        {"parameter": "AES Cell direct plateau", "value": f"{calib.aes_cell_direct_bw / MB:.0f} MB/s"},
        {"parameter": "AES MR-Cell plateau", "value": f"{calib.aes_cell_mr_bw / MB:.0f} MB/s"},
        {"parameter": "AES Power6", "value": f"{calib.aes_power6_bw / MB:.0f} MB/s"},
        {"parameter": "AES PPE", "value": f"{calib.aes_ppe_bw / MB:.0f} MB/s"},
        {"parameter": "Pi Cell rate", "value": f"{calib.pi_cell_rate:.2e} samples/s"},
        {"parameter": "Pi Power6 rate", "value": f"{calib.pi_power6_rate:.2e} samples/s"},
        {"parameter": "Pi PPE rate", "value": f"{calib.pi_ppe_rate:.2e} samples/s"},
        {"parameter": "SPU init overhead", "value": f"{calib.pi_spu_init_s} s"},
        {"parameter": "RecordReader stream", "value": f"{calib.recordreader_stream_bw / MB:.0f} MB/s"},
        {"parameter": "HDFS block / record", "value": f"{calib.hdfs_block_bytes / MB:.0f} MB"},
        {"parameter": "SPU chunk", "value": f"{calib.cell_chunk_bytes} B"},
        {"parameter": "mappers per blade", "value": str(calib.mappers_per_node)},
        {"parameter": "heartbeat interval", "value": f"{calib.heartbeat_interval_s} s"},
        {"parameter": "GigE effective", "value": f"{calib.gige_bw / MB:.0f} MB/s"},
    ]
    print(format_table(rows), file=out)
    return 0


def _cmd_scenarios(out) -> int:
    rows = []
    for sc in all_scenarios():
        grid = "; ".join(f"{k}={','.join(str(v) for v in vs)}" for k, vs in sc.grid.items())
        fixed = "; ".join(f"{k}={v}" for k, v in sc.defaults.items()) or "-"
        rows.append({
            "scenario": sc.name,
            "figure": sc.figure or "-",
            "curves": len(sc.curves),
            "grid": grid,
            "fixed": fixed,
        })
    print(format_table(rows), file=out)
    print(file=out)
    print(EPILOG, file=out)
    return 0


def _cmd_schedulers(out) -> int:
    rows = []
    for name in scheduler_names():
        policy = resolve_scheduler(name)
        rows.append({
            "scheduler": name,
            "class": type(policy).__name__,
            "description": policy.describe(),
        })
    print(format_table(rows), file=out)
    print(file=out)
    print("Select with --scheduler, JobConf(scheduler=...), or "
          "SimulatedCluster(scheduler=...); see docs/SCHEDULING.md.", file=out)
    return 0


#: fig* command → scenario override builder. Each maps the command's
#: legacy flags onto registry overrides so the CLI surface is unchanged.
_FIG_OVERRIDES = {
    "fig2": lambda args: {},
    "fig4": lambda args: {"nodes": args.nodes},
    "fig5": lambda args: {"nodes": args.nodes, "data_gb": args.data_gb},
    "fig6": lambda args: {},
    "fig7": lambda args: {"nodes": args.nodes, "samples": args.samples},
    "fig8": lambda args: {"nodes": args.nodes, "samples": args.samples},
}


def _cmd_fig(args, out) -> int:
    result = run_sweep(
        args.command,
        _FIG_OVERRIDES[args.command](args),
        seed=args.seed,
        workers=args.workers,
    )
    _print_series(result.series, result.xlabel, result.ylabel, result.title, out)
    return 0


def _cmd_sweep(args, out) -> int:
    # Usage errors (unknown scenario, malformed/unknown grid values or
    # shard specs, inconsistent shard sets) get a friendly message +
    # exit 2; failures inside a running scenario propagate with their
    # traceback.
    from repro.experiments.cache import cached_sweep, prune_cache
    from repro.experiments.compare import compare_result_to_dir
    from repro.experiments.shard import (
        ShardError,
        merge_shards,
        parse_shard_spec,
        run_shard,
        write_shard,
    )

    cache_dir = args.cache_dir if args.cache_dir is not None else args.out / ".cache"
    if args.cache_prune:
        stats = prune_cache(cache_dir, max_age_days=args.max_age_days,
                            max_bytes=args.max_bytes)
        print(f"cache prune ({cache_dir}): removed {stats.removed}/"
              f"{stats.scanned} entries ({stats.freed_bytes} bytes freed), "
              f"{stats.kept} kept ({stats.kept_bytes} bytes)", file=out)
        return 0
    if args.shard is not None and args.merge is not None:
        print("error: --shard runs one partition, --merge reassembles "
              "finished ones; use one at a time", file=out)
        return 2
    if args.shard is not None and (args.compare or args.cache or args.no_save):
        # Refuse rather than silently ignore: a shard produces a partial
        # manifest, so there is nothing to compare/cache, and writing
        # the manifest is its entire purpose.
        print("error: --shard only writes a shard manifest; --compare/"
              "--cache/--no-save apply to full sweeps or --merge", file=out)
        return 2

    if args.merge is not None:
        try:
            result = merge_shards(args.merge)
        except ShardError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(f"merged {len(args.merge)} shard dir(s) into "
              f"{result.scenario}: {len(result.points)} points", file=out)
    else:
        if args.scenario is None:
            print("error: a scenario name is required unless --merge or "
                  "--cache-prune is given (see `repro scenarios`)", file=out)
            return 2
        try:
            overrides = parse_grid_overrides(args.grid)
            scenario = get_scenario(args.scenario).with_overrides(
                overrides, seed=args.seed
            )
            if args.shard is not None:
                index, count = parse_shard_spec(args.shard)
        except (GridError, KeyError, ShardError) as exc:
            msg = exc.args[0] if exc.args else str(exc)
            print(f"error: {msg}", file=out)
            return 2
        if args.shard is not None:
            manifest = run_shard(scenario, index, count, workers=args.workers)
            path = write_shard(manifest, args.out)
            print(f"shard {index}/{count} of {scenario.name}: ran "
                  f"{len(manifest['point_indices'])} of "
                  f"{len(scenario.points())} points in "
                  f"{manifest['elapsed_s']:.2f}s, wrote {path}", file=out)
            print("merge a complete set with: repro sweep --merge DIR...",
                  file=out)
            return 0
        if args.cache:
            result, hit = cached_sweep(scenario, workers=args.workers,
                                       cache_dir=cache_dir)
            if hit:
                print(f"cache hit ({cache_dir}): reusing stored series", file=out)
            elif result.cached_points:
                print(f"point cache ({cache_dir}): {result.executed_points} "
                      f"point(s) ran, {result.cached_points} assembled from "
                      f"cache", file=out)
        else:
            # -v also collects each point's telemetry snapshot (counters
            # ride back beside the timing data; canonical bytes are
            # unaffected because snapshots are non-canonical row extras).
            result = run_sweep(scenario, workers=args.workers,
                               collect_metrics=args.verbose)
    _print_series(result.series, result.xlabel, result.ylabel, result.title, out)
    print(file=out)
    print(sweep_summary(result.series, x_name=result.xlabel), file=out)
    if args.verbose:
        print(file=out)
        print(sweep_timing_table(result.points), file=out)
        metrics_block = sweep_metrics_table(result.points)
        if metrics_block:
            print(file=out)
            print(metrics_block, file=out)
        print(file=out)
        print(f"points: {result.executed_points} executed, "
              f"{result.cached_points} assembled from cache", file=out)
    print(file=out)
    method = f", {result.start_method} pool" if result.start_method else ""
    print(f"sweep {result.scenario}: {len(result.points)} points, "
          f"{result.workers} worker(s){method}, {result.elapsed_s:.2f}s, "
          f"sha256 {result.sha256()[:16]}", file=out)
    if not args.no_save:
        paths = save_sweep(result, args.out)
        print(f"wrote {paths['json']} {paths['csv']} {paths['meta']}", file=out)
    if args.compare is not None:
        report = compare_result_to_dir(result, args.compare)
        print(file=out)
        print(report.format(), file=out)
        if report.has_drift:
            return 3
    return 0


def _cmd_serve(args, out) -> int:
    from repro.serve import ReproServer
    from repro.serve.logs import configure_logging

    if (args.port is None) == (args.socket is None):
        print("error: exactly one of --port and --socket is required", file=out)
        return 2
    configure_logging(args.log_level, json_mode=args.log_json)
    server = ReproServer(
        port=args.port,
        socket_path=args.socket,
        host=args.host,
        workers=args.workers,
        cache_dir=args.cache_dir,
        abandon_timeout_s=args.abandon_timeout or None,
    )
    server.start()
    cache = f", cache {args.cache_dir}" if args.cache_dir else ""
    print(f"repro serve: listening on {server.endpoint()} "
          f"({server.workers} worker(s){cache}); stop with "
          f"`repro submit --shutdown`", file=out)
    out.flush()
    try:
        server.wait()
    except KeyboardInterrupt:
        server.shutdown(mode="now")
    print("repro serve: shut down cleanly", file=out)
    return 0


def _cmd_fleet_serve(args, out) -> int:
    # Exit codes: 0 sweep completed, 1 fleet failure (dead fleet,
    # poison points), 2 usage, 7 deliberate chaos crash (journal kept).
    from repro.fabric import FleetCoordinator, TrackerConfig
    from repro.fabric.chaos import CoordinatorChaos
    from repro.serve.logs import configure_logging

    if (args.port is None) == (args.socket is None):
        print("error: exactly one of --port and --socket is required",
              file=out)
        return 2
    configure_logging(args.log_level, json_mode=args.log_json)
    chaos = (CoordinatorChaos(crash_after_results=args.chaos_crash_after)
             if args.chaos_crash_after is not None else None)
    try:
        overrides = parse_grid_overrides(args.grid)
        coord = FleetCoordinator(
            args.scenario, overrides, seed=args.seed,
            port=args.port, socket_path=args.socket, host=args.host,
            config=TrackerConfig(
                worker_timeout_s=args.worker_timeout,
                lease_timeout_s=args.lease_timeout,
                batch_size=args.batch_size,
                max_attempts=args.max_attempts,
                retry_backoff_s=args.retry_backoff,
            ),
            journal_path=args.journal, cache_dir=args.cache_dir,
            no_worker_timeout_s=args.no_worker_timeout,
            linger_s=args.linger, chaos=chaos,
        )
    except (GridError, KeyError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"error: {msg}", file=out)
        return 2
    coord.start()
    resumed = len(coord.journal.resumed) if coord.journal else 0
    via = f", resuming {resumed} journaled point(s)" if resumed else ""
    print(f"repro fleet: coordinating {coord.scenario.name} "
          f"({coord.total} points) on {coord.endpoint()}{via}; join with "
          f"`repro fleet worker --connect {coord.endpoint()}`", file=out)
    out.flush()
    try:
        coord.wait()
    except KeyboardInterrupt:
        coord.close()
        print("fleet: interrupted", file=out)
        return 1
    if coord.crashed:
        print(f"fleet: {coord.error}", file=out)
        return 7
    if coord.result is None:
        print(f"error: {coord.error}", file=out)
        return 1
    result = coord.result
    stats = coord.stats()
    _print_series(result.series, result.xlabel, result.ylabel,
                  result.title, out)
    print(file=out)
    print(sweep_summary(result.series, x_name=result.xlabel), file=out)
    print(file=out)
    print(f"fleet {result.scenario}: {len(result.points)} points "
          f"({stats['results_accepted']} from workers, "
          f"{result.cached_points} prefilled), "
          f"{stats['redispatched']} re-dispatched, "
          f"{stats['duplicates']} duplicates dropped, "
          f"{stats['speculative_wins']} speculative win(s), "
          f"sha256 {result.sha256()[:16]}", file=out)
    if args.out is not None:
        paths = save_sweep(result, args.out)
        print(f"wrote {paths['json']} {paths['csv']} {paths['meta']}",
              file=out)
    return 0


def _cmd_fleet_worker(args, out) -> int:
    # Exit codes: 0 sweep done, 1 fleet aborted/unreachable, 2 usage,
    # 7 deliberate chaos death.
    from repro.fabric import FleetError, FleetWorker
    from repro.fabric.chaos import WorkerChaos
    from repro.serve import Address
    from repro.serve.logs import configure_logging

    if (args.connect is None) == (args.socket is None):
        print("error: exactly one of --connect and --socket is required",
              file=out)
        return 2
    configure_logging(args.log_level, json_mode=args.log_json)
    address = Address.parse(args.connect, args.socket)
    chaos = (WorkerChaos(kill_after_results=args.chaos_kill_after)
             if args.chaos_kill_after is not None else None)
    worker = FleetWorker(
        address, name=args.name, capacity=args.capacity,
        heartbeat_s=args.heartbeat, cache_dir=args.cache_dir,
        reconnect_timeout_s=args.reconnect_timeout, chaos=chaos,
    )
    try:
        report = worker.run()
    except FleetError as exc:
        print(f"error: {exc}", file=out)
        return 1
    if report["killed"]:
        print(f"worker {report['worker']}: chaos-killed after "
              f"{report['results_sent']} result(s)", file=out)
        return 7
    print(f"worker {report['worker']}: done — {report['results_sent']} "
          f"result(s) delivered, {report['cache_hits']} from point cache, "
          f"{report['reconnects']} reconnect(s)", file=out)
    return 0


def _print_served_result(event, args, out) -> int:
    import json as _json

    from repro.experiments.driver import SweepResult

    result = SweepResult.from_dict(_json.loads(event["payload"]))
    _print_series(result.series, result.xlabel, result.ylabel, result.title, out)
    print(file=out)
    print(sweep_summary(result.series, x_name=result.xlabel), file=out)
    print(file=out)
    origin = ("whole-sweep cache" if event.get("cache_hit")
              else f"{event.get('executed_points', 0)} executed, "
                   f"{event.get('cached_points', 0)} from point cache")
    print(f"served {result.scenario}: {len(result.points)} points "
          f"({origin}), sha256 {event['sha256'][:16]}", file=out)
    if args.out is not None:
        paths = save_sweep(result, args.out)
        print(f"wrote {paths['json']} {paths['csv']} {paths['meta']}", file=out)
    return 0


def _stream_submit(address, request, args, out) -> Optional[int]:
    """One submit attempt against the daemon. Returns an exit code, or
    None when the server closed the stream without a terminal event —
    a mid-stream disconnect the caller may retry (submits coalesce, so
    a retry attaches to the in-flight job rather than recomputing)."""
    from repro.serve import request_stream

    for event in request_stream(address, request):
        kind = event.get("event")
        if kind == "accepted":
            via = " (coalesced onto in-flight job)" if event["coalesced"] else ""
            print(f"accepted {event['job']}{via}: {event['done']}/"
                  f"{event['total']} points, key "
                  f"{event['request_key'][:16]}", file=out)
            if args.detach:
                print(f"detached; poll with: repro submit --status "
                      f"{event['job']}", file=out)
                return 0
        elif kind == "point" and args.verbose:
            params = " ".join(f"{k}={v}" for k, v in event["params"].items())
            print(f"  point {event['done']}/{event['total']}: {params}",
                  file=out)
        elif kind == "result":
            return _print_served_result(event, args, out)
        elif kind == "cancelled":
            print(f"job {event['job']} cancelled", file=out)
            return 3
        elif kind == "error":
            print(f"error: {event['message']}", file=out)
            return 1 if "job" in event else 2
    return None


def _cmd_submit(args, out) -> int:
    # Exit codes mirror `repro sweep`, with one addition: 0 served,
    # 1 job failed, 2 usage/protocol error, 3 job cancelled, 4 daemon
    # unreachable (connection refused, dead socket, or a mid-stream
    # disconnect that survived every --retries attempt) — so scripts
    # can tell "the job is bad" from "the daemon is down".
    from repro.analysis.report import serve_jobs_table
    from repro.serve import (
        Address,
        ProtocolError,
        protocol,
        request_one,
        retry_delays,
    )

    try:
        address = Address.parse(args.connect, args.socket)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.retries < 0 or args.backoff < 0:
        print("error: --retries and --backoff must be >= 0", file=out)
        return 2

    control = [opt for opt in ("status", "cancel", "shutdown")
               if getattr(args, opt) is not None]
    if args.metrics:
        control.append("metrics")
    if len(control) > 1 or (control and args.scenario is not None):
        print("error: --status/--cancel/--shutdown/--metrics are exclusive "
              "control verbs and take no scenario", file=out)
        return 2

    try:
        if args.metrics:
            event = request_one(address, {"verb": "metrics"})
            if event.get("event") == "error":
                print(f"error: {event['message']}", file=out)
                return 2
            print(event["text"], end="", file=out)
            return 0
        if args.status is not None:
            msg = {"verb": "status"}
            if args.status:
                msg["job"] = args.status
            event = request_one(address, msg)
            if event.get("event") == "error":
                print(f"error: {event['message']}", file=out)
                return 2
            print(serve_jobs_table(event["jobs"]), file=out)
            stats = event["stats"]
            print(file=out)
            print(f"daemon: {stats['active_jobs']} active / {stats['jobs']} "
                  f"job(s), {stats['coalesced_submits']} coalesced submit(s), "
                  f"{stats['points_executed']} point(s) executed, "
                  f"{stats['cache_hits']} cache hit(s), "
                  f"{stats['workers']} worker(s), "
                  f"up {stats['uptime_s']:.1f}s", file=out)
            row = event["jobs"][0] if args.status and event["jobs"] else None
            if row is not None and "payload" in row and args.out is not None:
                return _print_served_result(
                    {**row, "event": "result", "payload": row["payload"]},
                    args, out)
            return 0
        if args.cancel is not None:
            event = request_one(address, {"verb": "cancel", "job": args.cancel})
            print(f"cancel {args.cancel}: {event['state']}", file=out)
            return 0 if event.get("ok") else 2
        if args.shutdown is not None:
            event = request_one(
                address, {"verb": "shutdown", "mode": args.shutdown})
            print(f"shutdown ({args.shutdown}): "
                  f"{'ok' if event.get('ok') else event}", file=out)
            return 0 if event.get("ok") else 2

        if args.scenario is None:
            print("error: a scenario name is required unless --status/"
                  "--cancel/--shutdown is given", file=out)
            return 2
        try:
            overrides = parse_grid_overrides(args.grid)
        except GridError as exc:
            msg = exc.args[0] if exc.args else str(exc)
            print(f"error: {msg}", file=out)
            return 2
        request = protocol.submit_request(
            args.scenario, overrides, seed=args.seed, detach=args.detach
        )
    except ProtocolError as exc:
        print(f"error: daemon at {address} answered garbage: {exc}", file=out)
        return 2
    except OSError as exc:
        print(f"error: cannot reach daemon at {address}: {exc}", file=out)
        return 4

    delays = retry_delays(args.retries, args.backoff)
    attempt = 0
    while True:
        try:
            code = _stream_submit(address, request, args, out)
            failure = ("server closed the connection without a terminal "
                       "event") if code is None else None
        except ProtocolError as exc:
            print(f"error: daemon at {address} answered garbage: {exc}",
                  file=out)
            return 2
        except OSError as exc:
            code, failure = None, str(exc)
        if code is not None:
            return code
        delay = next(delays, None)
        if delay is None:
            print(f"error: cannot reach daemon at {address}: {failure}"
                  + (f" (after {attempt} retr"
                     f"{'y' if attempt == 1 else 'ies'})" if attempt else ""),
                  file=out)
            return 4
        attempt += 1
        print(f"daemon at {address} unreachable ({failure}); retry "
              f"{attempt}/{args.retries} in {delay:.2f}s", file=out)
        out.flush()
        time.sleep(delay)


def _resolve_point(args, out):
    """Bind scenario + --grid + --point to one grid config.

    Returns ``(scenario, cfg, 0)`` or ``(None, None, 2)`` after printing
    a usage error — the shared front half of `repro trace` / `repro
    metrics`, which both run exactly one point in-process.
    """
    try:
        overrides = parse_grid_overrides(args.grid)
        sc = get_scenario(args.scenario).with_overrides(overrides, seed=args.seed)
    except (GridError, KeyError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"error: {msg}", file=out)
        return None, None, 2
    points = sc.points()
    if not 0 <= args.point < len(points):
        print(f"error: --point {args.point} out of range; {sc.name} has "
              f"{len(points)} point(s)", file=out)
        return None, None, 2
    return sc, points[args.point], 0


def _point_params(cfg) -> str:
    return " ".join(f"{k}={v}" for k, v in cfg.items() if k != "seed")


def _cmd_trace(args, out) -> int:
    import repro.obs as obs
    from repro.obs.traceexport import TraceCollector, write_chrome_trace

    sc, cfg, code = _resolve_point(args, out)
    if sc is None:
        return code
    collector = TraceCollector()
    previous = obs.set_trace_collector(collector)
    try:
        values = dict(sc.run_point(cfg))
    finally:
        obs.set_trace_collector(previous)
    trace = write_chrome_trace(args.out, collector=collector)
    print(f"traced {sc.name} point {args.point}: {_point_params(cfg)}", file=out)
    print("values: " + " ".join(f"{k}={v}" for k, v in values.items()), file=out)
    dropped = (f", {collector.dropped} record(s) ring-dropped"
               if collector.dropped else "")
    print(f"wrote {args.out}: {len(trace['traceEvents'])} events "
          f"({collector.span_count()} spans, {collector.record_count()} "
          f"instants) from {len(collector.tracers)} tracer(s){dropped}",
          file=out)
    print("open at https://ui.perfetto.dev or chrome://tracing", file=out)
    return 0


def _cmd_metrics(args, out) -> int:
    import repro.obs as obs

    sc, cfg, code = _resolve_point(args, out)
    if sc is None:
        return code
    previous = obs.set_obs(True)
    obs.reset_registry()
    try:
        values = dict(sc.run_point(cfg))
        snapshot = obs.registry().snapshot()
    finally:
        obs.set_obs(previous)
    print(f"metrics for {sc.name} point {args.point}: {_point_params(cfg)}",
          file=out)
    print("values: " + " ".join(f"{k}={v}" for k, v in values.items()), file=out)
    print(file=out)
    print(metrics_snapshot_table(snapshot), file=out)
    print(file=out)
    print(timeseries_summary_table(snapshot), file=out)
    return 0


def _cluster_mix(backend: Backend) -> dict:
    """Node-hardware mix implied by the chosen backend: the gpu alias
    needs GPU-equipped (not Cell-equipped) workers to schedule onto."""
    if backend is Backend.GPU_TESLA:
        return {"accelerated_fraction": 0.0, "gpu_fraction": 1.0}
    return {}


def _cmd_encrypt(args, out) -> int:
    backend = BACKENDS[args.backend]
    if backend is Backend.EMPTY:
        result = run_empty_job(args.nodes, args.data_gb * GB, seed=args.seed,
                               scheduler=args.scheduler)
    else:
        result = run_encryption_job(
            args.nodes, args.data_gb * GB, backend, seed=args.seed,
            scheduler=args.scheduler, **_cluster_mix(backend),
        )
    _print_job(result, out)
    return 0 if result.succeeded else 1


def _cmd_pi(args, out) -> int:
    backend = BACKENDS[args.backend]
    result = run_pi_job(
        args.nodes, args.samples, backend, seed=args.seed,
        scheduler=args.scheduler, **_cluster_mix(backend),
    )
    _print_job(result, out)
    return 0 if result.succeeded else 1


def _cmd_multijob(args, out) -> int:
    churn = None
    if args.churn:
        try:
            churn = ChurnPlan.parse(args.churn)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    mix = run_workload_mix(
        args.nodes,
        num_jobs=args.jobs,
        scheduler=args.scheduler,
        stagger_s=args.stagger,
        data_gb=args.data_gb,
        samples=args.samples,
        accelerated_fraction=args.accelerated_fraction,
        seed=args.seed,
        churn=churn,
    )
    print(format_table([r.summary() for r in mix.results]), file=out)
    print(file=out)
    per_workload: dict[str, list[float]] = {}
    for r in mix.results:
        per_workload.setdefault(r.name.rsplit("-", 1)[0], []).append(r.makespan_s)
    print(tenant_latency_table(per_workload), file=out)
    print(file=out)
    print(format_table([{
        "scheduler": args.scheduler,
        "jobs": len(mix.results),
        "workload_makespan_s": round(mix.makespan_s, 3),
        "mean_completion_s": round(mix.mean_completion_s, 3),
        "remote_fraction": round(mix.remote_fraction, 4),
    }]), file=out)
    print(file=out)
    print(decision_counters_table({mix.scheduler: mix.decision_counters}),
          file=out)
    return 0 if mix.succeeded else 1


def _print_job(result, out) -> None:
    print(format_table([result.summary()]), file=out)
    breakdown = analyze_job(result, PAPER_CALIBRATION)
    print(file=out)
    print(format_table([breakdown.summary()]), file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "scenarios":
        return _cmd_scenarios(out)
    if args.command == "schedulers":
        return _cmd_schedulers(out)
    if args.command in _FIG_OVERRIDES:
        return _cmd_fig(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "submit":
        return _cmd_submit(args, out)
    if args.command == "fleet":
        if args.fleet_command == "serve":
            return _cmd_fleet_serve(args, out)
        return _cmd_fleet_worker(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "metrics":
        return _cmd_metrics(args, out)
    if args.command == "encrypt":
        return _cmd_encrypt(args, out)
    if args.command == "pi":
        return _cmd_pi(args, out)
    if args.command == "multijob":
        return _cmd_multijob(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
