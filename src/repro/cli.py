"""Command-line interface for the reproduction.

Run paper experiments and ad-hoc jobs without writing code::

    python -m repro fig2                     # raw encryption figure
    python -m repro fig5 --data-gb 60        # fixed-dataset sweep
    python -m repro fig8 --samples 1e11
    python -m repro encrypt --nodes 16 --data-gb 32 --backend cell
    python -m repro pi --nodes 50 --samples 3e12 --backend java
    python -m repro info                     # calibration summary

Output is the same series-table + ASCII chart format the benchmark
harness prints.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import Series, ascii_chart
from repro.analysis.report import format_table, series_table
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core import (
    raw_encryption_bandwidth,
    raw_pi_rates,
    run_empty_job,
    run_encryption_job,
    run_pi_job,
)
from repro.hadoop.metrics import analyze_job

__all__ = ["main", "build_parser"]

BACKENDS = {
    "java": Backend.JAVA_PPE,
    "java-ppe": Backend.JAVA_PPE,
    "java-power6": Backend.JAVA_POWER6,
    "cell": Backend.CELL_SPE_DIRECT,
    "cell-mr": Backend.CELL_SPE_MAPREDUCE,
    "empty": Backend.EMPTY,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Speeding Up Distributed MapReduce "
        "Applications Using Hardware Accelerators' (ICPP 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the calibration profile")

    sub.add_parser("fig2", help="raw node encryption bandwidth (Fig. 2)")
    sub.add_parser("fig6", help="raw node Pi rates (Fig. 6)")

    p4 = sub.add_parser("fig4", help="proportional-dataset encryption (Fig. 4)")
    p4.add_argument("--nodes", type=int, nargs="*", default=[12, 24, 36, 48, 60])

    p5 = sub.add_parser("fig5", help="fixed-dataset encryption (Fig. 5)")
    p5.add_argument("--nodes", type=int, nargs="*", default=[4, 8, 16, 32, 64])
    p5.add_argument("--data-gb", type=float, default=120.0)

    p7 = sub.add_parser("fig7", help="distributed Pi sample sweep (Fig. 7)")
    p7.add_argument("--nodes", type=int, default=50)
    p7.add_argument(
        "--samples", type=float, nargs="*",
        default=[3e3, 3e5, 3e7, 3e9, 3e11, 3e12],
    )

    p8 = sub.add_parser("fig8", help="distributed Pi node scaling (Fig. 8)")
    p8.add_argument("--nodes", type=int, nargs="*", default=[4, 8, 16, 32, 64])
    p8.add_argument("--samples", type=float, default=1e11)

    pe = sub.add_parser("encrypt", help="one distributed encryption job")
    pe.add_argument("--nodes", type=int, default=8)
    pe.add_argument("--data-gb", type=float, default=16.0)
    pe.add_argument("--backend", choices=sorted(BACKENDS), default="cell")
    pe.add_argument("--seed", type=int, default=1234)

    pp = sub.add_parser("pi", help="one distributed Pi job")
    pp.add_argument("--nodes", type=int, default=8)
    pp.add_argument("--samples", type=float, default=1e10)
    pp.add_argument("--backend", choices=sorted(BACKENDS), default="cell")
    pp.add_argument("--seed", type=int, default=1234)

    return parser


def _print_series(series: list[Series], x_name: str, ylabel: str, title: str, out) -> None:
    print(title, file=out)
    print(series_table(series, x_name=x_name), file=out)
    print(file=out)
    print(ascii_chart(series, title=title, xlabel=x_name, ylabel=ylabel), file=out)


def _cmd_info(out) -> int:
    calib = PAPER_CALIBRATION
    rows = [
        {"parameter": "AES Cell direct plateau", "value": f"{calib.aes_cell_direct_bw / MB:.0f} MB/s"},
        {"parameter": "AES MR-Cell plateau", "value": f"{calib.aes_cell_mr_bw / MB:.0f} MB/s"},
        {"parameter": "AES Power6", "value": f"{calib.aes_power6_bw / MB:.0f} MB/s"},
        {"parameter": "AES PPE", "value": f"{calib.aes_ppe_bw / MB:.0f} MB/s"},
        {"parameter": "Pi Cell rate", "value": f"{calib.pi_cell_rate:.2e} samples/s"},
        {"parameter": "Pi Power6 rate", "value": f"{calib.pi_power6_rate:.2e} samples/s"},
        {"parameter": "Pi PPE rate", "value": f"{calib.pi_ppe_rate:.2e} samples/s"},
        {"parameter": "SPU init overhead", "value": f"{calib.pi_spu_init_s} s"},
        {"parameter": "RecordReader stream", "value": f"{calib.recordreader_stream_bw / MB:.0f} MB/s"},
        {"parameter": "HDFS block / record", "value": f"{calib.hdfs_block_bytes / MB:.0f} MB"},
        {"parameter": "SPU chunk", "value": f"{calib.cell_chunk_bytes} B"},
        {"parameter": "mappers per blade", "value": str(calib.mappers_per_node)},
        {"parameter": "heartbeat interval", "value": f"{calib.heartbeat_interval_s} s"},
        {"parameter": "GigE effective", "value": f"{calib.gige_bw / MB:.0f} MB/s"},
    ]
    print(format_table(rows), file=out)
    return 0


def _cmd_fig4(nodes, out) -> int:
    calib = PAPER_CALIBRATION
    series = []
    for label, backend in (("Java Mapper", Backend.JAVA_PPE),
                           ("Cell BE Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for n in nodes:
            r = run_encryption_job(n, n * calib.mappers_per_node * GB, backend)
            s.append(n, r.makespan_s)
        series.append(s)
    _print_series(series, "Nodes", "Time (s)", "Fig. 4: 1 GB per mapper", out)
    return 0


def _cmd_fig5(nodes, data_gb, out) -> int:
    series = []
    for label, backend in (("Empty Mapper", Backend.EMPTY),
                           ("Java Mapper", Backend.JAVA_PPE),
                           ("Cell Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for n in nodes:
            r = (run_empty_job(n, data_gb * GB) if backend is Backend.EMPTY
                 else run_encryption_job(n, data_gb * GB, backend))
            s.append(n, r.makespan_s)
        series.append(s)
    _print_series(series, "Nodes", "Time (s)", f"Fig. 5: {data_gb:.0f} GB fixed", out)
    return 0


def _cmd_fig7(nodes, samples, out) -> int:
    series = []
    for label, backend in (("Java Mapper", Backend.JAVA_PPE),
                           ("Cell BE Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for c in samples:
            r = run_pi_job(nodes, c, backend)
            s.append(c, r.makespan_s)
        series.append(s)
    _print_series(series, "Samples", "Time (s)", f"Fig. 7: Pi on {nodes} nodes", out)
    return 0


def _cmd_fig8(nodes, samples, out) -> int:
    series = []
    for label, backend, mult in (
        ("Java Mapper", Backend.JAVA_PPE, 1),
        ("Cell BE Mapper", Backend.CELL_SPE_DIRECT, 1),
        ("Cell BE Mapper (10x)", Backend.CELL_SPE_DIRECT, 10),
    ):
        s = Series(label)
        for n in nodes:
            r = run_pi_job(n, samples * mult, backend)
            s.append(n, r.makespan_s)
        series.append(s)
    _print_series(series, "Nodes", "Time (s)", f"Fig. 8: Pi of {samples:.0e} samples", out)
    return 0


def _cmd_encrypt(args, out) -> int:
    backend = BACKENDS[args.backend]
    if backend is Backend.EMPTY:
        result = run_empty_job(args.nodes, args.data_gb * GB, seed=args.seed)
    else:
        result = run_encryption_job(args.nodes, args.data_gb * GB, backend, seed=args.seed)
    _print_job(result, out)
    return 0 if result.succeeded else 1


def _cmd_pi(args, out) -> int:
    result = run_pi_job(args.nodes, args.samples, BACKENDS[args.backend], seed=args.seed)
    _print_job(result, out)
    return 0 if result.succeeded else 1


def _print_job(result, out) -> None:
    print(format_table([result.summary()]), file=out)
    breakdown = analyze_job(result, PAPER_CALIBRATION)
    print(file=out)
    print(format_table([breakdown.summary()]), file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "fig2":
        _print_series(raw_encryption_bandwidth(), "Size(MB)", "MB/s", "Fig. 2", out)
        return 0
    if args.command == "fig6":
        _print_series(raw_pi_rates(), "Samples", "Samples/sec", "Fig. 6", out)
        return 0
    if args.command == "fig4":
        return _cmd_fig4(args.nodes, out)
    if args.command == "fig5":
        return _cmd_fig5(args.nodes, args.data_gb, out)
    if args.command == "fig7":
        return _cmd_fig7(args.nodes, args.samples, out)
    if args.command == "fig8":
        return _cmd_fig8(args.nodes, args.samples, out)
    if args.command == "encrypt":
        return _cmd_encrypt(args, out)
    if args.command == "pi":
        return _cmd_pi(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
