"""Calibrated performance models.

All magic numbers of the reproduction live in
:mod:`repro.perf.calibration`; each value carries a docstring citing the
sentence of the paper (or the derivation) that justifies it. Kernel
timing models live in :mod:`repro.perf.kernels`; the §V energy-ablation
model lives in :mod:`repro.perf.energy`.
"""

from repro.perf.calibration import (
    CalibrationProfile,
    PAPER_CALIBRATION,
    Backend,
)
from repro.perf.kernels import KernelPerfModel, RatePerfModel, SamplesPerfModel
from repro.perf.energy import EnergyModel, PowerSpec

__all__ = [
    "Backend",
    "CalibrationProfile",
    "EnergyModel",
    "KernelPerfModel",
    "PAPER_CALIBRATION",
    "PowerSpec",
    "RatePerfModel",
    "SamplesPerfModel",
]
