"""Energy model for the paper's §V open issue.

The paper argues that even when acceleration does not shorten a
data-intensive job (the data path is the bottleneck), doing the kernel
work on specialized cores "in shorter time, more efficiently" saves
energy. This module quantifies that claim for the simulated testbed: a
blade's energy is integrated from per-component busy/idle intervals that
the job simulation reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.calibration import Backend, CalibrationProfile

__all__ = ["EnergyModel", "PowerSpec", "EnergyBreakdown"]


@dataclass(frozen=True)
class PowerSpec:
    """Power draw of one compute element in watts."""

    active_w: float
    idle_w: float

    def energy_j(self, busy_s: float, total_s: float) -> float:
        """Energy for ``busy_s`` active seconds within a ``total_s`` window."""
        if busy_s < 0 or total_s < 0 or busy_s > total_s + 1e-9:
            raise ValueError(f"invalid interval: busy={busy_s}, total={total_s}")
        return self.active_w * busy_s + self.idle_w * (total_s - busy_s)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-node energy report for one job."""

    compute_j: float
    base_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.base_j


class EnergyModel:
    """Computes per-node job energy for a kernel backend.

    The model distinguishes the *kernel-busy* time (when the compute
    element draws active power) from the job makespan (when the blade
    draws base power regardless). An accelerated mapper that finishes its
    kernel work in a fraction of the makespan idles its SPEs for the rest
    — that asymmetry is the entire energy argument.
    """

    def __init__(self, calib: CalibrationProfile):
        self.calib = calib
        self._specs = {
            Backend.CELL_SPE_DIRECT: PowerSpec(calib.power_cell_active_w, calib.power_cell_idle_w),
            Backend.CELL_SPE_MAPREDUCE: PowerSpec(calib.power_cell_active_w, calib.power_cell_idle_w),
            Backend.JAVA_PPE: PowerSpec(calib.power_ppe_only_active_w, calib.power_cell_idle_w),
            Backend.JAVA_POWER6: PowerSpec(calib.power_power6_active_w, calib.power_power6_idle_w),
            Backend.GPU_TESLA: PowerSpec(calib.power_gpu_active_w, calib.power_gpu_idle_w),
            Backend.EMPTY: PowerSpec(calib.power_cell_idle_w, calib.power_cell_idle_w),
        }

    def power_spec(self, backend: Backend) -> PowerSpec:
        return self._specs[backend]

    def node_energy(self, backend: Backend, kernel_busy_s: float, makespan_s: float) -> EnergyBreakdown:
        """Energy of one node that was kernel-busy for ``kernel_busy_s``
        within a job lasting ``makespan_s``."""
        spec = self._specs[backend]
        busy = min(kernel_busy_s, makespan_s)
        compute = spec.energy_j(busy, makespan_s)
        base = self.calib.power_blade_base_w * makespan_s
        return EnergyBreakdown(compute_j=compute, base_j=base)

    def job_energy(
        self, backend: Backend, kernel_busy_s: float, makespan_s: float, nodes: int
    ) -> float:
        """Total joules for ``nodes`` identical nodes running one job."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        per_node = self.node_energy(backend, kernel_busy_s, makespan_s)
        return per_node.total_j * nodes
