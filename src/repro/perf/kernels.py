"""Analytic kernel timing models.

Two families cover both workloads:

- :class:`RatePerfModel` — time for *bytes* processed at a plateau
  bandwidth after a one-time startup (AES and other streaming kernels).
- :class:`SamplesPerfModel` — time for *samples* computed at a plateau
  rate after a one-time startup (Monte-Carlo Pi).

These models give the single-node "raw" curves (Figs. 2 and 6). Inside
the cluster simulation, the Cell backends are additionally represented by
the event-accurate :mod:`repro.cell` runtimes; the analytic plateau is
the closed form of that runtime's steady state, and a property test pins
the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.calibration import Backend, CalibrationProfile

__all__ = ["KernelPerfModel", "RatePerfModel", "SamplesPerfModel", "make_aes_model", "make_pi_model"]


class KernelPerfModel:
    """Base class: maps a work amount to a duration in seconds."""

    def time_for(self, work: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def time_for_batch(self, works) -> np.ndarray:
        """Durations for a whole wave of work amounts at once.

        Returns a float64 array aligned with ``works``. The base
        implementation is the scalar loop; the analytic subclasses
        override it with one array expression that is bit-identical to
        the scalar path (same IEEE-754 operation order per element), so
        callers may batch without perturbing golden-pinned timings.
        """
        return np.array([self.time_for(float(w)) for w in works], dtype=np.float64)

    def effective_rate(self, work: float) -> float:
        """Work units per second including startup amortization."""
        t = self.time_for(work)
        if t <= 0:
            return float("inf")
        return work / t


@dataclass(frozen=True)
class RatePerfModel(KernelPerfModel):
    """``time = startup + bytes / bandwidth`` streaming model.

    ``bandwidth`` of ``inf`` models the EmptyMapper (zero compute).
    """

    bandwidth_bps: float
    startup_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.startup_s < 0:
            raise ValueError("startup must be non-negative")

    def time_for(self, work: float) -> float:
        if work < 0:
            raise ValueError("work must be non-negative")
        if work == 0:
            return 0.0
        return self.startup_s + work / self.bandwidth_bps

    def time_for_batch(self, works) -> np.ndarray:
        w = np.asarray(works, dtype=np.float64)
        if w.size and w.min() < 0:
            raise ValueError("work must be non-negative")
        # Same per-element operation order as time_for: divide, then add.
        return np.where(w == 0.0, 0.0, self.startup_s + w / self.bandwidth_bps)


@dataclass(frozen=True)
class SamplesPerfModel(KernelPerfModel):
    """``time = startup + samples / rate`` compute model."""

    rate_per_s: float
    startup_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if self.startup_s < 0:
            raise ValueError("startup must be non-negative")

    def time_for(self, work: float) -> float:
        if work < 0:
            raise ValueError("work must be non-negative")
        if work == 0:
            return 0.0
        return self.startup_s + work / self.rate_per_s

    def time_for_batch(self, works) -> np.ndarray:
        w = np.asarray(works, dtype=np.float64)
        if w.size and w.min() < 0:
            raise ValueError("work must be non-negative")
        return np.where(w == 0.0, 0.0, self.startup_s + w / self.rate_per_s)


def make_aes_model(calib: CalibrationProfile, backend: Backend) -> RatePerfModel:
    """AES timing model for ``backend`` under ``calib``."""
    return RatePerfModel(
        bandwidth_bps=calib.aes_backend_bw(backend),
        startup_s=calib.kernel_startup_s(backend, "aes"),
    )


def make_pi_model(calib: CalibrationProfile, backend: Backend) -> SamplesPerfModel:
    """Monte-Carlo Pi timing model for ``backend`` under ``calib``."""
    return SamplesPerfModel(
        rate_per_s=calib.pi_backend_rate(backend),
        startup_s=calib.kernel_startup_s(backend, "pi"),
    )
