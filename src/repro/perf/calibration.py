"""Calibration constants anchored to the paper's reported measurements.

The reproduction runs on a discrete-event simulator, so absolute rates are
*calibrated*, not measured. Every constant here is traceable either to an
explicit number in the paper (cited in the field docs) or to a derivation
from the paper's hardware description (Cell BE at 3.2 GHz, GigE, Hadoop
0.19 defaults). The benchmark harness only claims to reproduce *shapes* —
who wins, by what factor, where crossovers fall — and those shapes follow
from the ratios fixed here plus the simulated Hadoop mechanisms.

Unit conventions: bytes, seconds, samples. ``MB`` is 2**20 bytes.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace

__all__ = ["Backend", "CalibrationProfile", "PAPER_CALIBRATION", "MB", "GB", "KB"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class Backend(enum.Enum):
    """Kernel execution backends, mirroring the paper's four configurations.

    - ``JAVA_PPE``     — the pure-Java kernel on the Cell's PPE core
      (what a stock Hadoop TaskTracker on a QS22 runs).
    - ``JAVA_POWER6``  — the pure-Java kernel on a Power6 core (JS22).
    - ``CELL_SPE_DIRECT`` — the paper's first native library: a direct
      pthread-style offload runtime over the 8 SPEs.
    - ``CELL_SPE_MAPREDUCE`` — the proxy to the de Kruijf & Sankaralingam
      MapReduce-for-Cell framework (PPE input-copy overhead; single-node
      experiment only, as in the paper).
    - ``GPU_TESLA``    — the extension backend (§I: "may be easily
      extended to take advantage of other existing accelerators ...
      such as GPUs"): a Tesla-C1060-class device behind the same
      offload interface.
    - ``EMPTY``        — the paper's EmptyMapper: reads input, computes
      nothing, collects no output (Hadoop-overhead probe).
    """

    JAVA_PPE = "java_ppe"
    JAVA_POWER6 = "java_power6"
    CELL_SPE_DIRECT = "cell_spe_direct"
    CELL_SPE_MAPREDUCE = "cell_spe_mapreduce"
    GPU_TESLA = "gpu_tesla"
    EMPTY = "empty"


@dataclass(frozen=True)
class CalibrationProfile:
    """All tunable rates/overheads of the simulated testbed.

    Instances are immutable; derive variants with :meth:`evolve` (used by
    the ablation benches, e.g. sweeping the record size or disabling the
    accelerator on a fraction of nodes).
    """

    # ------------------------------------------------------------------ #
    # Cell BE micro-architecture (paper §II-B)                           #
    # ------------------------------------------------------------------ #
    cell_clock_hz: float = 3.2e9
    """QS22 blades carry "2x 3.2Ghz Cell processors" (§IV)."""

    spes_per_cell: int = 8
    """"one 64-bit Power Processing Element ... and eight Synergistic
    Processing Elements" (§II-B)."""

    local_store_bytes: int = 256 * KB
    """"18-bit addresses to access a 256K Local Store" (§II-B)."""

    dma_max_inflight: int = 16
    """"The DMA engine can support up to 16 concurrent requests" (§II-B)."""

    dma_max_request_bytes: int = 16 * KB
    """"...of up to 16K" per DMA request (§II-B)."""

    dma_bus_bytes_per_cycle: float = 8.0
    """"bandwidth between the DMA engine and the bus is 8 bytes per cycle
    in each direction" (§II-B) → 25.6 GB/s at 3.2 GHz."""

    dma_request_latency_s: float = 200 / 3.2e9
    """~200-cycle DMA issue/completion latency (typical published Cell
    figure; only visible for tiny transfers)."""

    simd_vector_bytes: int = 16
    """"vector operations that operate on memory contiguous data sets of
    16 bytes" with 16-byte alignment required (§II-B)."""

    # ------------------------------------------------------------------ #
    # AES-128 kernel rates (calibrated to Fig. 2 plateaus)               #
    # ------------------------------------------------------------------ #
    aes_cell_direct_bw: float = 700 * MB
    """"the maximum data rate at which one Cell processor can encrypt data
    is near 700MB/s" (§IV-A, Fig. 2) — per Cell processor (8 SPEs)."""

    aes_power6_bw: float = 45 * MB
    """"one Power6 core is around 45MB/s" (§IV-A, Fig. 2) — per core."""

    aes_ppe_bw: float = 16 * MB
    """PPE Java is the slowest curve in Fig. 2; "the PPE unit in the Cell
    is a limited implementation of the PowerPC family" (§IV-A). Roughly
    one third of the Power6 rate."""

    ppe_memcpy_bw: float = 1.0 * GB
    """PPE-side buffer copy bandwidth. The MapReduce-for-Cell framework
    "incurs in a considerable overhead because ... the original input data
    must be copied again to internal buffers" (§IV-A); the copy runs at
    PPE memcpy speed and serializes with SPE work."""

    cell_mr_per_chunk_overhead_s: float = 2.0e-6
    """Per-map-chunk scheduling overhead inside the MapReduce-for-Cell
    framework (queue management on the PPE)."""

    spe_per_chunk_overhead_s: float = 1.0e-6
    """Per-chunk software cost on an SPE (mailbox sync, loop control,
    DMA tag management). Invisible at the paper's 4 KB chunks but it is
    why sub-KB chunks lose throughput in the A3 ablation."""

    aes_kernel_startup_s: dict = field(
        default_factory=lambda: {
            Backend.CELL_SPE_DIRECT: 0.010,
            Backend.CELL_SPE_MAPREDUCE: 0.060,
            Backend.JAVA_PPE: 0.004,
            Backend.JAVA_POWER6: 0.002,
        }
    )
    """One-time kernel startup: SPE context creation + code upload for the
    Cell backends (larger for the framework, which also builds its
    internal structures); JIT/class-load for Java. Produces the ramp at
    the left of Fig. 2."""

    # ------------------------------------------------------------------ #
    # Monte-Carlo Pi kernel rates (calibrated to Fig. 6)                 #
    # ------------------------------------------------------------------ #
    pi_cell_rate: float = 2.0e8
    """Samples/s for one Cell processor (8 SPEs, SIMD). Fixed so that the
    Cell kernel is "one order of magnitude faster than the Java kernel
    running on top of the Power6" above ~1e7 samples (§IV-B, Fig. 6)."""

    pi_power6_rate: float = 2.0e7
    """Samples/s for the Java kernel on one Power6 core."""

    pi_ppe_rate: float = 4.0e6
    """Samples/s for the Java kernel on the Cell PPE ("even more when
    compared to the Cell PPE", §IV-B)."""

    pi_spu_init_s: float = 0.30
    """SPU initialization overhead: "the overhead of work distribution
    about SPUs is only worth when the work ... is above the overhead of
    SPUs initialization" (§IV-B). 0.3 s puts the Cell/Power6 crossover
    near 1e7 samples as in Fig. 6."""

    pi_java_init_s: float = 0.002
    """JVM-side warm-start cost for the Java Pi kernel."""

    # ------------------------------------------------------------------ #
    # GPU extension backend (Tesla C1060-class, published figures)       #
    # ------------------------------------------------------------------ #
    gpu_aes_bw: float = 1.4 * GB
    """Device-side AES throughput of the Tesla-class extension GPU."""

    gpu_pi_rate: float = 8.0e8
    """Monte-Carlo samples/s on the extension GPU."""

    gpu_context_init_s: float = 0.25
    """One-time CUDA-context/JIT bring-up charged per task attempt."""

    # ------------------------------------------------------------------ #
    # Node-level hardware                                                 #
    # ------------------------------------------------------------------ #
    disk_bw: float = 70 * MB
    """Local SAS disk streaming bandwidth on the blades (typical 2009)."""

    disk_seek_s: float = 0.008
    """Average seek+rotational latency per request."""

    gige_bw: float = 117 * MB
    """"connected using a Gigabit ethernet" (§IV): 1 Gb/s minus framing
    ≈ 117 MiB/s effective TCP payload rate."""

    gige_latency_s: float = 0.0001
    """Switch + NIC latency per message."""

    switch_backplane_bw: float = 16 * GB
    """Aggregate switch capacity (non-blocking for ≤64 nodes at 1 Gb/s;
    becomes a mild shared bottleneck only for all-to-all shuffles)."""

    loopback_bw: float = 120 * MB
    """Peak loopback TCP throughput on the PPE. The paper observed the
    DataNode→TaskTracker path running "at a much slower rate than the
    actual maximum rate that can be delivered by such a virtual network
    interface" — the slow part is modeled separately as
    :attr:`recordreader_stream_bw`, the software path; this is the
    interface ceiling that concurrent mappers contend for."""

    # ------------------------------------------------------------------ #
    # Hadoop 0.19 runtime behaviour (§III-A, §IV)                        #
    # ------------------------------------------------------------------ #
    hdfs_block_bytes: int = 64 * MB
    """"The HDFS was configured to use 64MB blocks" (§IV-A)."""

    hdfs_replication: int = 1
    """"a replication level of 1 (so one single copy of each block was
    present in the cluster)" (§IV-A)."""

    mappers_per_node: int = 2
    """"two Mappers were run in parallel" per blade — one per Cell
    processor (§IV-A)."""

    record_bytes: int = 64 * MB
    """"a record size of 64MB" (§IV-A, Fig. 3)."""

    cell_chunk_bytes: int = 4 * KB
    """"each record was split into 4KB data blocks that were sent to the
    SPUs" (§IV-A)."""

    recordreader_stream_bw: float = 10 * MB
    """Effective per-mapper delivery bandwidth of the RecordReader
    ``next()`` path (DataNode → TaskTracker over loopback TCP, through
    the Hadoop software stack). The paper measured "several seconds" per
    64 MB record even with data in the OS buffer cache; 64 MB / ~6.4 s ≈
    10 MB/s. This single number drives the paper's headline result: it
    sits *below* every kernel's compute rate except none, so the data
    path, not the kernel, bounds data-intensive jobs (Figs. 4, 5)."""

    recordreader_per_record_s: float = 0.35
    """Fixed per-record software overhead (buffer setup, key/value
    construction, progress reporting)."""

    heartbeat_interval_s: float = 3.0
    """TaskTracker→JobTracker heartbeat period (Hadoop 0.19 default for
    small clusters). Task assignment piggybacks on heartbeats (§III-A)."""

    heartbeat_timeout_s: float = 30.0
    """JobTracker declares a TaskTracker lost after this silence ("the
    JobTracker can detect a node failure and reschedule", §III-A)."""

    jobtracker_service_s: float = 0.050
    """JobTracker CPU time to process one heartbeat / assign one task.
    Serializes on the JobTracker and is the scale-dependent part of the
    runtime floor that stops the 10x-samples curve from scaling past 32
    nodes in Fig. 8."""

    task_launch_s: float = 1.2
    """TaskTracker-side cost to launch a map task (spawn task JVM, 0.19
    had no JVM reuse by default)."""

    task_cleanup_s: float = 0.3
    """Commit/cleanup cost per finished task."""

    job_setup_s: float = 4.0
    """Client-side job submission: staging the job jar, computing splits,
    writing job.xml to HDFS."""

    job_cleanup_s: float = 2.0
    """Job finalization after the last task completes."""

    map_output_local_write: bool = True
    """Map outputs spill to the node-local disk (MapReduce semantics);
    overlapped with the read/compute pipeline."""

    record_pipeline_depth: int = 2
    """Records the RecordReader may run ahead of the map() kernel
    (Hadoop streams input while the previous record computes). Depth 0
    disables overlap — the pipelining ablation shows this is what makes
    Java == Cell in Figs. 4/5: with no overlap the Java mapper's kernel
    time adds to the delivery time instead of hiding under it."""

    sort_cpu_bw_per_core: float = 80 * MB
    """In-memory sort capacity of a high-end core, used by the Terasort
    rate analysis (§IV-A: "the sorting capacity of a high-end processor
    may be well above" the observed 0.6 MB/s per core)."""

    # ------------------------------------------------------------------ #
    # Power model for the §V energy ablation (typical published figures) #
    # ------------------------------------------------------------------ #
    power_cell_active_w: float = 90.0
    """One Cell processor, all SPEs busy."""

    power_cell_idle_w: float = 35.0
    power_ppe_only_active_w: float = 50.0
    """Cell with only the PPE busy (SPEs clock-gated)."""

    power_power6_active_w: float = 120.0
    power_power6_idle_w: float = 60.0
    power_blade_base_w: float = 150.0
    """Per-blade memory, fans, bridges."""

    power_gpu_active_w: float = 188.0
    """Tesla C1060 board power under load."""

    power_gpu_idle_w: float = 70.0

    # ------------------------------------------------------------------ #
    # Derived quantities                                                  #
    # ------------------------------------------------------------------ #
    @property
    def dma_bus_bw(self) -> float:
        """Element-interconnect-bus bandwidth in bytes/s (25.6 GB/s)."""
        return self.dma_bus_bytes_per_cycle * self.cell_clock_hz

    @property
    def aes_cell_mr_bw(self) -> float:
        """Steady-state MapReduce-for-Cell AES bandwidth.

        The framework copies input through the PPE before the SPEs
        encrypt, and the stages serialize on the input buffer:
        1/bw = 1/copy + 1/encrypt, i.e. the harmonic combination that
        places the MR-Cell curve between Cell-direct and the Java curves
        in Fig. 2.
        """
        return 1.0 / (1.0 / self.ppe_memcpy_bw + 1.0 / self.aes_cell_direct_bw)

    @property
    def aes_spe_bw(self) -> float:
        """Raw per-SPE AES SIMD bandwidth (bytes/s).

        Back-solved so that the *measured* plateau at the paper's 4 KB
        chunk size — raw compute plus the per-chunk software overhead —
        lands exactly on ``aes_cell_direct_bw / 8`` per SPE. The raw
        rate is therefore slightly above the plateau rate.
        """
        chunk = float(self.cell_chunk_bytes)
        plateau_per_spe = self.aes_cell_direct_bw / self.spes_per_cell
        compute_s = chunk / plateau_per_spe - self.spe_per_chunk_overhead_s
        if compute_s <= 0:
            raise ValueError(
                "spe_per_chunk_overhead_s exceeds the whole per-chunk budget"
            )
        return chunk / compute_s

    @property
    def pi_spe_rate(self) -> float:
        """Per-SPE Monte-Carlo sample rate."""
        return self.pi_cell_rate / self.spes_per_cell

    def aes_backend_bw(self, backend: Backend) -> float:
        """Plateau AES bandwidth for a backend (bytes/s)."""
        table = {
            Backend.CELL_SPE_DIRECT: self.aes_cell_direct_bw,
            Backend.CELL_SPE_MAPREDUCE: self.aes_cell_mr_bw,
            Backend.JAVA_PPE: self.aes_ppe_bw,
            Backend.JAVA_POWER6: self.aes_power6_bw,
            Backend.GPU_TESLA: self.gpu_aes_bw,
            Backend.EMPTY: float("inf"),
        }
        return table[backend]

    def pi_backend_rate(self, backend: Backend) -> float:
        """Plateau Monte-Carlo sample rate for a backend (samples/s)."""
        table = {
            Backend.CELL_SPE_DIRECT: self.pi_cell_rate,
            Backend.CELL_SPE_MAPREDUCE: self.pi_cell_rate * 0.8,
            Backend.JAVA_PPE: self.pi_ppe_rate,
            Backend.JAVA_POWER6: self.pi_power6_rate,
            Backend.GPU_TESLA: self.gpu_pi_rate,
            Backend.EMPTY: float("inf"),
        }
        return table[backend]

    def kernel_startup_s(self, backend: Backend, workload: str) -> float:
        """One-time startup cost for (backend, workload)."""
        if backend is Backend.EMPTY:
            return 0.0
        if backend is Backend.GPU_TESLA:
            return self.gpu_context_init_s
        if workload == "pi":
            if backend in (Backend.CELL_SPE_DIRECT, Backend.CELL_SPE_MAPREDUCE):
                return self.pi_spu_init_s
            return self.pi_java_init_s
        return self.aes_kernel_startup_s[backend]

    def evolve(self, **changes) -> "CalibrationProfile":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-safe dump of every calibration field (sweep manifests).

        Enum-keyed tables are flattened to their string values so the
        result round-trips through ``json.dumps`` deterministically.
        """
        out = {}
        for name, value in sorted(asdict(self).items()):
            if isinstance(value, dict):
                value = {
                    (k.value if isinstance(k, enum.Enum) else k): v
                    for k, v in value.items()
                }
            out[name] = value
        return out


PAPER_CALIBRATION = CalibrationProfile()
"""The default profile used by every benchmark unless a bench sweeps it."""
