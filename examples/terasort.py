#!/usr/bin/env python3
"""Terasort, both ways: functionally and at cluster scale.

Part 1 runs a complete, real Terasort pipeline in memory — generate
gensort-style records, sample a partitioner, partition, sort each
partition, merge — and verifies the global ordering.

Part 2 replays §IV-A's rate analysis on the simulated cluster: a
full map+shuffle+reduce sort job whose delivered per-node rate lands in
the same single-digit-MB/s regime as the 2009 Terasort winner (5.5
MB/s/node), far below CPU sort capacity — because the Hadoop data path,
not the sort kernel, is the bottleneck.

Run: python examples/terasort.py
"""

import numpy as np

from repro.core import run_sort_job
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.workloads.sort import (
    make_sort_records,
    merge_sorted_runs,
    partition_records,
    records_are_sorted,
    sample_partitioner,
    sort_records,
)

CAL = PAPER_CALIBRATION


def functional_terasort(n_records: int = 200_000, reducers: int = 8) -> None:
    print(f"=== Functional Terasort: {n_records} records, {reducers} reducers ===")
    records = make_sort_records(n_records, seed=2009)
    boundaries = sample_partitioner(records, reducers, seed=2009)
    partitions = partition_records(records, boundaries)
    sizes = [len(p) for p in partitions]
    print(f"  partition sizes: min={min(sizes)}, max={max(sizes)} "
          f"(ideal {n_records // reducers})")
    sorted_runs = [sort_records(p) for p in partitions]
    merged = merge_sorted_runs(sorted_runs)
    assert len(merged) == n_records
    assert records_are_sorted(merged), "GLOBAL ORDER VIOLATED"
    # Partition ranges are disjoint, so concatenation is already sorted.
    concat = np.vstack([r for r in sorted_runs if len(r)])
    assert records_are_sorted(concat)
    print("  globally sorted: OK (partition ranges are disjoint)\n")


def simulated_sort_rates(nodes=(4, 8)) -> None:
    print("=== Simulated cluster sort (the paper's §IV-A rate analysis) ===")
    print(f"  {'nodes':>5} {'data':>8} {'time(s)':>9} {'MB/s/node':>10} {'MB/s/mapper':>12}")
    for n in nodes:
        data = n * CAL.mappers_per_node * GB
        result = run_sort_job(n, data, backend=Backend.JAVA_PPE)
        rate_node = data / result.makespan_s / n / MB
        print(f"  {n:5d} {data / GB:6.0f}GB {result.makespan_s:9.1f} "
              f"{rate_node:10.2f} {rate_node / CAL.mappers_per_node:12.2f}")
    print(f"\n  CPU sort capacity: {CAL.sort_cpu_bw_per_core / MB:.0f} MB/s/core — the")
    print("  delivered rate is ~an order of magnitude lower, which is the")
    print("  paper's point about the 2009 Terasort winner (5.5 MB/s/node):")
    print("  'the effective data bandwidth at which data can be sent to the")
    print("  mappers was also the limiting factor'.")


if __name__ == "__main__":
    functional_terasort()
    simulated_sort_rates()
