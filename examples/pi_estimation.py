#!/usr/bin/env python3
"""Monte-Carlo Pi — functional estimation plus the distributed sweep.

First computes Pi for real (with the paper's O(1/sqrt(N)) error check),
exactly as the Hadoop PiEstimator + Cell port did; then reruns the
paper's CPU-intensive evaluation (Fig. 7 shape) on the simulated
cluster, showing where acceleration pays off and where the Hadoop
runtime floor hides it.

Run: python examples/pi_estimation.py
"""

import math

from repro.analysis import Series, ascii_chart
from repro.analysis.report import series_table
from repro.core import run_pi_job
from repro.perf import Backend
from repro.workloads import estimate_pi, pi_error_bound


def functional_demo() -> None:
    print("=== Functional Monte-Carlo Pi ===")
    print(f"  {'samples':>12} {'estimate':>10} {'error':>10} {'3-sigma bound':>14}")
    for exp in (4, 5, 6, 7):
        n = 10 ** exp
        est = estimate_pi(n, seed=2009)
        bound = pi_error_bound(n)
        ok = "ok" if est.error < bound else "OUTSIDE BOUND"
        print(f"  {n:12d} {est.value:10.6f} {est.error:10.6f} {bound:14.6f}  {ok}")
    # The distributed job's reduce step is count merging:
    parts = [estimate_pi(250_000, seed=s) for s in range(4)]
    merged = parts[0]
    for p in parts[1:]:
        merged = merged.merge(p)
    print(f"  4 mappers x 250k merged -> {merged.value:.6f} "
          f"(err {abs(merged.value - math.pi):.6f})\n")


def distributed_demo(nodes: int = 10) -> None:
    print(f"=== Distributed Pi on {nodes} simulated Cell blades (Fig. 7 shape) ===\n")
    counts = (1e4, 1e6, 1e8, 1e10, 1e12)
    series = []
    for label, backend in (("Java Mapper", Backend.JAVA_PPE),
                           ("Cell BE Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for c in counts:
            r = run_pi_job(nodes, c, backend)
            s.append(c, r.makespan_s)
        series.append(s)
    print(series_table(series, x_name="samples"))
    print()
    print(ascii_chart(series, title="time vs samples (log-log)",
                      xlabel="samples", ylabel="time (s)"))
    java, cell = series
    print(f"\nAt 1e12 samples the Cell mapper is "
          f"{java.y_at(1e12) / cell.y_at(1e12):.0f}x faster; below ~1e8 both "
          f"sit on the Hadoop runtime floor ({java.y_at(1e4):.0f} s).")


if __name__ == "__main__":
    functional_demo()
    distributed_demo()
