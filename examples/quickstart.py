#!/usr/bin/env python3
"""Quickstart: the three layers of the reproduction in five minutes.

1. Functional MapReduce (LocalExecutor) — real map()/reduce() over real
   data, the semantics Hadoop provides.
2. Functional two-level encryption — the paper's architecture with real
   AES bytes: cluster-level records, Cell-level 4 KB SPU chunks.
3. A simulated distributed job — the full stack (HDFS + Hadoop runtime +
   Cell offload) at cluster scale, timed by the discrete-event engine.

Run: python examples/quickstart.py
"""

from repro.core import LocalExecutor, TwoLevelEncryptor, run_encryption_job
from repro.perf import Backend
from repro.perf.calibration import GB
from repro.workloads import synthetic_text, wordcount_map, wordcount_reduce
from repro.workloads.generators import random_bytes


def demo_local_mapreduce() -> None:
    print("=== 1. Functional MapReduce (word count) ===")
    text = synthetic_text(n_words=200, seed=42)
    inputs = [(i, line) for i, line in enumerate(text.splitlines())]
    executor = LocalExecutor(num_reducers=4)
    counts = executor.run(inputs, wordcount_map, wordcount_reduce,
                          combiner=wordcount_reduce)
    top = sorted(counts, key=lambda kv: -kv[1])[:5]
    for word, count in top:
        print(f"  {word:12s} {count}")
    print(f"  ({executor.counters['map_output_records']} map outputs, "
          f"{executor.counters['combine_output_records']} after combine)\n")


def demo_two_level_encryption() -> None:
    print("=== 2. Two-level AES pipeline (real bytes) ===")
    data = random_bytes(256 * 1024, seed=7)
    enc = TwoLevelEncryptor(key=b"0123456789abcdef", record_bytes=64 * 1024)
    ciphertext = enc.encrypt(data)
    assert ciphertext == enc.reference_encrypt(data), "pipeline != reference!"
    assert enc.decrypt(ciphertext) == data, "roundtrip failed!"
    print(f"  encrypted {len(data) // 1024} KB through "
          f"{len(data) // enc.record_bytes} records x "
          f"{enc.record_bytes // enc.chunk_bytes} SPU chunks each")
    print("  bit-identical to whole-buffer encryption: OK\n")


def demo_simulated_cluster() -> None:
    print("=== 3. Simulated distributed encryption (8 blades, 16 GB) ===")
    for backend in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT, Backend.EMPTY):
        result = run_encryption_job(nodes=8, data_bytes=16 * GB, backend=backend)
        print(f"  {backend.value:18s} makespan = {result.makespan_s:7.1f} s "
              f"(kernel busy {result.kernel_busy_s:7.1f} s, "
              f"{result.remote_fraction * 100:4.1f}% remote reads)")
    print("  -> the data path, not the kernel, bounds the job (the paper's"
          " central result)")


if __name__ == "__main__":
    demo_local_mapreduce()
    demo_two_level_encryption()
    demo_simulated_cluster()
