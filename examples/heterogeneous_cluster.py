#!/usr/bin/env python3
"""Heterogeneous clusters — the paper's §V future-work scenario, runnable.

Sweeps the fraction of accelerator-equipped blades for a CPU-intensive
job, with Cell-targeted tasks falling back to the Java kernel on bare
nodes, and shows why split granularity decides whether the scheduler can
absorb the heterogeneity (§III-A: "the granularity of the splits have a
high influence on the balancing capability").

Run: python examples/heterogeneous_cluster.py
"""

from repro.analysis import Series, ascii_chart
from repro.analysis.report import series_table
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.perf import Backend, PAPER_CALIBRATION

CAL = PAPER_CALIBRATION
NODES = 8
SAMPLES = 2e10


def run_mixed(fraction: float, tasks_per_slot: int) -> float:
    sim = SimulatedCluster(NODES, accelerated_fraction=fraction)
    conf = JobConf(
        name="hetero",
        workload="pi",
        backend=Backend.CELL_SPE_DIRECT,
        fallback_backend=Backend.JAVA_PPE,
        samples=SAMPLES,
        num_map_tasks=NODES * CAL.mappers_per_node * tasks_per_slot,
    )
    result = sim.run_job(conf)
    assert result.succeeded
    return result.makespan_s


if __name__ == "__main__":
    fractions = (0.0, 0.25, 0.5, 0.75, 1.0)
    coarse = Series("coarse (1 task/slot)")
    fine = Series("fine (8 tasks/slot)")
    for f in fractions:
        coarse.append(max(f, 0.01), run_mixed(f, 1))
        fine.append(max(f, 0.01), run_mixed(f, 8))
    print(f"Pi ({SAMPLES:.0e} samples) on {NODES} blades, varying the number")
    print("of accelerator-equipped blades:\n")
    print(series_table([coarse, fine], x_name="accel. fraction"))
    print()
    print(ascii_chart([coarse, fine], logx=False, height=14,
                      title="makespan vs accelerated fraction",
                      xlabel="fraction", ylabel="time (s)"))
    print("\nWith coarse splits the slowest node class pins the job; fine")
    print("splits let Hadoop's feed-the-idle-node scheduling shift work to")
    print("the accelerated blades — the scheduling question the paper's §V")
    print("flags for future research.")
