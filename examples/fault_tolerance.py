#!/usr/bin/env python3
"""Fault tolerance — heartbeats, failure detection, and re-execution.

Demonstrates the machinery §III-A describes: "the TaskTracker sends
periodic heartbeats to the JobTracker. This way, the JobTracker can
detect a node failure and reschedule the task to another TaskTracker."

Two scenarios:
1. replication 2 — a mid-job blade crash is absorbed; the job finishes
   on the survivors (with rescheduled tasks).
2. the paper's replication 1 — the crash loses blocks for good and the
   job fails after exhausting attempts (why production clusters don't
   run replication 1).

Run: python examples/fault_tolerance.py
"""

from repro.core.simexec import SimulatedCluster
from repro.hadoop import FaultPlan, JobConf, kill_node_at
from repro.perf import Backend
from repro.perf.calibration import GB


def crash_scenario(replication: int) -> None:
    print(f"--- replication {replication}, blade crash at t=30s ---")
    sim = SimulatedCluster(4, trace=True)
    sim.client.ingest_file("/in", 4 * GB, replication=replication)
    conf = JobConf(
        name="ft-demo", workload="aes", backend=Backend.CELL_SPE_DIRECT,
        input_path="/in", num_map_tasks=8, max_attempts=3,
    )
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    victim = sim.trackers[0]
    kill_node_at(
        sim.env, victim,
        FaultPlan(node_id=victim.tracker_id, at_time=30.0),
        namenode=sim.namenode,
    )
    result = sim.env.run(job.completion)
    print(f"  job state      : {result.state.value}")
    print(f"  makespan       : {result.makespan_s:.1f} s")
    print(f"  rescheduled    : {result.counters.get('rescheduled_tasks', 0):.0f} tasks")
    print(f"  failed attempts: {result.counters.get('failed_attempts', 0):.0f}")
    if result.failure_reason:
        print(f"  failure reason : {result.failure_reason}")
    lost = list(sim.cluster.tracer.select("jobtracker", "tracker_lost"))
    if lost:
        print(f"  tracker loss detected at t={lost[0].time:.1f} s "
              f"(heartbeat timeout machinery)")
    print()


if __name__ == "__main__":
    crash_scenario(replication=2)
    crash_scenario(replication=1)
    print("Replication keeps data-intensive jobs alive through failures;")
    print("the paper's replication-1 configuration trades that away for")
    print("capacity, which is fine for controlled benchmark runs.")
