#!/usr/bin/env python3
"""Distributed AES encryption — a compact Figure 4 + Figure 5 session.

Recreates the paper's data-intensive evaluation at reduced scale and
prints the figures as terminal charts:

- proportional data set (1 GB per mapper, Fig. 4): Java == Cell because
  the Hadoop data path bounds both;
- fixed data set (Fig. 5): near-linear scaling, Empty ~= Java ~= Cell.

Run: python examples/distributed_encryption.py
"""

from repro.analysis import Series, ascii_chart
from repro.analysis.report import series_table
from repro.core import run_empty_job, run_encryption_job
from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB

CAL = PAPER_CALIBRATION


def proportional_sweep(nodes=(4, 8, 12)) -> list[Series]:
    series = []
    for label, backend in (("Java Mapper", Backend.JAVA_PPE),
                           ("Cell BE Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for n in nodes:
            data = n * CAL.mappers_per_node * GB  # 1 GB per mapper
            r = run_encryption_job(n, data, backend)
            s.append(n, r.makespan_s)
        series.append(s)
    return series


def fixed_sweep(nodes=(4, 8, 16, 32), data=32 * GB) -> list[Series]:
    series = []
    for label, backend in (("Empty Mapper", Backend.EMPTY),
                           ("Java Mapper", Backend.JAVA_PPE),
                           ("Cell Mapper", Backend.CELL_SPE_DIRECT)):
        s = Series(label)
        for n in nodes:
            r = (run_empty_job(n, data) if backend is Backend.EMPTY
                 else run_encryption_job(n, data, backend))
            s.append(n, r.makespan_s)
        series.append(s)
    return series


if __name__ == "__main__":
    print("Proportional data set: 1 GB per mapper (paper Fig. 4)\n")
    prop = proportional_sweep()
    print(series_table(prop, x_name="nodes"))
    print()
    print(ascii_chart(prop, logx=False, logy=False, height=12,
                      title="Fig. 4 shape", xlabel="nodes", ylabel="time (s)"))
    print("\n" + "=" * 72 + "\n")
    print("Fixed 32 GB data set (paper Fig. 5, reduced from 120 GB)\n")
    fixed = fixed_sweep()
    print(series_table(fixed, x_name="nodes"))
    print()
    print(ascii_chart(fixed, height=14, title="Fig. 5 shape",
                      xlabel="nodes", ylabel="time (s)"))
    print("\nNote how the three curves are nearly indistinguishable: the")
    print("RecordReader delivery path, not the kernel, sets the pace.")
