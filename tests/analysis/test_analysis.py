"""Tests for series containers, shape predicates, and reports."""

import pytest

from repro.analysis import (
    Series,
    ascii_chart,
    crossover_x,
    format_table,
    is_monotonic,
    log_slope,
    paper_comparison_rows,
    ratio_between,
    scaling_efficiency,
)
from repro.analysis.report import series_table


# --------------------------------------------------------------------------- #
# Series                                                                        #
# --------------------------------------------------------------------------- #
def test_series_append_and_lookup():
    s = Series("t")
    s.append(1, 10)
    s.append(2, 20)
    assert s.y_at(2) == 20
    assert len(s) == 2
    assert s.rows() == [(1, 10), (2, 20)]
    with pytest.raises(KeyError):
        s.y_at(3)


def test_series_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Series("bad", xs=[1], ys=[])


def test_ascii_chart_renders_legend_and_axes():
    s1 = Series("alpha", [1, 10, 100], [1, 10, 100])
    s2 = Series("beta", [1, 10, 100], [100, 10, 1])
    chart = ascii_chart([s1, s2], title="T", xlabel="X", ylabel="Y")
    assert "T" in chart
    assert "alpha" in chart and "beta" in chart
    assert "o" in chart and "+" in chart


def test_ascii_chart_empty():
    assert "(no data)" in ascii_chart([Series("e")], title="t")


def test_ascii_chart_linear_mode():
    s = Series("lin", [0.0, 1.0], [0.0, 5.0])
    chart = ascii_chart([s], logx=False, logy=False)
    assert "lin" in chart


# --------------------------------------------------------------------------- #
# Shapes                                                                        #
# --------------------------------------------------------------------------- #
def test_ratio_between():
    a = Series("a", [1, 2], [10, 10])
    b = Series("b", [1, 2], [2, 5])
    assert ratio_between(a, b, 1) == 5
    assert ratio_between(a, b, 2) == 2


def test_crossover_detects_overtake():
    a = Series("a", [1, 2, 3, 4], [1, 2, 5, 9])
    b = Series("b", [1, 2, 3, 4], [4, 4, 4, 4])
    assert crossover_x(a, b) == 3


def test_crossover_none_when_never():
    a = Series("a", [1, 2], [1, 1])
    b = Series("b", [1, 2], [5, 5])
    assert crossover_x(a, b) is None


def test_crossover_at_start():
    a = Series("a", [1, 2], [9, 9])
    b = Series("b", [1, 2], [1, 1])
    assert crossover_x(a, b) == 1


def test_crossover_requires_shared_grid():
    with pytest.raises(ValueError):
        crossover_x(Series("a", [1], [1]), Series("b", [2], [1]))


def test_is_monotonic():
    assert is_monotonic([1, 2, 3])
    assert not is_monotonic([1, 3, 2])
    assert is_monotonic([3, 2, 1], increasing=False)
    assert is_monotonic([1, 2, 1.95, 3], tol=0.1)


def test_log_slope_perfect_scaling():
    s = Series("t", [4, 8, 16], [100, 50, 25])
    assert log_slope(s, 4, 16) == pytest.approx(-1.0)
    flat = Series("f", [4, 8], [30, 30])
    assert log_slope(flat, 4, 8) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        log_slope(Series("z", [1, 2], [0, 1]), 1, 2)


def test_scaling_efficiency():
    s = Series("t", [4, 8, 16], [100, 50, 40])
    eff = scaling_efficiency(s)
    assert eff[0] == pytest.approx(1.0)
    assert eff[1] == pytest.approx(1.0)
    assert eff[2] == pytest.approx(100 / 40 / 4)
    assert scaling_efficiency(Series("e")) == []


# --------------------------------------------------------------------------- #
# Report                                                                        #
# --------------------------------------------------------------------------- #
def test_format_table_alignment():
    rows = [{"a": 1, "b": "xx"}, {"a": 123.5, "b": "y"}]
    txt = format_table(rows)
    lines = txt.splitlines()
    assert lines[0].startswith("a")
    assert len(lines) == 4
    assert format_table([]) == "(empty table)"


def test_format_table_number_formats():
    txt = format_table([{"v": 1e9}, {"v": 0.0001}, {"v": 0.0}])
    assert "e+09" in txt
    assert "e-04" in txt


def test_series_table_shares_x():
    s1 = Series("one", [1, 2], [10, 20])
    s2 = Series("two", [1, 2], [30, 40])
    txt = series_table([s1, s2], x_name="nodes")
    assert "nodes" in txt and "one" in txt and "two" in txt
    assert series_table([]) == "(no series)"


def test_paper_comparison_rows():
    txt = paper_comparison_rows(
        "Fig. 2",
        [("cell wins", "~700 MB/s", "695 MB/s", True), ("ppe slowest", "yes", "yes", False)],
    )
    assert "YES" in txt and "NO" in txt and "Fig. 2" in txt
