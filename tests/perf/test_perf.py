"""Tests for calibration constants, kernel models, and the energy model."""

import pytest

from repro.perf import (
    Backend,
    EnergyModel,
    PAPER_CALIBRATION,
    PowerSpec,
    RatePerfModel,
    SamplesPerfModel,
)
from repro.perf.calibration import MB
from repro.perf.kernels import make_aes_model, make_pi_model

CAL = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Calibration anchors from the paper's text                                     #
# --------------------------------------------------------------------------- #
def test_paper_anchor_rates():
    assert CAL.aes_cell_direct_bw == 700 * MB       # "near 700MB/s"
    assert CAL.aes_power6_bw == 45 * MB             # "around 45MB/s"
    assert CAL.hdfs_block_bytes == 64 * MB          # "64MB blocks"
    assert CAL.hdfs_replication == 1                # "replication level of 1"
    assert CAL.mappers_per_node == 2                # "two Mappers ... in parallel"
    assert CAL.cell_chunk_bytes == 4 * 1024         # "4KB data blocks"
    assert CAL.spes_per_cell == 8
    assert CAL.local_store_bytes == 256 * 1024
    assert CAL.dma_max_inflight == 16
    assert CAL.dma_max_request_bytes == 16 * 1024


def test_fig2_rate_ordering():
    assert (
        CAL.aes_cell_direct_bw
        > CAL.aes_cell_mr_bw
        > CAL.aes_power6_bw
        > CAL.aes_ppe_bw
    )


def test_fig6_rate_ordering():
    assert CAL.pi_cell_rate > CAL.pi_power6_rate > CAL.pi_ppe_rate
    assert CAL.pi_cell_rate / CAL.pi_power6_rate >= 10  # "one order of magnitude"


def test_recordreader_is_the_slowest_stage():
    """The paper's headline: the delivery path sits below the kernels."""
    assert CAL.recordreader_stream_bw < CAL.aes_ppe_bw
    assert CAL.recordreader_stream_bw < CAL.loopback_bw
    assert CAL.recordreader_stream_bw < CAL.disk_bw


def test_evolve_is_non_destructive():
    v = CAL.evolve(recordreader_stream_bw=999.0)
    assert v.recordreader_stream_bw == 999.0
    assert CAL.recordreader_stream_bw != 999.0


def test_kernel_startup_lookup():
    assert CAL.kernel_startup_s(Backend.CELL_SPE_DIRECT, "pi") == CAL.pi_spu_init_s
    assert CAL.kernel_startup_s(Backend.EMPTY, "aes") == 0.0
    assert CAL.kernel_startup_s(Backend.JAVA_POWER6, "aes") > 0


# --------------------------------------------------------------------------- #
# Kernel models                                                                 #
# --------------------------------------------------------------------------- #
def test_rate_model_math():
    m = RatePerfModel(bandwidth_bps=100.0, startup_s=1.0)
    assert m.time_for(0) == 0
    assert m.time_for(100) == pytest.approx(2.0)
    assert m.effective_rate(100) == pytest.approx(50.0)


def test_samples_model_math():
    m = SamplesPerfModel(rate_per_s=10.0, startup_s=0.5)
    assert m.time_for(10) == pytest.approx(1.5)


def test_model_validation():
    with pytest.raises(ValueError):
        RatePerfModel(bandwidth_bps=0)
    with pytest.raises(ValueError):
        RatePerfModel(bandwidth_bps=1, startup_s=-1)
    with pytest.raises(ValueError):
        SamplesPerfModel(rate_per_s=-5)
    m = RatePerfModel(bandwidth_bps=1)
    with pytest.raises(ValueError):
        m.time_for(-1)


def test_make_models_bind_calibration():
    aes = make_aes_model(CAL, Backend.JAVA_POWER6)
    assert aes.bandwidth_bps == CAL.aes_power6_bw
    pi = make_pi_model(CAL, Backend.CELL_SPE_DIRECT)
    assert pi.startup_s == CAL.pi_spu_init_s


def test_startup_amortization_shapes_fig2_ramp():
    """Effective rate grows with size toward the plateau."""
    m = make_aes_model(CAL, Backend.CELL_SPE_DIRECT)
    rates = [m.effective_rate(s * MB) for s in (1, 16, 256, 1024)]
    assert rates == sorted(rates)
    assert rates[-1] / CAL.aes_cell_direct_bw > 0.98


# --------------------------------------------------------------------------- #
# Energy model                                                                  #
# --------------------------------------------------------------------------- #
def test_power_spec_integrates_busy_idle():
    spec = PowerSpec(active_w=100, idle_w=20)
    assert spec.energy_j(busy_s=1, total_s=2) == pytest.approx(120)
    with pytest.raises(ValueError):
        spec.energy_j(busy_s=3, total_s=2)


def test_accelerated_node_saves_energy_when_makespan_equal():
    """Same makespan (data-bound job), far less busy time on the Cell:
    lower total energy — the paper's §V claim."""
    model = EnergyModel(CAL)
    makespan = 100.0
    java = model.node_energy(Backend.JAVA_PPE, kernel_busy_s=95.0, makespan_s=makespan)
    cell = model.node_energy(Backend.CELL_SPE_DIRECT, kernel_busy_s=2.2, makespan_s=makespan)
    assert cell.total_j < java.total_j


def test_job_energy_scales_with_nodes():
    model = EnergyModel(CAL)
    e1 = model.job_energy(Backend.JAVA_PPE, 10, 100, nodes=1)
    e4 = model.job_energy(Backend.JAVA_PPE, 10, 100, nodes=4)
    assert e4 == pytest.approx(4 * e1)
    with pytest.raises(ValueError):
        model.job_energy(Backend.JAVA_PPE, 10, 100, nodes=0)


def test_busy_time_clamped_to_makespan():
    model = EnergyModel(CAL)
    e = model.node_energy(Backend.JAVA_PPE, kernel_busy_s=200.0, makespan_s=100.0)
    assert e.compute_j == pytest.approx(CAL.power_ppe_only_active_w * 100.0)
