"""Determinism and lazy-cancellation tests for the engine overhaul.

The optimized event loop (inlined dispatch, Timeout fast path, pooled
timeouts, synchronous store completions, claim API) must be
observationally identical to the reference loop: same ``(time,
priority, seq, event-class)`` trace for the same program, and
byte-identical figure series. These tests pin that contract, plus the
unit-level invariants of lazy cancellation.
"""

import json

import pytest

import repro.sim.engine as engine_mod
from repro.sim import (
    Environment,
    Interrupt,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


def _mixed_scenario(env: Environment) -> list:
    """Dense mixed workload covering every specialized dispatch path."""
    log = []
    res = PriorityResource(env, capacity=2)
    plain = Resource(env, capacity=1)
    store = Store(env, capacity=3)

    def worker(i):
        with res.request(priority=i % 3) as req:
            yield req
            yield env.timeout(1 + i % 4)
            log.append(("worker", i, env.now))
        yield store.put(i)

    def fickle(i):
        yield env.timeout(0.5 * i)
        req = res.request(priority=0)
        yield env.timeout(0.25)
        req.cancel()
        log.append(("cancel", i, env.now))

    def consumer():
        for _ in range(8):
            v = yield store.get()
            log.append(("got", v, env.now))

    def pipe_user(i):
        claim = plain.try_claim()
        if claim is not None:
            try:
                yield env.pooled_timeout(0.5)
            finally:
                plain.release_claim(claim)
        else:
            with plain.request() as req:
                yield req
                yield env.pooled_timeout(0.5)
        log.append(("pipe", i, env.now))

    def sleeper():
        try:
            yield env.timeout(500.0)
        except Interrupt as exc:
            log.append(("interrupted", str(exc.cause), env.now))
            yield env.timeout(0.125)

    def killer(victim):
        yield env.timeout(3.0)
        if victim.is_alive:
            victim.interrupt("trace")

    for i in range(8):
        env.process(worker(i))
    for i in range(4):
        env.process(fickle(i))
    for i in range(3):
        env.process(pipe_user(i))
    env.process(consumer())
    victim = env.process(sleeper())
    env.process(killer(victim))
    env.run()
    return log


def test_trace_identical_between_fast_and_reference_loops():
    fast = Environment(reference=False)
    fast_trace = fast.capture_trace()
    fast_log = _mixed_scenario(fast)

    ref = Environment(reference=True)
    ref_trace = ref.capture_trace()
    ref_log = _mixed_scenario(ref)

    assert len(fast_trace) > 50
    assert fast_trace == ref_trace
    assert fast_log == ref_log


def test_trace_identical_across_repeated_fast_runs():
    traces = []
    for _ in range(2):
        env = Environment(reference=False)
        t = env.capture_trace()
        _mixed_scenario(env)
        traces.append(t)
    assert traces[0] == traces[1]


def _with_reference_mode(enabled, fn):
    prev = engine_mod.set_reference_mode(enabled)
    try:
        return fn()
    finally:
        engine_mod.set_reference_mode(prev)


def test_fig8_series_byte_identical_across_engine_modes():
    """Small Fig-8 slice: cluster sim output must not depend on the
    engine mode (the loop rewrite is observationally invisible)."""
    from repro.core import run_pi_job
    from repro.perf import Backend

    def sweep():
        out = []
        for backend in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT):
            for n in (4, 8):
                out.append(run_pi_job(n, 1e9, backend).makespan_s)
        return out

    ref = _with_reference_mode(True, sweep)
    fast = _with_reference_mode(False, sweep)
    assert json.dumps(ref) == json.dumps(fast)


def test_fig6_series_byte_identical_across_engine_modes():
    """Small Fig-6 slice (raw single-node Pi rates), same contract."""
    from repro.core import raw_pi_rates

    samples = (1e3, 1e5, 1e7)
    ref = _with_reference_mode(True, lambda: raw_pi_rates(samples))
    fast = _with_reference_mode(False, lambda: raw_pi_rates(samples))
    ref_points = [(s.label, s.xs, s.ys) for s in ref]
    fast_points = [(s.label, s.xs, s.ys) for s in fast]
    assert json.dumps(ref_points) == json.dumps(fast_points)


# --------------------------------------------------------------------------- #
# Lazy cancellation: interrupts                                                #
# --------------------------------------------------------------------------- #
def test_interrupt_detaches_lazily_without_scan():
    env = Environment()
    barrier = env.timeout(100.0)
    woke = []

    def sleeper(i):
        try:
            yield barrier
            woke.append(("event", i, env.now))
        except Interrupt:
            woke.append(("interrupt", i, env.now))

    procs = [env.process(sleeper(i)) for i in range(5)]

    def killer():
        yield env.timeout(1.0)
        for p in reversed(procs[:3]):
            p.interrupt()

    env.process(killer())
    env.run()
    # The barrier still fires at t=100 with the stale callbacks attached;
    # the detached processes must not be resumed by it.
    assert sorted(woke) == sorted(
        [("interrupt", 0, 1.0), ("interrupt", 1, 1.0), ("interrupt", 2, 1.0),
         ("event", 3, 100.0), ("event", 4, 100.0)]
    )


def test_interrupted_process_can_rewait_on_same_event():
    env = Environment()
    evt = env.timeout(10.0, value="late")
    log = []

    def proc():
        try:
            yield evt
        except Interrupt:
            log.append(("interrupted", env.now))
        v = yield evt  # re-subscribe to the abandoned (still pending) event
        log.append((v, env.now))

    p = env.process(proc())

    def killer():
        yield env.timeout(1.0)
        p.interrupt()

    env.process(killer())
    env.run()
    assert log == [("interrupted", 1.0), ("late", 10.0)]


def test_stale_interrupt_on_dead_process_is_dropped():
    """Two same-instant interrupts: the first kills the process, the
    second lands on a corpse and must be swallowed (the eager engine
    crashed here)."""
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            return  # dies on the first interrupt

    p = env.process(sleeper())

    def killer():
        yield env.timeout(1.0)
        p.interrupt("first")
        p.interrupt("second")

    env.process(killer())
    env.run()
    assert not p.is_alive


def test_interrupting_dead_process_still_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


# --------------------------------------------------------------------------- #
# Lazy cancellation: resource queues                                           #
# --------------------------------------------------------------------------- #
def test_withdrawn_request_skipped_at_grant_time():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def impatient():
        yield env.timeout(1)
        req = res.request()
        yield env.timeout(1)
        req.cancel()

    def patient():
        yield env.timeout(3)
        with res.request() as req:
            yield req
            order.append(env.now)

    env.process(holder())
    env.process(impatient())
    env.process(patient())
    env.run()
    # The tombstoned request must not absorb the freed slot at t=5.
    assert order == [5]


def test_priority_queue_mass_cancel_compacts():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    served = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def churn():
        yield env.timeout(1)
        reqs = [res.request(priority=5) for _ in range(200)]
        keeper = res.request(priority=7)
        yield env.timeout(1)
        for r in reqs:
            r.cancel()
        # Compaction must have swept most tombstones: the live count is
        # exact and the physical queue is bounded well below the 200
        # cancelled entries (only a sub-threshold tail may linger).
        assert res.queued == 1
        assert len(res._pqueue) < 64
        with keeper:
            granted_at = yield keeper
            served.append(env.now)

    env.process(holder())
    env.process(churn())
    env.run()
    assert served == [10]


def test_priority_resource_grants_when_queue_is_all_tombstones():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    got = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def canceller():
        yield env.timeout(1)
        reqs = [res.request(priority=1) for _ in range(3)]
        yield env.timeout(1)
        for r in reqs:
            r.cancel()

    def late():
        # Arrives while the queue holds only tombstones and the holder
        # has released: must be granted immediately, not stranded.
        yield env.timeout(6)
        with res.request(priority=9) as req:
            yield req
            got.append(env.now)

    env.process(holder())
    env.process(canceller())
    env.process(late())
    env.run()
    assert got == [6]


# --------------------------------------------------------------------------- #
# Claim API                                                                    #
# --------------------------------------------------------------------------- #
def test_try_claim_respects_capacity_and_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    assert res.try_claim() is not None  # slot taken synchronously
    assert res.try_claim() is None  # full
    req = res.request()  # queues behind the claim
    assert not req.triggered
    assert res.try_claim() is None
    res.release_claim(res.users[0])
    env.run()
    assert req.triggered  # queued request granted on claim release
    res.release(req)
    # With a live queued request a fresh claim must not jump the queue.
    res2 = Resource(env, capacity=1)
    hold = res2.request()
    waiting = res2.request()
    assert res2.try_claim() is None
    res2.release(hold)
    env.run()
    assert waiting.triggered


def test_claim_released_on_interrupt():
    env = Environment()
    res = Resource(env, capacity=1)

    def claimer():
        claim = res.try_claim()
        assert claim is not None
        try:
            yield env.pooled_timeout(100.0)
        finally:
            res.release_claim(claim)

    p = env.process(claimer())

    def killer():
        yield env.timeout(1.0)
        p.interrupt()

    env.process(killer())
    with pytest.raises(Interrupt):
        env.run()
    assert res.count == 0  # finally released the slot


# --------------------------------------------------------------------------- #
# Pooled timeouts                                                              #
# --------------------------------------------------------------------------- #
def test_pooled_timeouts_recycle_and_deliver_values():
    env = Environment(reference=False)
    seen = []

    def proc():
        for i in range(5):
            v = yield env.pooled_timeout(1.0, value=i)
            seen.append((v, env.now))

    env.process(proc())
    env.run()
    assert seen == [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 5.0)]
    # The free-list actually recycled: a sequential chain alternates
    # between two pooled objects (the replacement is created during the
    # resume, before the dispatched one is reclaimed), so five sleeps
    # leave exactly two objects — not five — in the pool.
    assert len(env._timeout_pool) == 2


def test_pooled_timeout_rejects_negative_delay():
    env = Environment(reference=False)

    def proc():
        yield env.pooled_timeout(1.0)  # prime the pool

    env.process(proc())
    env.run()
    with pytest.raises(ValueError):
        env.pooled_timeout(-1.0)
    with pytest.raises(ValueError):
        env.composite_timeout(1.0, -0.5)


def test_composite_timeout_sums_phases():
    env = Environment()

    def proc():
        yield env.composite_timeout(1.0, 2.0, 0.5)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 3.5


def test_reference_mode_pooled_timeout_does_not_pool():
    env = Environment(reference=True)

    def proc():
        for _ in range(3):
            yield env.pooled_timeout(1.0)

    env.process(proc())
    env.run()
    assert env._timeout_pool == []


# --------------------------------------------------------------------------- #
# Batched scheduling                                                           #
# --------------------------------------------------------------------------- #
def test_start_processes_matches_eager_start_order():
    def build(batched):
        env = Environment()
        order = []

        def worker(i):
            order.append(("start", i, env.now))
            yield env.timeout(1)
            order.append(("end", i, env.now))

        if batched:
            procs = [env.process(worker(i), start=False) for i in range(6)]
            env.start_processes(procs)
        else:
            for i in range(6):
                env.process(worker(i))
        env.run()
        return order

    assert build(True) == build(False)


def test_schedule_many_preserves_fifo_ties():
    env = Environment()
    order = []

    def waiter(tag, evt):
        yield evt
        order.append(tag)

    events = [env.event() for _ in range(4)]
    for i, evt in enumerate(events):
        env.process(waiter(i, evt))
    for evt in events:
        evt._value = None
        evt._triggered = True
    env.schedule_many(events, delay=1.0)
    env.run()
    assert order == [0, 1, 2, 3]


# --------------------------------------------------------------------------- #
# run(until=...) flag reuse (sentinel micro-fix)                               #
# --------------------------------------------------------------------------- #
def test_run_until_event_twice_reuses_flag():
    env = Environment()

    def proc(delay, value):
        yield env.timeout(delay)
        return value

    p1 = env.process(proc(1, "a"))
    p2 = env.process(proc(2, "b"))
    assert env.run(p1) == "a"
    assert env.run(p2) == "b"
    assert env.now == 2


def test_run_until_already_processed_event_returns_value():
    env = Environment()
    t = env.timeout(1, value="v")
    env.run()
    assert t.processed
    assert env.run(t) == "v"


def test_run_until_event_flag_not_leaked_on_exceptional_exit():
    """After a deadlocked run(until=ev1), the recycled completion flag
    must not remain subscribed to ev1 — a later run(until=ev2) would be
    stopped early (and report false completion) when ev1 fires."""
    env = Environment()
    ev1 = env.event()
    with pytest.raises(SimulationError):
        env.run(ev1)
    ev1.succeed("late")

    def proc():
        yield env.timeout(5)
        return "done"

    p = env.process(proc())
    assert env.run(p) == "done"
    assert env.now == 5


def test_nested_run_until_event():
    env = Environment()
    log = []

    def inner():
        yield env.timeout(1)
        return "inner"

    def outer():
        # A callback-driven nested run: the reusable flag must hand out
        # a fresh one instead of corrupting the outer run's flag.
        p = env.process(inner())
        v = yield p
        log.append(v)
        return "outer"

    p_out = env.process(outer())
    assert env.run(p_out) == "outer"
    assert log == ["inner"]


# --------------------------------------------------------------------------- #
# Store fast paths                                                             #
# --------------------------------------------------------------------------- #
def test_store_sync_completion_preserves_fifo():
    env = Environment()
    store = Store(env, capacity=2)
    log = []

    def producer():
        for i in range(6):
            yield store.put(i)
            log.append(("put", i, env.now))
            yield env.timeout(1)

    def consumer():
        yield env.timeout(2.5)
        while len(log) < 12:
            v = yield store.get()
            log.append(("got", v, env.now))

    env.process(producer())
    env.process(consumer())
    env.run(until=20)
    puts = [e for e in log if e[0] == "put"]
    gots = [e for e in log if e[0] == "got"]
    assert [p[1] for p in puts] == [0, 1, 2, 3, 4, 5]
    assert [g[1] for g in gots] == [0, 1, 2, 3, 4, 5]


def test_store_filtered_get_does_not_starve():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(tag, flt):
        v = yield store.get(flt)
        got.append((tag, v))

    env.process(consumer("odd", lambda x: x % 2 == 1))
    env.process(consumer("any", None))

    def producer():
        yield env.timeout(1)
        yield store.put(2)  # serves "any" even though "odd" queued first
        yield env.timeout(1)
        yield store.put(3)

    env.process(producer())
    env.run()
    assert sorted(got) == [("any", 2), ("odd", 3)]
