"""Unit tests for Pipe and SharedPipe channel models."""

import pytest

from repro.sim import Environment, Pipe
from repro.sim.pipes import SharedPipe


def run_transfers(pipe_factory, sizes, starts=None):
    env = Environment()
    pipe = pipe_factory(env)
    done = {}

    def xfer(i, n, delay):
        if delay:
            yield env.timeout(delay)
        yield env.process(pipe.transfer(n))
        done[i] = env.now

    starts = starts or [0] * len(sizes)
    for i, (n, d) in enumerate(zip(sizes, starts)):
        env.process(xfer(i, n, d))
    env.run()
    return pipe, done


def test_pipe_single_transfer_time():
    pipe, done = run_transfers(lambda e: Pipe(e, bandwidth_bps=100, latency_s=0.5), [200])
    assert done[0] == pytest.approx(2.5)


def test_pipe_serializes_concurrent_transfers():
    pipe, done = run_transfers(lambda e: Pipe(e, bandwidth_bps=100), [100, 100])
    assert done[0] == pytest.approx(1.0)
    assert done[1] == pytest.approx(2.0)


def test_pipe_per_message_overhead():
    pipe, done = run_transfers(
        lambda e: Pipe(e, bandwidth_bps=100, per_message_overhead_s=1.0), [100]
    )
    assert done[0] == pytest.approx(2.0)


def test_pipe_stats_accumulate():
    pipe, _done = run_transfers(lambda e: Pipe(e, bandwidth_bps=100), [50, 150])
    assert pipe.bytes_transferred == 200
    assert pipe.transfer_count == 2


def test_pipe_rejects_bad_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        Pipe(env, bandwidth_bps=0)
    with pytest.raises(ValueError):
        Pipe(env, bandwidth_bps=10, latency_s=-1)
    pipe = Pipe(env, bandwidth_bps=10)
    with pytest.raises(ValueError):
        pipe.transfer_time(-5)


def test_pipe_zero_bytes_costs_only_latency():
    pipe, done = run_transfers(lambda e: Pipe(e, bandwidth_bps=100, latency_s=0.25), [0])
    assert done[0] == pytest.approx(0.25)


def test_shared_pipe_fair_sharing_doubles_duration():
    # Two equal flows through a shared channel each see half bandwidth:
    # both finish around 2x the solo duration.
    _pipe, done = run_transfers(
        lambda e: SharedPipe(e, bandwidth_bps=100, quantum_bytes=10), [100, 100]
    )
    assert done[0] == pytest.approx(1.9, rel=0.06)
    assert done[1] == pytest.approx(2.0, rel=0.01)


def test_shared_pipe_solo_flow_full_bandwidth():
    _pipe, done = run_transfers(
        lambda e: SharedPipe(e, bandwidth_bps=100, quantum_bytes=10), [100]
    )
    assert done[0] == pytest.approx(1.0)


def test_shared_pipe_short_flow_not_starved():
    # A short flow arriving mid-way through a long one completes long
    # before the long flow does (interleaved quanta).
    _pipe, done = run_transfers(
        lambda e: SharedPipe(e, bandwidth_bps=100, quantum_bytes=10),
        [1000, 50],
        starts=[0, 1.0],
    )
    assert done[1] < done[0] / 2


def test_shared_pipe_counts_flows():
    env = Environment()
    pipe = SharedPipe(env, bandwidth_bps=100, quantum_bytes=10)

    def xfer():
        yield env.process(pipe.transfer(100))

    env.process(xfer())
    env.process(xfer())
    env.run(until=0.5)
    assert pipe.active_flows == 2
    env.run()
    assert pipe.active_flows == 0
    assert pipe.transfer_count == 2


def test_shared_pipe_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SharedPipe(env, bandwidth_bps=-1)
    with pytest.raises(ValueError):
        SharedPipe(env, bandwidth_bps=10, quantum_bytes=0)
