"""Unit tests for event composition, processes, and interrupts."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


# --------------------------------------------------------------------------- #
# Basic events                                                                 #
# --------------------------------------------------------------------------- #
def test_event_succeed_delivers_value():
    env = Environment()
    evt = env.event()
    got = []

    def waiter():
        got.append((yield evt))

    env.process(waiter())

    def firer():
        yield env.timeout(1)
        evt.succeed("hello")

    env.process(firer())
    env.run()
    assert got == ["hello"]


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(RuntimeError):
        evt.succeed(2)
    with pytest.raises(RuntimeError):
        evt.fail(RuntimeError("x"))


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        _ = env.event().value


def test_failed_event_raises_at_yield_site():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter():
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())

    def firer():
        yield env.timeout(1)
        evt.fail(ValueError("bad"))

    env.process(firer())
    env.run()
    assert caught == ["bad"]


def test_defused_failed_event_does_not_crash_run():
    env = Environment()
    evt = env.event()
    evt.fail(RuntimeError("ignored")).defused()
    env.run()  # should not raise


# --------------------------------------------------------------------------- #
# Processes                                                                    #
# --------------------------------------------------------------------------- #
def test_process_join_returns_value():
    env = Environment()

    def child():
        yield env.timeout(2)
        return "done"

    def parent():
        v = yield env.process(child())
        return v

    p = env.process(parent())
    assert env.run(p) == "done"


def test_process_is_alive_lifecycle():
    env = Environment()

    def child():
        yield env.timeout(5)

    p = env.process(child())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_already_processed_event_resumes_without_rescheduling():
    env = Environment()

    def proc():
        t = env.timeout(0)
        yield env.timeout(1)
        # t has long been processed; yielding it must resume immediately.
        yield t
        return env.now

    p = env.process(proc())
    assert env.run(p) == 1


# --------------------------------------------------------------------------- #
# Interrupts                                                                   #
# --------------------------------------------------------------------------- #
def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            seen.append((env.now, i.cause))

    p = env.process(sleeper())

    def killer():
        yield env.timeout(3)
        p.interrupt("reason")

    env.process(killer())
    env.run()
    assert seen == [(3, "reason")]


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            log.append("interrupted")
        yield env.timeout(1)
        log.append(env.now)

    p = env.process(sleeper())

    def killer():
        yield env.timeout(2)
        p.interrupt()

    env.process(killer())
    env.run()
    assert log == ["interrupted", 3]


def test_interrupting_dead_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def sleeper():
        yield env.timeout(100)

    p = env.process(sleeper())

    def killer():
        yield env.timeout(1)
        p.interrupt("bang")

    env.process(killer())
    with pytest.raises(Interrupt):
        env.run()


# --------------------------------------------------------------------------- #
# Conditions                                                                   #
# --------------------------------------------------------------------------- #
def test_all_of_waits_for_every_event():
    env = Environment()
    done_at = []

    def proc():
        t1, t2, t3 = env.timeout(1), env.timeout(5), env.timeout(3)
        yield env.all_of([t1, t2, t3])
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [5]


def test_any_of_fires_on_first():
    env = Environment()
    done_at = []

    def proc():
        yield env.any_of([env.timeout(4), env.timeout(2), env.timeout(9)])
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [2]


def test_condition_value_maps_events():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        result = yield env.all_of([t1, t2])
        return [result[t1], result[t2]]

    p = env.process(proc())
    assert env.run(p) == ["a", "b"]


def test_and_or_operators():
    env = Environment()

    def proc():
        yield (env.timeout(1) & env.timeout(2)) | env.timeout(50)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 2


def test_empty_all_of_triggers_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    p = env.process(proc())
    assert env.run(p) == 0


def test_all_of_propagates_failure():
    env = Environment()
    evt = env.event()

    def firer():
        yield env.timeout(1)
        evt.fail(ValueError("nope"))

    def waiter():
        yield env.all_of([env.timeout(10), evt])

    env.process(firer())
    p = env.process(waiter())
    with pytest.raises(ValueError):
        env.run()
    assert p.triggered and not p.ok
