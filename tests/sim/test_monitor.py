"""Tests for the utilization monitor."""

import pytest

from repro.sim import Environment, Pipe, Resource
from repro.sim.monitor import (
    UtilizationMonitor,
    throughput_of_pipe,
    utilization_of_resource,
)


def test_monitor_samples_on_grid():
    env = Environment()
    mon = UtilizationMonitor(env, probe=lambda: env.now, interval_s=1.0)
    mon.start()
    env.run(until=5)
    assert len(mon) == 6  # t = 0..5
    assert [s.time for s in mon.samples] == [0, 1, 2, 3, 4, 5]


def test_resource_utilization_half_busy():
    env = Environment()
    res = Resource(env, capacity=2)
    mon = UtilizationMonitor(env, utilization_of_resource(res), interval_s=1.0)
    mon.start()

    def hold():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    env.process(hold())  # 1 of 2 slots busy until t=10
    env.run(until=10)
    # The release at t=10 is processed before the t=10 sample, so close
    # the window at t=9 for the busy-phase average.
    assert mon.mean(t0=1, t1=9) == pytest.approx(0.5)
    assert mon.peak() == pytest.approx(0.5)


def test_pipe_throughput_probe():
    env = Environment()
    pipe = Pipe(env, bandwidth_bps=100)
    mon = UtilizationMonitor(env, throughput_of_pipe(pipe, env), interval_s=1.0)
    mon.start()

    def xfer():
        yield env.process(pipe.transfer(500))  # 5 seconds of work

    env.process(xfer())
    env.run(until=10)
    # After completion the cumulative average decays: peak near 100 B/s.
    assert 50 <= mon.peak() <= 100


def test_monitor_stop_halts_sampling():
    env = Environment()
    mon = UtilizationMonitor(env, probe=lambda: 1.0, interval_s=1.0)
    mon.start()
    env.run(until=3)
    mon.stop()
    count = len(mon)
    env.run(until=10)
    assert len(mon) == count


def test_monitor_restart_after_stop():
    env = Environment()
    mon = UtilizationMonitor(env, probe=lambda: 1.0, interval_s=1.0)
    mon.start()
    env.run(until=2)
    mon.stop()
    mon.start()
    env.run(until=4)
    assert len(mon) >= 4


def test_monitor_validation_and_empty_stats():
    env = Environment()
    with pytest.raises(ValueError):
        UtilizationMonitor(env, probe=lambda: 0, interval_s=0)
    mon = UtilizationMonitor(env, probe=lambda: 0)
    assert mon.mean() == 0.0
    assert mon.peak() == 0.0
